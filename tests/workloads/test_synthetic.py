"""Unit tests for the Table 1 synthetic-database generators."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.synthetic import (
    PAPER_COMBINATIONS,
    PAPER_TABLES,
    TableSpec,
    build_forest,
    node_count,
    tables_for,
    title_table_rows,
)


class TestTableSpec:
    def test_paper_tables(self):
        assert [(t.attributes, t.rows) for t in PAPER_TABLES] == [
            (8, 4000),
            (9, 3000),
            (10, 2000),
            (5, 5000),
        ]

    def test_nodes_arithmetic(self):
        t1 = PAPER_TABLES[0]
        assert t1.nodes == 4000 * 8 + 4000 + 1  # cells + rows + table node

    def test_table1_node_count_matches_paper(self):
        # {1}: 36002 is printed in Table 1(b) and matches exactly.
        assert node_count(tables_for((1,))) == 36002

    def test_multi_table_counts_near_paper(self):
        # Printed values are off by <=3 from the Table 1(a) arithmetic.
        printed = {(1, 2): 66000, (1, 2, 3): 88004, (1, 2, 3, 4): 118006}
        for combination, value in printed.items():
            assert abs(node_count(tables_for(combination)) - value) <= 3

    def test_scaled(self):
        scaled = PAPER_TABLES[0].scaled(0.01)
        assert scaled.rows == 40
        assert scaled.attributes == 8
        with pytest.raises(WorkloadError):
            PAPER_TABLES[0].scaled(0)

    def test_columns(self):
        assert PAPER_TABLES[3].columns == ("a1", "a2", "a3", "a4", "a5")

    def test_unknown_combination(self):
        with pytest.raises(WorkloadError):
            tables_for((9,))


class TestBuildForest:
    def test_node_count_matches_arithmetic(self):
        specs = tables_for((1, 2), scale=0.01)
        forest = build_forest(specs)
        assert len(forest) == node_count(specs)

    def test_structure_depth_4(self):
        forest = build_forest(tables_for((1,), scale=0.005))
        cell = "db/t1/r0/a1"
        assert forest.depth(cell) == 3
        assert forest.ancestors(cell) == ["db/t1/r0", "db/t1", "db"]

    def test_all_integer_values(self):
        forest = build_forest(tables_for((1,), scale=0.005))
        for row in forest.children("db/t1")[:3]:
            for cell in forest.children(row):
                assert isinstance(forest.value(cell), int)

    def test_deterministic_by_seed(self):
        from repro.core.merkle import subtree_digest

        specs = tables_for((1,), scale=0.005)
        a = subtree_digest(build_forest(specs, seed=1), "db")
        b = subtree_digest(build_forest(specs, seed=1), "db")
        c = subtree_digest(build_forest(specs, seed=2), "db")
        assert a == b
        assert a != c

    def test_combinations_cover_paper(self):
        assert PAPER_COMBINATIONS == ((1,), (1, 2), (1, 2, 3), (1, 2, 3, 4))


class TestPopulateSession:
    def test_provenanced_build(self, tedb, participants):
        from repro.workloads.synthetic import populate_session

        specs = (TableSpec(1, 3, 5),)
        view = populate_session(tedb.session(participants["p1"]), specs)
        assert view.row_count("t1") == 5
        assert len(tedb.store) == node_count(specs)
        # root insert + table insert(+inherited) + 5 rows complex ops
        assert len(tedb.provenance_store) > 5
        assert tedb.verify("db").ok

    def test_sqlite_backend_loads_in_one_bulk_transaction(self, ca, participants):
        from unittest import mock

        from repro.backend.sqlite import SQLiteStore
        from repro.core.system import TamperEvidentDatabase
        from repro.workloads.synthetic import populate_session

        specs = (TableSpec(1, 2, 4),)
        with SQLiteStore() as store:
            db = TamperEvidentDatabase(ca=ca, store=store)
            with mock.patch.object(
                SQLiteStore, "bulk", wraps=store.bulk
            ) as bulk:
                populate_session(db.session(participants["p1"]), specs)
            bulk.assert_called_once()
            assert len(store) == node_count(specs)
            assert db.verify("db").ok


class TestTitleTable:
    def test_row_stream_shape(self):
        rows = list(title_table_rows(3))
        assert len(rows) == 3
        row_id, row_value, cells = rows[0]
        assert row_id.endswith("/r0")
        assert row_value is None
        assert [c[0].rsplit("/", 1)[1] for c in cells] == ["doc_id", "title"]

    def test_doc_ids_sequential(self):
        rows = list(title_table_rows(5))
        doc_ids = [cells[0][1] for _, _, cells in rows]
        assert doc_ids == [0, 1, 2, 3, 4]

    def test_deterministic(self):
        a = [cells[1][1] for _, _, cells in title_table_rows(4, seed=3)]
        b = [cells[1][1] for _, _, cells in title_table_rows(4, seed=3)]
        assert a == b

    def test_lazy(self):
        stream = title_table_rows(10**9)  # must not materialise
        first = next(stream)
        assert first[0].endswith("/r0")
