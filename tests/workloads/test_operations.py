"""Unit tests for the Table 2 operation workloads (Setups A/B/C)."""

import pytest

from repro.backend.engine import DatabaseEngine
from repro.backend.memory import InMemoryStore
from repro.exceptions import WorkloadError
from repro.model.relational import RelationalView
from repro.workloads.operations import (
    SETUP_B_OPERATIONS,
    SETUP_C_MIXES,
    OperationMix,
    apply_mixed_operations,
    apply_row_deletes,
    apply_row_inserts,
    apply_update_sweep,
    setup_a_points,
)
from repro.workloads.synthetic import TableSpec, populate_session


@pytest.fixture
def view():
    engine = DatabaseEngine(InMemoryStore())
    return populate_session(engine, (TableSpec(1, 8, 40),))


class TestSetupAPoints:
    def test_full_scale_points(self):
        points = setup_a_points()
        assert points[0] == ("1 update / 1 row", 1, 1)
        assert ("4000 updates / 4000 rows", 4000, 4000) in points
        assert ("32000 updates / 4000 rows", 32000, 4000) in points
        assert len(points) == 1 + 10 + 7

    def test_scaled_points_monotone(self):
        points = setup_a_points(scale=0.01)
        counts = [p[1] for p in points[1:11]]
        assert counts == sorted(counts)
        assert all(p[1] >= 1 for p in points)


class TestUpdateSweep:
    def test_updates_distinct_cells(self, view):
        before = {
            (k, c): view.get_cell("t1", k, c)
            for k in view.row_keys("t1")
            for c in view.columns("t1")
        }
        apply_update_sweep(view, "t1", 20, 20, seed=1)
        after = {
            (k, c): view.get_cell("t1", k, c)
            for k in view.row_keys("t1")
            for c in view.columns("t1")
        }
        changed = [key for key in before if before[key] != after[key]]
        assert len(changed) == 20
        # one cell per row before any second cell (row-major round-robin)
        assert len({k for k, _ in changed}) == 20

    def test_multiple_cells_per_row(self, view):
        apply_update_sweep(view, "t1", 20, 10, seed=1)
        assert view.row_count("t1") == 40  # structure untouched

    def test_too_many_cells_rejected(self, view):
        with pytest.raises(WorkloadError):
            apply_update_sweep(view, "t1", 40 * 8 + 1, 40)

    def test_not_enough_rows_rejected(self, view):
        with pytest.raises(WorkloadError):
            apply_update_sweep(view, "t1", 10, 100)


class TestInsertsAndDeletes:
    def test_inserts_add_rows(self, view):
        keys = apply_row_inserts(view, "t1", 5)
        assert len(keys) == 5
        assert view.row_count("t1") == 45

    def test_deletes_remove_rows(self, view):
        victims = apply_row_deletes(view, "t1", 5, seed=2)
        assert len(set(victims)) == 5
        assert view.row_count("t1") == 35
        for victim in victims:
            assert view.row_id("t1", victim) not in view.store

    def test_delete_more_than_exists_rejected(self, view):
        with pytest.raises(WorkloadError):
            apply_row_deletes(view, "t1", 41)

    def test_setup_b_rows_sum(self):
        keys = [op[0] for op in SETUP_B_OPERATIONS]
        assert keys == [
            "all-deletes",
            "all-inserts",
            "updates-500-rows",
            "updates-4000-rows",
        ]


class TestMixes:
    def test_paper_mixes_total_500(self):
        for mix in SETUP_C_MIXES:
            assert mix.total == 500

    def test_delete_fractions_match_paper(self):
        fractions = [round(m.delete_fraction, 3) for m in SETUP_C_MIXES]
        assert fractions == [0.192, 0.366, 0.57, 0.782]

    def test_mix_scaling(self):
        mix = SETUP_C_MIXES[0].scaled(0.01)
        assert mix.deletes == 1 and mix.inserts == 2 and mix.updates == 2
        with pytest.raises(WorkloadError):
            SETUP_C_MIXES[0].scaled(-1)

    def test_label(self):
        assert "19.2% deletes" in SETUP_C_MIXES[0].label

    def test_apply_mixed_operations(self, view):
        mix = OperationMix(deletes=5, inserts=7, updates=9)
        performed = apply_mixed_operations(view, "t1", mix, seed=3)
        assert performed == (5, 7, 9)
        assert view.row_count("t1") == 40 - 5 + 7

    def test_apply_mixed_deterministic(self):
        from repro.core.merkle import subtree_digest

        digests = []
        for _ in range(2):
            engine = DatabaseEngine(InMemoryStore())
            v = populate_session(engine, (TableSpec(1, 4, 20),))
            apply_mixed_operations(v, "t1", OperationMix(3, 3, 3), seed=5)
            digests.append(subtree_digest(engine.store, "db"))
        assert digests[0] == digests[1]

    def test_too_many_deletes_rejected(self, view):
        with pytest.raises(WorkloadError):
            apply_mixed_operations(view, "t1", OperationMix(100, 0, 0))


class TestProvenancedWorkloads:
    """Workloads through a provenance session yield the paper's record
    accounting (the numbers behind Figs 8-11)."""

    @pytest.fixture
    def tracked(self, tedb, participants):
        session = tedb.session(participants["p1"])
        view = populate_session(session, (TableSpec(1, 8, 20),))
        return tedb, session, view

    def test_delete_records_are_ancestors_only(self, tracked):
        tedb, _, view = tracked
        before = len(tedb.provenance_store)
        apply_row_deletes(view, "t1", 5)
        # One complex op: only table + root survive of the touched set.
        assert len(tedb.provenance_store) - before == 2

    def test_insert_records_count(self, tracked):
        tedb, _, view = tracked
        before = len(tedb.provenance_store)
        apply_row_inserts(view, "t1", 5)
        # 5 rows + 40 cells + table + root
        assert len(tedb.provenance_store) - before == 5 + 40 + 2

    def test_update_records_count(self, tracked):
        tedb, _, view = tracked
        before = len(tedb.provenance_store)
        apply_update_sweep(view, "t1", 16, 8)
        # 16 cells + 8 rows + table + root
        assert len(tedb.provenance_store) - before == 16 + 8 + 2

    def test_verification_still_passes_after_mixes(self, tracked):
        tedb, _, view = tracked
        apply_mixed_operations(view, "t1", OperationMix(2, 3, 4), seed=7)
        assert tedb.verify("db").ok
