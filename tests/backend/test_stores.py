"""Conformance tests run against every store implementation.

The in-memory and SQLite stores must be observationally identical; the
same test body runs against both via parametrised fixtures.
"""

import pytest

from repro.backend.interface import ForestStore
from repro.backend.memory import InMemoryStore
from repro.backend.sqlite import SQLiteStore
from repro.exceptions import (
    DuplicateObjectError,
    NotALeafError,
    UnknownObjectError,
)


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield InMemoryStore()
    else:
        with SQLiteStore() as s:
            yield s


@pytest.fixture
def populated(store):
    store.insert("db", None)
    store.insert("db/t", "c1,c2", "db")
    store.insert("db/t/r0", None, "db/t")
    store.insert("db/t/r0/c1", 10, "db/t/r0")
    store.insert("db/t/r0/c2", 20, "db/t/r0")
    return store


class TestConformance:
    def test_satisfies_protocol(self, store):
        assert isinstance(store, ForestStore)

    def test_insert_get_roundtrip(self, populated):
        node = populated.get("db/t/r0/c1")
        assert node.value == 10
        assert node.parent == "db/t/r0"
        assert node.is_leaf

    def test_value_types_roundtrip(self, store):
        store.insert("root", None)
        for i, value in enumerate([None, True, False, -17, 3.5, "text", b"blob"]):
            store.insert(f"root/v{i}", value, "root")
            assert store.value(f"root/v{i}") == value

    def test_duplicate_rejected(self, populated):
        with pytest.raises(DuplicateObjectError):
            populated.insert("db", None)

    def test_missing_parent_rejected(self, store):
        with pytest.raises(UnknownObjectError):
            store.insert("x", 1, "missing")

    def test_update_returns_old(self, populated):
        assert populated.update("db/t/r0/c1", 11) == 10
        assert populated.value("db/t/r0/c1") == 11

    def test_delete_leaf_only(self, populated):
        with pytest.raises(NotALeafError):
            populated.delete("db/t/r0")
        assert populated.delete("db/t/r0/c1") == 10
        assert "db/t/r0/c1" not in populated

    def test_unknown_object_errors(self, store):
        for method in ("get", "value", "parent", "children" ):
            with pytest.raises(UnknownObjectError):
                getattr(store, method)("ghost")
        with pytest.raises(UnknownObjectError):
            store.update("ghost", 1)
        with pytest.raises(UnknownObjectError):
            store.delete("ghost")

    def test_children_in_global_order(self, store):
        store.insert("p", None)
        for child in ("p/r10", "p/r2", "p/r1"):
            store.insert(child, 0, "p")
        assert store.children("p") == ("p/r1", "p/r2", "p/r10")

    def test_roots_and_len(self, populated):
        assert populated.roots() == ("db",)
        assert len(populated) == 5

    def test_ancestors_and_depth(self, populated):
        assert populated.ancestors("db/t/r0/c1") == ["db/t/r0", "db/t", "db"]
        assert populated.depth("db/t/r0/c1") == 3
        assert populated.root_of("db/t/r0/c2") == "db"

    def test_iter_subtree_preorder(self, populated):
        assert list(populated.iter_subtree("db/t/r0")) == [
            "db/t/r0",
            "db/t/r0/c1",
            "db/t/r0/c2",
        ]

    def test_subtree_size(self, populated):
        assert populated.subtree_size("db") == 5
        assert populated.subtree_size("db/t/r0") == 3

    def test_delete_subtree(self, populated):
        populated.delete_subtree("db/t/r0")
        assert len(populated) == 2
        assert populated.children("db/t") == ()


class TestSQLiteSpecific:
    def test_persistence_across_connections(self, tmp_path):
        path = str(tmp_path / "backend.db")
        with SQLiteStore(path) as s:
            s.insert("db", None)
            s.insert("db/x", 42, "db")
        with SQLiteStore(path) as s:
            assert s.value("db/x") == 42
            assert s.roots() == ("db",)

    def test_bad_path_raises_backend_error(self):
        from repro.exceptions import BackendError

        with pytest.raises(BackendError):
            SQLiteStore("/nonexistent-dir-xyz/foo.db")

    def test_bulk_persists_on_success(self, tmp_path):
        path = str(tmp_path / "bulk.db")
        with SQLiteStore(path) as s:
            with s.bulk():
                s.insert("db", None)
                for i in range(10):
                    s.insert(f"db/x{i}", i, "db")
        with SQLiteStore(path) as s:
            assert len(s) == 11
            assert s.value("db/x7") == 7

    def test_bulk_rolls_back_on_error(self):
        with SQLiteStore() as s:
            s.insert("keep", 1)
            with pytest.raises(RuntimeError):
                with s.bulk():
                    s.insert("db", None)
                    s.insert("db/x", 2, "db")
                    raise RuntimeError("loader blew up")
            # the failed load left no partial forest
            assert "db" not in s
            assert "db/x" not in s
            assert s.value("keep") == 1

    def test_bulk_nested_joins_outer_transaction(self):
        with SQLiteStore() as s:
            with s.bulk():
                s.insert("a", 1)
                with s.bulk():
                    s.insert("b", 2)
                # inner exit must not commit the outer block early
                assert s._bulk_depth == 1
            assert s.value("a") == 1
            assert s.value("b") == 2

    def test_mutations_after_bulk_commit_normally(self, tmp_path):
        path = str(tmp_path / "after.db")
        with SQLiteStore(path) as s:
            with s.bulk():
                s.insert("a", 1)
            s.insert("b", 2)
        with SQLiteStore(path) as s:
            assert s.value("b") == 2
