"""Unit tests for the database engine and complex operations."""

import pytest

from repro.backend.engine import DatabaseEngine
from repro.backend.events import (
    AggregateEvent,
    ComplexOperationEvent,
    DeleteEvent,
    InsertEvent,
    UpdateEvent,
)
from repro.backend.memory import InMemoryStore
from repro.exceptions import TransactionError, UnknownObjectError


@pytest.fixture
def engine():
    return DatabaseEngine(InMemoryStore())


@pytest.fixture
def events(engine):
    collected = []
    engine.add_listener(collected.append)
    return collected


class TestPrimitives:
    def test_insert_event_carries_context(self, engine, events):
        engine.insert("db", None)
        engine.insert("db/x", 5, "db")
        assert events[1] == InsertEvent("db/x", value=5, parent="db", ancestors=("db",))
        assert engine.store.value("db/x") == 5

    def test_update_event_has_old_and_new(self, engine, events):
        engine.insert("a", 1)
        engine.update("a", 2)
        event = events[-1]
        assert isinstance(event, UpdateEvent)
        assert (event.old_value, event.new_value) == (1, 2)

    def test_delete_event_has_pre_op_ancestors(self, engine, events):
        engine.insert("db", None)
        engine.insert("db/x", 5, "db")
        engine.delete("db/x")
        event = events[-1]
        assert isinstance(event, DeleteEvent)
        assert event.old_value == 5
        assert event.ancestors == ("db",)
        assert "db/x" not in engine.store

    def test_event_kind_names(self, engine, events):
        engine.insert("a", 1)
        engine.update("a", 2)
        engine.delete("a")
        assert [e.kind for e in events] == ["insert", "update", "delete"]


class TestAggregate:
    def test_default_copy_aggregation(self, engine, events):
        engine.insert("A", "a")
        engine.insert("A/x", 1, "A")
        engine.insert("B", "b")
        event = engine.aggregate(["B", "A"], "C")
        assert isinstance(event, AggregateEvent)
        assert event.input_roots == ("A", "B")  # sorted into global order
        assert engine.store.value("C/A/x") == 1
        assert engine.store.value("C/B") == "b"
        # inputs still present
        assert "A" in engine.store and "B" in engine.store
        assert set(event.created_ids) == {"C", "C/A", "C/A/x", "C/B"}

    def test_custom_builder(self, engine):
        engine.insert("A", 10)
        engine.insert("B", 20)

        def summing_builder(eng, inputs, output_id):
            total = sum(eng.store.value(i) for i in inputs)
            eng.store.insert(output_id, total, None)
            return [output_id]

        event = engine.aggregate(["A", "B"], "SUM", builder=summing_builder)
        assert engine.store.value("SUM") == 30
        assert event.created_ids == ("SUM",)

    def test_missing_input_rejected(self, engine):
        with pytest.raises(UnknownObjectError):
            engine.aggregate(["ghost"], "out")

    def test_aggregate_inside_complex_op_rejected(self, engine):
        engine.insert("A", 1)
        with pytest.raises(TransactionError):
            with engine.complex_operation():
                engine.aggregate(["A"], "B")


class TestComplexOperations:
    def test_events_buffered_and_emitted_once(self, engine, events):
        with engine.complex_operation():
            engine.insert("db", None)
            engine.insert("db/x", 1, "db")
            engine.update("db/x", 2)
        assert len(events) == 1
        complex_event = events[0]
        assert isinstance(complex_event, ComplexOperationEvent)
        assert len(complex_event) == 3
        assert [e.kind for e in complex_event.events] == ["insert", "insert", "update"]

    def test_empty_complex_op_emits_nothing(self, engine, events):
        with engine.complex_operation():
            pass
        assert events == []

    def test_nesting_joins_outer_operation(self, engine, events):
        with engine.complex_operation():
            engine.insert("a", 1)
            with engine.complex_operation():
                engine.insert("b", 2)
            engine.insert("c", 3)
        assert len(events) == 1  # one ComplexOperationEvent
        assert len(events[0]) == 3

    def test_exception_abandons_buffer(self, engine, events):
        with pytest.raises(ValueError):
            with engine.complex_operation():
                engine.insert("a", 1)
                raise ValueError("boom")
        assert events == []  # nothing emitted
        assert "a" in engine.store  # store changes are not rolled back
        # engine is usable again
        with engine.complex_operation():
            engine.update("a", 2)
        assert len(events) == 1

    def test_in_complex_operation_flag(self, engine):
        assert not engine.in_complex_operation
        with engine.complex_operation():
            assert engine.in_complex_operation
        assert not engine.in_complex_operation


class TestRelationalViewOverEngine:
    def test_full_lifecycle(self, engine):
        from repro.model.relational import RelationalView

        view = RelationalView(engine)
        view.create_table("patients", ["age", "weight"])
        key = view.insert_row("patients", {"age": 52, "weight": 81})
        assert view.get_row("patients", key) == {"age": 52, "weight": 81}
        view.update_cell("patients", key, "age", 53)
        assert view.get_cell("patients", key, "age") == 53
        view.delete_row("patients", key)
        assert view.row_count("patients") == 0

    def test_row_keys_monotonic(self, engine):
        from repro.model.relational import RelationalView

        view = RelationalView(engine)
        view.create_table("t", ["c"])
        keys = [view.insert_row("t", {"c": i}) for i in range(5)]
        assert keys == [0, 1, 2, 3, 4]
        view.delete_row("t", 4)
        assert view.insert_row("t", {"c": 9}) == 5  # keys never reused

    def test_unknown_column_rejected(self, engine):
        from repro.exceptions import WorkloadError
        from repro.model.relational import RelationalView

        view = RelationalView(engine)
        view.create_table("t", ["c"])
        with pytest.raises(WorkloadError):
            view.insert_row("t", {"nope": 1})

    def test_counter_resumes_from_existing_rows(self, engine):
        from repro.model.relational import RelationalView

        view = RelationalView(engine)
        view.create_table("t", ["c"])
        view.insert_row("t", {"c": 1})
        # A fresh view over the same store must not reuse keys.
        view2 = RelationalView(engine)
        assert view2.insert_row("t", {"c": 2}) == 1
