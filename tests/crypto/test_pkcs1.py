"""Unit tests for EMSA-PKCS1-v1_5 encoding."""

import hashlib

import pytest

from repro.crypto import pkcs1
from repro.exceptions import SignatureError, UnknownHashAlgorithm


class TestEncode:
    def test_structure_sha1(self):
        em = pkcs1.encode(b"hello", 64, "sha1")
        assert len(em) == 64
        assert em[:2] == b"\x00\x01"
        # padding runs until the 0x00 separator
        sep = em.index(b"\x00", 2)
        assert set(em[2:sep]) == {0xFF}
        assert em[sep + 1 :].endswith(hashlib.sha1(b"hello").digest())

    def test_digest_info_prefix_present(self):
        em = pkcs1.encode(b"m", 64, "sha1")
        assert pkcs1.digest_info_prefix("sha1") in em

    @pytest.mark.parametrize("alg,factory", [
        ("md5", hashlib.md5),
        ("sha1", hashlib.sha1),
        ("sha256", hashlib.sha256),
        ("sha512", hashlib.sha512),
    ])
    def test_all_algorithms_embed_their_digest(self, alg, factory):
        em = pkcs1.encode(b"msg", 128, alg)
        assert em.endswith(factory(b"msg").digest())

    def test_deterministic(self):
        assert pkcs1.encode(b"x", 64) == pkcs1.encode(b"x", 64)

    def test_distinct_messages_distinct_encodings(self):
        assert pkcs1.encode(b"x", 64) != pkcs1.encode(b"y", 64)

    def test_modulus_too_small(self):
        with pytest.raises(SignatureError):
            pkcs1.encode(b"m", 16, "sha256")

    def test_minimum_padding_enforced(self):
        # smallest legal em_len = len(DigestInfo+digest) + 8 + 3
        t_len = len(pkcs1.digest_info_prefix("sha1")) + 20
        smallest = t_len + pkcs1.MIN_PADDING_LEN + 3
        em = pkcs1.encode(b"m", smallest, "sha1")
        assert len(em) == smallest
        with pytest.raises(SignatureError):
            pkcs1.encode(b"m", smallest - 1, "sha1")

    def test_unknown_algorithm(self):
        with pytest.raises(UnknownHashAlgorithm):
            pkcs1.encode(b"m", 64, "sha3-971")

    def test_known_vector_sha1(self):
        # RFC 3447-style structure check against an independently computed value.
        em = pkcs1.encode(b"abc", 48, "sha1")
        expected = (
            b"\x00\x01" + b"\xff" * 10 + b"\x00"
            + bytes.fromhex("3021300906052b0e03021a05000414")
            + hashlib.sha1(b"abc").digest()
        )
        assert em == expected
