"""Unit tests for certificates, the CA, key store, and participants."""

import dataclasses

import pytest

from repro.crypto.pki import Certificate, CertificateAuthority, KeyStore, Participant
from repro.exceptions import CertificateError


class TestCertificateAuthority:
    def test_issue_and_verify(self, ca, keypair):
        cert = ca.issue("alice", keypair.public)
        assert cert.subject == "alice"
        assert cert.issuer == ca.name
        assert ca.verify_certificate(cert)

    def test_serials_increase(self, ca, keypair):
        c1 = ca.issue("s1", keypair.public)
        c2 = ca.issue("s2", keypair.public)
        assert c2.serial > c1.serial

    def test_tampered_subject_detected(self, ca, keypair):
        cert = ca.issue("bob", keypair.public)
        forged = dataclasses.replace(cert, subject="mallory")
        assert not ca.verify_certificate(forged)

    def test_tampered_key_detected(self, ca, keypair, other_keypair):
        cert = ca.issue("carol", keypair.public)
        forged = dataclasses.replace(cert, public_key=other_keypair.public)
        assert not ca.verify_certificate(forged)

    def test_wrong_issuer_rejected(self, ca, keypair):
        cert = ca.issue("dave", keypair.public)
        forged = dataclasses.replace(cert, issuer="evil-ca")
        assert not ca.verify_certificate(forged)

    def test_certificate_lookup(self, ca, keypair):
        cert = ca.issue("erin", keypair.public)
        assert ca.certificate_for("erin") == cert
        with pytest.raises(CertificateError):
            ca.certificate_for("nobody-here")


class TestCertificateSerialization:
    def test_roundtrip(self, ca, keypair):
        cert = ca.issue("frank", keypair.public)
        restored = Certificate.from_dict(cert.to_dict())
        assert restored == cert
        assert ca.verify_certificate(restored)

    def test_malformed_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.from_dict({"serial": "x"})


class TestKeyStore:
    def test_add_and_resolve(self, ca, participants):
        store = KeyStore.trusting(ca)
        p1 = participants["p1"]
        store.add_certificate(p1.certificate)
        verifier = store.verifier_for("p1")
        assert verifier.verify(b"m", p1.sign(b"m"))

    def test_untrusted_issuer_rejected(self, ca, participants):
        store = KeyStore.trusting(ca)
        cert = dataclasses.replace(participants["p1"].certificate, issuer="evil-ca")
        with pytest.raises(CertificateError):
            store.add_certificate(cert)

    def test_forged_certificate_rejected(self, ca, participants, other_keypair):
        store = KeyStore.trusting(ca)
        forged = dataclasses.replace(
            participants["p1"].certificate, public_key=other_keypair.public
        )
        with pytest.raises(CertificateError):
            store.add_certificate(forged)

    def test_unknown_participant(self, ca):
        store = KeyStore.trusting(ca)
        with pytest.raises(CertificateError):
            store.verifier_for("ghost")

    def test_contains_and_listing(self, keystore):
        assert "p1" in keystore
        assert "ghost" not in keystore
        assert keystore.participants() == ("p1", "p2", "p3")


class TestParticipant:
    def test_enrolled_participant_signs_verifiably(self, participants, keystore):
        p2 = participants["p2"]
        sig = p2.sign(b"checksum payload")
        assert keystore.verifier_for("p2").verify(b"checksum payload", sig)

    def test_cross_participant_verification_fails(self, participants, keystore):
        sig = participants["p2"].sign(b"m")
        assert not keystore.verifier_for("p1").verify(b"m", sig)

    def test_signature_size(self, participants):
        assert participants["p1"].signature_size == 512 // 8

    def test_repr_mentions_scheme(self, participants):
        assert "rsa-pkcs1v15" in repr(participants["p1"])
