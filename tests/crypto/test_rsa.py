"""Unit tests for RSA key generation and the raw permutation."""

import random

import pytest

from repro.crypto.rsa import RSAPrivateKey, generate_keypair
from repro.exceptions import CryptoError, KeyGenerationError


class TestKeyGeneration:
    def test_modulus_bit_length(self, keypair):
        assert keypair.public.n.bit_length() == 512

    def test_paper_key_size_signature_bytes(self):
        # The paper's provenance table stores Checksum binary(128): 1024-bit RSA.
        kp = generate_keypair(1024, rng=random.Random(42))
        assert kp.public.byte_size == 128

    def test_public_matches_private(self, keypair):
        assert keypair.private.public_key() == keypair.public

    def test_invalid_bits(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(63)
        with pytest.raises(KeyGenerationError):
            generate_keypair(65)

    def test_invalid_exponent(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(128, e=4)
        with pytest.raises(KeyGenerationError):
            generate_keypair(128, e=1)

    def test_reproducible_with_seed(self):
        a = generate_keypair(128, rng=random.Random(11))
        b = generate_keypair(128, rng=random.Random(11))
        assert a.private == b.private

    def test_inconsistent_private_key_rejected(self):
        with pytest.raises(KeyGenerationError):
            RSAPrivateKey(n=15, e=3, d=3, p=3, q=7)  # 3*7 != 15


class TestRawPermutation:
    def test_roundtrip(self, keypair):
        for m in (0, 1, 2, 12345, keypair.public.n - 1):
            c = keypair.public.encrypt_int(m)
            assert keypair.private.decrypt_int(c) == m

    def test_signature_direction_roundtrip(self, keypair):
        # sign = private op, verify = public op
        m = 0xDEADBEEF
        s = keypair.private.decrypt_int(m)
        assert keypair.public.encrypt_int(s) == m

    def test_out_of_range_rejected(self, keypair):
        with pytest.raises(CryptoError):
            keypair.public.encrypt_int(keypair.public.n)
        with pytest.raises(CryptoError):
            keypair.private.decrypt_int(-1)

    def test_crt_matches_plain_exponentiation(self, keypair):
        priv = keypair.private
        c = 987654321
        assert priv.decrypt_int(c) == pow(c, priv.d, priv.n)

    def test_fingerprint_stable_and_distinct(self, keypair, other_keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != other_keypair.public.fingerprint()
