"""Key-rotation tests: old records stay verifiable after re-enrollment."""

import pytest

from repro.crypto.pki import CertificateAuthority, KeyStore, Participant
from repro.crypto.signatures import MultiKeyVerifier
from repro.exceptions import CryptoError


class TestMultiKeyVerifier:
    def test_any_key_accepts(self, keypair, other_keypair):
        from repro.crypto.signatures import RSASignatureScheme, RSASignatureVerifier

        old = RSASignatureScheme(keypair.private)
        new = RSASignatureScheme(other_keypair.private)
        multi = MultiKeyVerifier(
            (RSASignatureVerifier(other_keypair.public), RSASignatureVerifier(keypair.public))
        )
        assert multi.verify(b"m", old.sign(b"m"))
        assert multi.verify(b"m", new.sign(b"m"))
        assert not multi.verify(b"x", old.sign(b"m"))

    def test_empty_rejected(self):
        with pytest.raises(CryptoError):
            MultiKeyVerifier(())


class TestCertificateRotation:
    def test_ca_keeps_all_generations(self, rng):
        ca = CertificateAuthority(key_bits=512, rng=rng)
        first = Participant.enroll("rotator", ca, key_bits=512, rng=rng)
        second = Participant.enroll("rotator", ca, key_bits=512, rng=rng)
        certs = ca.certificates_for("rotator")
        assert len(certs) == 2
        assert certs[0].serial < certs[1].serial
        assert ca.certificate_for("rotator") == certs[-1]  # current
        assert first.certificate in certs and second.certificate in certs

    def test_keystore_tries_all_generations(self, rng):
        ca = CertificateAuthority(key_bits=512, rng=rng)
        old = Participant.enroll("rotator", ca, key_bits=512, rng=rng)
        new = Participant.enroll("rotator", ca, key_bits=512, rng=rng)
        store = KeyStore.trusting(ca)
        store.add_certificates(ca.issued_certificates())
        verifier = store.verifier_for("rotator")
        assert verifier.verify(b"m", old.sign(b"m"))
        assert verifier.verify(b"m", new.sign(b"m"))

    def test_duplicate_certificate_add_is_idempotent(self, rng):
        ca = CertificateAuthority(key_bits=512, rng=rng)
        p = Participant.enroll("solo", ca, key_bits=512, rng=rng)
        store = KeyStore.trusting(ca)
        store.add_certificate(p.certificate)
        store.add_certificate(p.certificate)
        assert len(store.verifier_for("solo").verifiers) == 1


class TestSystemLevelRotation:
    def test_history_spanning_a_rotation_verifies(self, rng):
        from repro.core.system import TamperEvidentDatabase

        ca = CertificateAuthority(key_bits=512, rng=rng)
        db = TamperEvidentDatabase(ca=ca, key_bits=512, rng=rng)
        alice_v1 = db.enroll("alice")
        db.session(alice_v1).insert("x", 1)
        db.session(alice_v1).update("x", 2)

        alice_v2 = db.enroll("alice")  # rotation: new keys, same identity
        db.session(alice_v2).update("x", 3)

        report = db.verify("x")
        assert report.ok, report.summary()

    def test_rotated_shipment_carries_all_certificates(self, rng):
        from repro.core.system import TamperEvidentDatabase

        ca = CertificateAuthority(key_bits=512, rng=rng)
        db = TamperEvidentDatabase(ca=ca, key_bits=512, rng=rng)
        alice_v1 = db.enroll("alice")
        db.session(alice_v1).insert("x", 1)
        alice_v2 = db.enroll("alice")
        db.session(alice_v2).update("x", 2)

        shipment = db.ship("x")
        serials = {c.serial for c in shipment.certificates if c.subject == "alice"}
        assert len(serials) == 2
        assert shipment.verify_with_ca(ca.public_key, ca.name).ok

    def test_old_key_signature_rejected_for_forgery(self, rng):
        """Rotation must not weaken anything: a signature by an entirely
        different participant still fails under the rotated identity."""
        from repro.core.system import TamperEvidentDatabase

        ca = CertificateAuthority(key_bits=512, rng=rng)
        db = TamperEvidentDatabase(ca=ca, key_bits=512, rng=rng)
        alice = db.enroll("alice")
        db.enroll("alice")  # rotation
        mallory = db.enroll("mallory")
        db.session(alice).insert("x", 1)

        import dataclasses

        shipment = db.ship("x")
        record = shipment.records[0]
        forged = dataclasses.replace(record, participant_id="mallory")
        records = (forged,)
        broken = dataclasses.replace(shipment, records=records)
        assert mallory.participant_id == "mallory"
        report = broken.verify_with_ca(ca.public_key, ca.name)
        assert not report.ok