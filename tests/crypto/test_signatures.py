"""Unit tests for the signature schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.signatures import (
    HMACSignatureScheme,
    NullSignatureScheme,
    RSASignatureScheme,
    RSASignatureVerifier,
    SignatureScheme,
)
from repro.exceptions import CryptoError


@pytest.fixture(scope="module")
def rsa_scheme(keypair):
    return RSASignatureScheme(keypair.private)


class TestRSASignatureScheme:
    def test_sign_verify_roundtrip(self, rsa_scheme):
        sig = rsa_scheme.sign(b"provenance record")
        assert rsa_scheme.verify(b"provenance record", sig)

    def test_tampered_message_fails(self, rsa_scheme):
        sig = rsa_scheme.sign(b"original")
        assert not rsa_scheme.verify(b"tampered", sig)

    def test_tampered_signature_fails(self, rsa_scheme):
        sig = bytearray(rsa_scheme.sign(b"m"))
        sig[0] ^= 0x01
        assert not rsa_scheme.verify(b"m", bytes(sig))

    def test_signature_size_is_modulus_size(self, rsa_scheme, keypair):
        assert rsa_scheme.signature_size == keypair.public.byte_size
        assert len(rsa_scheme.sign(b"m")) == rsa_scheme.signature_size

    def test_wrong_key_fails(self, rsa_scheme, other_keypair):
        sig = rsa_scheme.sign(b"m")
        other = RSASignatureVerifier(other_keypair.public)
        assert not other.verify(b"m", sig)

    def test_public_verifier_only_needs_public_key(self, rsa_scheme, keypair):
        sig = rsa_scheme.sign(b"m")
        verifier = RSASignatureVerifier(keypair.public)
        assert verifier.verify(b"m", sig)

    def test_wrong_length_signature_rejected(self, rsa_scheme):
        assert not rsa_scheme.verify(b"m", b"short")
        assert not rsa_scheme.verify(b"m", b"\x00" * (rsa_scheme.signature_size + 1))

    def test_oversized_int_signature_rejected(self, rsa_scheme, keypair):
        bad = (keypair.public.n + 1).to_bytes(keypair.public.byte_size + 1, "big")
        assert not rsa_scheme.verify(b"m", bad[-keypair.public.byte_size :] or bad)

    def test_satisfies_protocol(self, rsa_scheme):
        assert isinstance(rsa_scheme, SignatureScheme)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=256))
    def test_roundtrip_arbitrary_messages(self, rsa_scheme, message):
        assert rsa_scheme.verify(message, rsa_scheme.sign(message))


class TestHMACSignatureScheme:
    def test_roundtrip(self):
        scheme = HMACSignatureScheme(b"secret")
        sig = scheme.sign(b"m")
        assert scheme.verify(b"m", sig)
        assert not scheme.verify(b"other", sig)

    def test_signature_size(self):
        assert HMACSignatureScheme(b"k", "sha1").signature_size == 20
        assert HMACSignatureScheme(b"k", "sha256").signature_size == 32

    def test_different_keys_disagree(self):
        a = HMACSignatureScheme(b"a").sign(b"m")
        b = HMACSignatureScheme(b"b").sign(b"m")
        assert a != b

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            HMACSignatureScheme(b"")

    def test_satisfies_protocol(self):
        assert isinstance(HMACSignatureScheme(b"k"), SignatureScheme)


class TestNullSignatureScheme:
    def test_roundtrip(self):
        scheme = NullSignatureScheme()
        sig = scheme.sign(b"m")
        assert scheme.verify(b"m", sig)
        assert not scheme.verify(b"x", sig)

    def test_is_plain_digest(self):
        import hashlib

        assert NullSignatureScheme("sha256").sign(b"m") == hashlib.sha256(b"m").digest()

    def test_satisfies_protocol(self):
        assert isinstance(NullSignatureScheme(), SignatureScheme)
