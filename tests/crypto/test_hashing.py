"""Unit tests for the hash-algorithm registry."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    DEFAULT_HASH,
    HashAlgorithm,
    available_algorithms,
    get_algorithm,
    hash_bytes,
    hash_concat,
    register_algorithm,
)
from repro.exceptions import UnknownHashAlgorithm


class TestRegistry:
    def test_builtins_available(self):
        names = available_algorithms()
        for expected in ("md5", "sha1", "sha256", "sha512"):
            assert expected in names

    def test_default_is_paper_algorithm(self):
        # Java MessageDigest("SHA") == SHA-1 with 20-byte digests.
        assert DEFAULT_HASH == "sha1"
        assert get_algorithm(DEFAULT_HASH).digest_size == 20

    def test_lookup_case_insensitive(self):
        assert get_algorithm("SHA1") is get_algorithm("sha1")

    def test_unknown_raises(self):
        with pytest.raises(UnknownHashAlgorithm):
            get_algorithm("whirlpool-9000")

    def test_register_custom(self):
        alg = HashAlgorithm("test-sha1-alias", hashlib.sha1, 20)
        register_algorithm(alg)
        assert get_algorithm("test-sha1-alias").digest(b"x") == hashlib.sha1(b"x").digest()


class TestHashing:
    def test_hash_bytes_matches_hashlib(self):
        assert hash_bytes(b"data", "sha256") == hashlib.sha256(b"data").digest()

    def test_digest_size(self):
        assert len(hash_bytes(b"x", "sha1")) == 20
        assert len(hash_bytes(b"x", "sha256")) == 32

    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_hash_concat_equals_joined(self, parts):
        assert hash_concat(parts, "sha1") == hash_bytes(b"".join(parts), "sha1")

    def test_hash_concat_streaming_large(self):
        chunks = (b"c" * 1000 for _ in range(100))
        assert hash_concat(chunks) == hash_bytes(b"c" * 100_000)

    def test_incremental_interface(self):
        alg = get_algorithm("sha1")
        h = alg.new()
        h.update(b"ab")
        h.update(b"cd")
        assert h.digest() == alg.digest(b"abcd")
