"""Unit tests for key serialization."""

import json

import pytest

from repro.crypto.keys import (
    private_key_from_dict,
    private_key_to_dict,
    public_key_from_dict,
    public_key_to_dict,
)
from repro.exceptions import CryptoError


class TestPublicKeySerialization:
    def test_roundtrip(self, keypair):
        data = public_key_to_dict(keypair.public)
        assert public_key_from_dict(data) == keypair.public

    def test_json_safe(self, keypair):
        blob = json.dumps(public_key_to_dict(keypair.public))
        assert public_key_from_dict(json.loads(blob)) == keypair.public

    def test_wrong_kind_rejected(self, keypair):
        data = public_key_to_dict(keypair.public)
        data["kind"] = "rsa-private"
        with pytest.raises(CryptoError):
            public_key_from_dict(data)

    def test_missing_field_rejected(self, keypair):
        data = public_key_to_dict(keypair.public)
        del data["e"]
        with pytest.raises(CryptoError):
            public_key_from_dict(data)

    def test_garbage_value_rejected(self, keypair):
        data = public_key_to_dict(keypair.public)
        data["n"] = "not-hex"
        with pytest.raises(CryptoError):
            public_key_from_dict(data)


class TestPrivateKeySerialization:
    def test_roundtrip_including_crt(self, keypair):
        data = private_key_to_dict(keypair.private)
        restored = private_key_from_dict(data)
        assert restored == keypair.private  # CRT params re-derived equal

    def test_restored_key_signs(self, keypair):
        from repro.crypto.signatures import RSASignatureScheme

        restored = private_key_from_dict(private_key_to_dict(keypair.private))
        scheme = RSASignatureScheme(restored)
        assert scheme.verify(b"m", scheme.sign(b"m"))

    def test_wrong_kind_rejected(self, keypair):
        data = private_key_to_dict(keypair.private)
        data["kind"] = "rsa-public"
        with pytest.raises(CryptoError):
            private_key_from_dict(data)
