"""Unit tests for modular arithmetic and primality testing."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numbers import egcd, generate_prime, invmod, is_probable_prime
from repro.exceptions import KeyGenerationError

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 997, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 4, 9, 100, 561, 1105, 1729, 2465, 6601, 8911,  # Carmichael
                    2**32 - 1, 2**61 + 1]


class TestEgcd:
    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_common_factor(self):
        g, x, y = egcd(12, 18)
        assert g == 6
        assert 12 * x + 18 * y == 6

    def test_zero(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=0, max_value=10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestInvmod:
    def test_simple(self):
        assert invmod(3, 11) == 4  # 3*4 = 12 ≡ 1 (mod 11)

    def test_not_invertible(self):
        with pytest.raises(KeyGenerationError):
            invmod(6, 9)

    @given(st.integers(min_value=2, max_value=10**9))
    def test_inverse_property(self, a):
        m = 1_000_000_007  # prime modulus: everything nonzero is invertible
        a = a % m or 1
        inv = invmod(a, m)
        assert (a * inv) % m == 1
        assert 0 <= inv < m


class TestMillerRabin:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not is_probable_prime(c)

    def test_negative_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert not is_probable_prime(-7)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime (above the deterministic bound).
        assert is_probable_prime(2**127 - 1, rng=random.Random(1))

    def test_large_composite(self):
        assert not is_probable_prime((2**127 - 1) * (2**89 - 1), rng=random.Random(1))

    @settings(max_examples=30)
    @given(st.integers(min_value=2, max_value=50_000))
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_trial


class TestGeneratePrime:
    def test_bit_length_exact(self):
        rng = random.Random(7)
        for bits in (8, 16, 64, 256):
            p = generate_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        p = generate_prime(64, rng=random.Random(3))
        assert (p >> 62) & 0b11 == 0b11

    def test_oddness(self):
        p = generate_prime(32, rng=random.Random(5))
        assert p % 2 == 1

    def test_too_small_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_prime(4)

    def test_reproducible_with_seed(self):
        assert generate_prime(64, rng=random.Random(9)) == generate_prime(
            64, rng=random.Random(9)
        )
