"""Unit tests for Merkle-batch signatures: tree helpers, proofs, scheme.

The chain-level behaviour (detection equivalence with per-record RSA)
lives in ``tests/faults/test_scheme_equivalence.py`` and the chaos
matrix; this file pins the building blocks.
"""

import dataclasses
import random

import pytest

from repro.core.merkle import (
    batch_audit_path,
    batch_audit_paths,
    batch_leaf,
    batch_root,
    resolve_batch_root,
)
from repro.crypto.proofs import BatchProof, batch_root_message
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import (
    MERKLE_BATCH_SCHEME,
    MerkleBatchSignatureScheme,
    record_signature_valid,
)
from repro.exceptions import ProvenanceError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(512, rng=random.Random(9))


@pytest.fixture()
def scheme(keypair):
    return MerkleBatchSignatureScheme(keypair.private)


# ---------------------------------------------------------------------------
# tree helpers
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("count", (1, 2, 3, 4, 5, 8, 13))
def test_audit_paths_resolve_to_the_root(count):
    leaves = [batch_leaf(f"payload {i}".encode()) for i in range(count)]
    root = batch_root(leaves)
    for index, path in enumerate(batch_audit_paths(leaves)):
        assert path == batch_audit_path(leaves, index)
        assert resolve_batch_root(leaves[index], index, count, path) == root


def test_leaf_and_node_domains_are_separated():
    # A leaf digest of (a || b) must differ from the internal node over
    # leaves a, b — otherwise a forged "leaf" could impersonate a subtree.
    a, b = batch_leaf(b"a"), batch_leaf(b"b")
    assert batch_leaf(a + b) != batch_root([a, b])


def test_tampered_leaf_or_path_changes_the_root():
    leaves = [batch_leaf(bytes([i])) for i in range(4)]
    root = batch_root(leaves)
    path = batch_audit_path(leaves, 2)
    assert resolve_batch_root(batch_leaf(b"evil"), 2, 4, path) != root
    bad_path = (bytes(20),) + tuple(path[1:])
    assert resolve_batch_root(leaves[2], 2, 4, bad_path) != root


def test_resolve_rejects_malformed_shapes():
    leaves = [batch_leaf(bytes([i])) for i in range(4)]
    path = batch_audit_path(leaves, 1)
    with pytest.raises(ProvenanceError):
        resolve_batch_root(leaves[1], 1, 4, path[:-1])  # too short
    with pytest.raises(ProvenanceError):
        resolve_batch_root(leaves[1], 1, 4, path + (bytes(20),))  # too long
    with pytest.raises(ProvenanceError):
        resolve_batch_root(leaves[1], 4, 4, path)  # index out of range
    with pytest.raises(ProvenanceError):
        batch_root([])


# ---------------------------------------------------------------------------
# BatchProof
# ---------------------------------------------------------------------------


def test_batch_proof_roundtrip_and_validation():
    proof = BatchProof(
        epoch=3, index=1, count=4, path=(b"\x01" * 20, b"\x02" * 20),
        root_signature=b"\x03" * 64,
    )
    assert BatchProof.from_dict(proof.to_dict()) == proof
    assert proof.storage_bytes() == 12 + 40 + 64
    with pytest.raises(ProvenanceError):
        BatchProof(epoch=0, index=4, count=4, path=(), root_signature=b"s")
    with pytest.raises(ProvenanceError):
        BatchProof(epoch=0, index=0, count=0, path=(), root_signature=b"s")
    with pytest.raises(ProvenanceError):
        BatchProof.from_dict({"epoch": "x"})


def test_root_message_binds_epoch_count_and_root():
    root = batch_leaf(b"r")
    messages = {
        batch_root_message(0, 1, root),
        batch_root_message(1, 1, root),
        batch_root_message(0, 2, root),
        batch_root_message(0, 1, batch_leaf(b"other")),
    }
    assert len(messages) == 4


# ---------------------------------------------------------------------------
# the scheme
# ---------------------------------------------------------------------------


def test_sign_buffers_and_seal_drains(scheme):
    payloads = [f"p{i}".encode() for i in range(5)]
    checksums = [scheme.sign(p) for p in payloads]
    assert checksums == [batch_leaf(p) for p in payloads]  # deterministic
    assert scheme.pending_count() == 5
    proofs = scheme.seal_batch()
    assert scheme.pending_count() == 0
    assert len(proofs) == 5
    for payload, checksum, proof in zip(payloads, checksums, proofs):
        assert proof.count == 5
        assert scheme.verify_with_proof(payload, checksum, proof)
    # Epochs advance per sealed batch.
    scheme.sign(b"next")
    (next_proof,) = scheme.seal_batch()
    assert next_proof.epoch == proofs[0].epoch + 1
    assert next_proof.count == 1 and next_proof.path == ()


def test_seal_empty_batch_is_a_noop(scheme):
    assert scheme.seal_batch() == ()


def test_abort_discards_pending(scheme):
    scheme.sign(b"doomed")
    assert scheme.abort_batch() == 1
    assert scheme.seal_batch() == ()


def test_proof_from_wrong_record_does_not_verify(scheme):
    payloads = [b"a", b"b", b"c"]
    checksums = [scheme.sign(p) for p in payloads]
    proofs = scheme.seal_batch()
    assert not scheme.verify_with_proof(payloads[0], checksums[0], proofs[1])
    assert not scheme.verify_with_proof(b"evil", batch_leaf(b"evil"), proofs[0])


def test_record_signature_valid_dispatches_on_proof(scheme, keypair):
    from repro.provenance.records import ObjectState, ProvenanceRecord, Operation

    payload = b"record payload"
    checksum = scheme.sign(payload)
    (proof,) = scheme.seal_batch()
    record = ProvenanceRecord(
        object_id="x",
        seq_id=0,
        participant_id="p",
        operation=Operation.INSERT,
        inputs=(),
        output=ObjectState(object_id="x", digest=b"\x00" * 20),
        checksum=checksum,
        scheme=MERKLE_BATCH_SCHEME,
        proof=proof,
    )
    verifier = scheme.verifier()
    cache = {}
    assert record_signature_valid(verifier, record, payload, cache)
    assert len(cache) == 1  # root verification memoized
    # Stripping the proof falls back to (failing) per-record verification.
    assert not record_signature_valid(verifier, record.with_proof(None), payload)
    # A record that never had a proof uses plain key.verify.
    from repro.crypto.signatures import RSASignatureScheme

    rsa = RSASignatureScheme(keypair.private)
    plain = dataclasses.replace(
        record, scheme="rsa-pkcs1v15", proof=None,
        checksum=rsa.sign(payload),
    )
    assert record_signature_valid(rsa.verifier(), plain, payload)


def test_batches_are_thread_local(scheme):
    import threading

    seen = {}

    def worker():
        scheme.sign(b"other thread")
        seen["pending"] = scheme.pending_count()
        scheme.abort_batch()

    scheme.sign(b"main thread")
    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert seen["pending"] == 1  # not 2: the main thread's leaf is invisible
    assert scheme.pending_count() == 1
    scheme.abort_batch()


# ---------------------------------------------------------------------------
# persistence: proofs survive every serialization path
# ---------------------------------------------------------------------------


def test_proofs_survive_store_and_shipment_roundtrips(tmp_path):
    from repro.core.system import TamperEvidentDatabase
    from repro.core.shipment import Shipment
    from repro.provenance.store import SQLiteProvenanceStore

    store = SQLiteProvenanceStore(str(tmp_path / "prov.db"))
    db = TamperEvidentDatabase(
        provenance_store=store,
        key_bits=512,
        rng=random.Random(1),
        signature_scheme="merkle-batch",
    )
    session = db.session(db.enroll("writer"))
    with session.complex_operation():
        for i in range(3):
            session.insert(f"o{i}", i)
    records = list(store.all_records())
    assert all(r.proof is not None and r.proof.count == 3 for r in records)
    shipment = db.ship("o0")
    restored = Shipment.from_json(shipment.to_json())
    assert [r.proof for r in restored.records] == [
        r.proof for r in shipment.records
    ]
    report = restored.verify_with_ca(db.ca.public_key, db.ca.name)
    assert report.ok, report.summary()


def test_incremental_verification_accepts_merkle_extensions():
    from repro.core.incremental import Checkpoint, verify_extension
    from repro.core.system import TamperEvidentDatabase
    from repro.core.verifier import Verifier
    from repro.provenance.snapshot import SubtreeSnapshot

    db = TamperEvidentDatabase(
        key_bits=512, rng=random.Random(2), signature_scheme="merkle-batch"
    )
    session = db.session(db.enroll("writer"))
    session.insert("x", 1)
    session.update("x", 2)
    records = list(db.provenance_of("x"))
    verifier = Verifier(db.keystore())
    assert verifier.verify_records(records).ok
    checkpoint = Checkpoint.from_records("x", records)
    session.update("x", 3)
    new_records = list(db.provenance_of("x"))
    snapshot = SubtreeSnapshot.capture(db.store, "x")
    report = verify_extension(verifier, checkpoint, snapshot, new_records)
    assert report.ok, report.summary()
    # A tampered extension record still fails R1.
    tail = new_records[-1]
    bad = tail.with_proof(
        dataclasses.replace(tail.proof, epoch=tail.proof.epoch + 7)
    )
    report = verify_extension(
        verifier, checkpoint, snapshot, new_records[:-1] + [bad]
    )
    assert not report.ok
    assert report.failures[0].requirement == "R1"
