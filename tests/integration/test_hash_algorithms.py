"""The whole pipeline parameterised over hash algorithms.

The paper's evaluation uses SHA-1 (Java's ``MessageDigest("SHA")``); the
implementation treats the algorithm as a parameter everywhere.  These
tests run the full flow under each registered algorithm and pin that
digest *sizes* propagate correctly end to end.
"""

import pytest

from repro.core.merkle import subtree_digest
from repro.core.system import TamperEvidentDatabase
from repro.crypto.hashing import get_algorithm

ALGORITHMS = ("md5", "sha1", "sha256", "sha512")


@pytest.fixture(params=ALGORITHMS)
def algo_db(request, ca, participants):
    db = TamperEvidentDatabase(ca=ca, hash_algorithm=request.param)
    return request.param, db, db.session(participants["p1"])


class TestEndToEndPerAlgorithm:
    def test_full_flow_verifies(self, algo_db):
        algorithm, db, session = algo_db
        session.insert("t", None)
        with session.complex_operation():
            session.insert("t/r", None, "t")
            session.insert("t/r/c", 7, "t/r")
        session.update("t/r/c", 8)
        session.aggregate(["t/r"], "extract")
        for target in ("t", "extract"):
            report = db.verify(target)
            assert report.ok, f"{algorithm}/{target}: {report.summary()}"

    def test_digest_sizes_propagate(self, algo_db):
        algorithm, db, session = algo_db
        session.insert("x", 1)
        record = db.provenance_store.latest("x")
        assert record.hash_algorithm == algorithm
        assert len(record.output.digest) == get_algorithm(algorithm).digest_size

    def test_shipment_roundtrip(self, algo_db):
        from repro.core.shipment import Shipment

        algorithm, db, session = algo_db
        session.insert("x", 1)
        session.update("x", 2)
        restored = Shipment.from_json(db.ship("x").to_json())
        assert restored.verify_with_ca(db.ca.public_key, db.ca.name).ok

    def test_tampering_detected(self, algo_db):
        import dataclasses

        algorithm, db, session = algo_db
        session.insert("x", 1)
        session.update("x", 2)
        shipment = db.ship("x")
        forest = shipment.snapshot.to_forest()
        forest.update("x", 999)
        from repro.provenance.snapshot import SubtreeSnapshot

        forged = dataclasses.replace(
            shipment, snapshot=SubtreeSnapshot.capture(forest, "x")
        )
        assert not forged.verify_with_ca(db.ca.public_key, db.ca.name).ok


class TestAlgorithmIndependence:
    def test_digests_differ_across_algorithms(self):
        from repro.model.tree import Forest

        forest = Forest()
        forest.insert("a", 1)
        digests = {alg: subtree_digest(forest, "a", alg) for alg in ALGORITHMS}
        assert len(set(digests.values())) == len(ALGORITHMS)

    def test_mixed_algorithm_records_verify_together(self, ca, participants):
        """A chain whose records use different algorithms (e.g. a SHA-1 to
        SHA-256 migration mid-history) still verifies: each record names
        its own algorithm."""
        db1 = TamperEvidentDatabase(ca=ca, hash_algorithm="sha1")
        s1 = db1.session(participants["p1"])
        s1.insert("x", 1)
        # Migrate: same stores, new hashing configuration.
        db2 = TamperEvidentDatabase(
            store=db1.store,
            provenance_store=db1.provenance_store,
            ca=ca,
            hash_algorithm="sha256",
            strict=False,  # the sha1-era digests do not match sha256 recomputation
        )
        s2 = db2.session(participants["p2"])
        s2.update("x", 2)
        chain = db2.provenance_of("x")
        assert chain[0].hash_algorithm == "sha1"
        assert chain[1].hash_algorithm == "sha256"
        report = db2.verify("x")
        # The verifier recomputes per-record with each record's algorithm;
        # continuity digests across the migration boundary differ in size,
        # which the verifier reports (R1) — pinned behaviour: migrations
        # need a fresh attestation, not silent continuation.
        assert not report.ok
