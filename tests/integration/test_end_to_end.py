"""End-to-end integration: full stack over SQLite, Fig 3 reproduction,
cross-hashing-strategy equivalence, and the shipment round trip between
two independent processes (simulated)."""

import json
import random

import pytest

from repro.backend.sqlite import SQLiteStore
from repro.core.shipment import Shipment
from repro.core.system import TamperEvidentDatabase
from repro.crypto.pki import KeyStore
from repro.provenance.store import SQLiteProvenanceStore


class TestFullSQLiteStack:
    """Both the back-end and provenance databases on SQLite (§5.1 setup)."""

    def test_persisted_world_survives_reopen(self, ca, participants, tmp_path):
        backend_path = str(tmp_path / "backend.db")
        prov_path = str(tmp_path / "prov.db")

        with SQLiteStore(backend_path) as store, SQLiteProvenanceStore(prov_path) as prov:
            db = TamperEvidentDatabase(store=store, provenance_store=prov, ca=ca)
            s = db.session(participants["p1"])
            s.insert("db", None)
            s.insert("db/t", None, "db")
            with s.complex_operation():
                s.insert("db/t/r", None, "db/t")
                s.insert("db/t/r/c", 7, "db/t/r")
            s.update("db/t/r/c", 8)
            assert db.verify("db").ok

        # Re-open: data and provenance must still verify together.
        with SQLiteStore(backend_path) as store, SQLiteProvenanceStore(prov_path) as prov:
            db = TamperEvidentDatabase(store=store, provenance_store=prov, ca=ca)
            assert db.store.value("db/t/r/c") == 8
            report = db.verify("db")
            assert report.ok, report.summary()

    def test_mixed_stores(self, ca, participants):
        # In-memory backend + SQLite provenance is a supported combination.
        with SQLiteProvenanceStore() as prov:
            db = TamperEvidentDatabase(provenance_store=prov, ca=ca)
            s = db.session(participants["p2"])
            s.insert("x", 1)
            s.update("x", 2)
            assert db.verify("x").ok


class TestFig3Reproduction:
    """The worked example of Fig 3, end to end, with checksum structure."""

    def test_record_table_matches_figure(self, fig2_world):
        store = fig2_world.provenance_store
        rows = [
            ("A", 0, "p2", "insert", 0),
            ("B", 0, "p2", "insert", 0),
            ("A", 1, "p1", "update", 1),
            ("B", 1, "p2", "update", 1),
            ("A", 2, "p2", "update", 1),
            ("C", 2, "p3", "aggregate", 2),
            ("D", 3, "p1", "aggregate", 2),
        ]
        for object_id, seq, participant, op, n_inputs in rows:
            record = store.get(object_id, seq)
            assert record is not None, (object_id, seq)
            assert record.participant_id == participant
            assert record.operation.value == op
            assert len(record.inputs) == n_inputs

    def test_checksum_sizes_match_key(self, fig2_world):
        for record in fig2_world.provenance_store.all_records():
            assert len(record.checksum) == 512 // 8  # test keys are 512-bit

    def test_every_object_ships_and_verifies(self, fig2_world):
        for object_id in ("A", "B", "C", "D"):
            shipment = fig2_world.ship(object_id)
            assert shipment.verify_with_ca(
                fig2_world.ca.public_key, fig2_world.ca.name
            ).ok


class TestRecipientBoundary:
    """The recipient rebuilds everything from JSON + the CA key alone."""

    def test_offline_verification(self, fig2_world):
        blob = fig2_world.ship("D").to_json()
        ca_key = fig2_world.ca.public_key
        ca_name = fig2_world.ca.name
        # --- recipient side: no access to the database object ---
        shipment = Shipment.from_json(blob)
        report = shipment.verify_with_ca(ca_key, ca_name)
        assert report.ok
        assert shipment.snapshot.value_of("D") is None  # aggregate root
        assert len(shipment.certificates) == 3

    def test_recipient_keystore_is_minimal(self, fig2_world):
        shipment = fig2_world.ship("B")
        keystore = KeyStore(fig2_world.ca.public_key, fig2_world.ca.name)
        keystore.add_certificates(shipment.certificates)
        # only p2 contributed to B
        assert keystore.participants() == ("p2",)
        assert shipment.verify(keystore).ok

    def test_blob_is_self_contained_json(self, fig2_world):
        data = json.loads(fig2_world.ship("A").to_json())
        assert set(data) == {"format", "target_id", "snapshot", "records", "certificates"}


class TestScaleSmoke:
    """A moderately sized randomized world stays verifiable throughout."""

    def test_random_workload_always_verifies(self, ca, participants):
        rng = random.Random(42)
        db = TamperEvidentDatabase(ca=ca)
        sessions = [db.session(p) for p in participants.values()]
        roots = []
        for i in range(8):
            s = rng.choice(sessions)
            s.insert(f"root{i}", i)
            roots.append(f"root{i}")
        for _ in range(60):
            s = rng.choice(sessions)
            action = rng.random()
            if action < 0.6:
                s.update(rng.choice(roots), rng.randrange(10**6))
            elif action < 0.8 and len(roots) >= 2:
                out = f"agg{len(roots)}"
                s.aggregate(rng.sample(roots, 2), out)
                roots.append(out)
            else:
                target = rng.choice(roots)
                s.insert(f"{target}/leaf{rng.randrange(10**6)}", 1, target)
        for root in roots:
            report = db.verify(root)
            assert report.ok, f"{root}: {report.summary()}"
