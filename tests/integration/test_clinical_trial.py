"""Integration test: the paper's Example 1 (TrustUsRx clinical trial).

PCP Paul collects ages and weights; the Perfect Saints Clinic produces
endocrine measurements, one of which PCP Pamela amends; GoodStewards Labs
determines white-cell counts; TrustUsRx aggregates everything and ships
the result to the FDA, which verifies the provenance.
"""

import pytest

from repro.core.shipment import Shipment
from repro.core.system import TamperEvidentDatabase
from repro.model.relational import RelationalView
from repro.provenance.records import Operation


@pytest.fixture(scope="module")
def trial(ca):
    db = TamperEvidentDatabase(ca=ca, key_bits=512)
    paul = db.enroll("pcp-paul")
    clinic = db.enroll("perfect-saints-clinic")
    pamela = db.enroll("pcp-pamela")
    labs = db.enroll("goodstewards-labs")
    trustusrx = db.enroll("trustusrx")

    # Paul records the demographics table.
    paul_view = RelationalView(db.session(paul), root_id="paul-db")
    paul_view.create_table("patients", ["age", "weight"])
    for age, weight in ((52, 81), (47, 70), (61, 95)):
        paul_view.insert_row("patients", {"age": age, "weight": weight})

    # The clinic measures endocrine activity per patient.
    clinic_view = RelationalView(db.session(clinic), root_id="clinic-db")
    clinic_view.create_table("endocrine", ["patient", "level"])
    for patient, level in ((4553, 1.2), (4554, 0.9), (4555, 3.1)):
        clinic_view.insert_row("endocrine", {"patient": patient, "level": level})

    # Pamela amends patient #4555's endocrine value.
    pamela_view = RelationalView(db.session(pamela), root_id="clinic-db")
    pamela_view.update_cell("endocrine", 2, "level", 1.4)

    # The labs report white counts.
    labs_view = RelationalView(db.session(labs), root_id="labs-db")
    labs_view.create_table("white_counts", ["patient", "count"])
    for patient, count in ((4553, 6100), (4554, 7200), (4555, 5800)):
        labs_view.insert_row("white_counts", {"patient": patient, "count": count})

    # TrustUsRx aggregates all three databases into the submission.
    db.session(trustusrx).aggregate(
        ["paul-db", "clinic-db", "labs-db"], "fda-submission"
    )
    return db, {
        "paul": paul,
        "clinic": clinic,
        "pamela": pamela,
        "labs": labs,
        "trustusrx": trustusrx,
    }


class TestSubmission:
    def test_fda_verifies_clean_submission(self, trial):
        db, _ = trial
        shipment = db.ship("fda-submission")
        report = shipment.verify_with_ca(db.ca.public_key, db.ca.name)
        assert report.ok, report.summary()

    def test_all_participants_in_provenance(self, trial):
        db, _ = trial
        dag = db.dag()
        contributors = dag.contributing_participants("fda-submission")
        assert contributors == (
            "goodstewards-labs",
            "pcp-pamela",
            "pcp-paul",
            "perfect-saints-clinic",
            "trustusrx",
        )

    def test_pamelas_amendment_visible_in_closure(self, trial):
        # The submission's closure carries Pamela's inherited record on
        # the clinic database root (she changed its compound state).
        db, _ = trial
        closure = db.provenance_object("fda-submission")
        pamela_records = [r for r in closure if r.participant_id == "pcp-pamela"]
        assert pamela_records
        assert all(r.object_id == "clinic-db" for r in pamela_records)

    def test_pamelas_amendment_visible_at_cell_granularity(self, trial):
        # Fine-grained provenance: the amended cell has its own chain.
        db, _ = trial
        cell_id = "clinic-db/endocrine/r2/level"
        chain = db.provenance_of(cell_id)
        amendment = [r for r in chain if r.participant_id == "pcp-pamela"]
        assert len(amendment) == 1
        assert amendment[0].inputs[0].value == 3.1
        assert amendment[0].output.value == 1.4

    def test_sources_traced_to_three_databases(self, trial):
        db, _ = trial
        dag = db.dag()
        sources = dag.source_objects("fda-submission")
        roots = {s.split("/")[0] for s in sources}
        assert roots == {"paul-db", "clinic-db", "labs-db"}

    def test_submission_is_non_linear(self, trial):
        db, _ = trial
        assert not db.dag().is_linear("fda-submission")

    def test_aggregated_values_preserved(self, trial):
        db, _ = trial
        snapshot = db.ship("fda-submission").snapshot
        assert snapshot.value_of("fda-submission/clinic-db/endocrine/r2/level") == 1.4


class TestFDADetectsFraud:
    CELL = "clinic-db/endocrine/r2/level"

    def test_company_rewrites_amended_value(self, trial):
        """TrustUsRx ships the amended cell but rewrites the displayed
        value back to the original; the inline-value check catches it."""
        import dataclasses

        db, _ = trial
        shipment = db.ship(self.CELL)
        records = list(shipment.records)
        for i, record in enumerate(records):
            if record.participant_id == "pcp-pamela":
                forged_output = dataclasses.replace(record.output, value=3.1)
                records[i] = dataclasses.replace(record, output=forged_output)
        forged = dataclasses.replace(shipment, records=tuple(records))
        report = forged.verify_with_ca(db.ca.public_key, db.ca.name)
        assert not report.ok
        assert "R1" in report.requirement_codes()

    def test_company_rewrites_amended_digest(self, trial):
        import dataclasses

        from repro.crypto.hashing import hash_bytes
        from repro.model.values import encode_node

        db, _ = trial
        shipment = db.ship(self.CELL)
        records = list(shipment.records)
        changed = False
        for i, record in enumerate(records):
            if record.participant_id == "pcp-pamela":
                fake = hash_bytes(encode_node(self.CELL, 3.1))
                forged_output = dataclasses.replace(
                    record.output, digest=fake, value=3.1
                )
                records[i] = dataclasses.replace(record, output=forged_output)
                changed = True
        assert changed
        forged = dataclasses.replace(shipment, records=tuple(records))
        report = forged.verify_with_ca(db.ca.public_key, db.ca.name)
        assert not report.ok
        assert "R1" in report.requirement_codes()

    def test_company_drops_pamela_entirely(self, trial):
        import dataclasses

        db, _ = trial
        shipment = db.ship("fda-submission")
        records = tuple(
            r for r in shipment.records if r.participant_id != "pcp-pamela"
        )
        forged = dataclasses.replace(shipment, records=records)
        report = forged.verify_with_ca(db.ca.public_key, db.ca.name)
        assert not report.ok

    def test_audit_trail_readable(self, trial):
        from repro.audit.inspector import audit_trail

        db, _ = trial
        text = audit_trail(db.dag(), "fda-submission", db.verify("fda-submission"))
        assert "VERIFIED" in text
        assert "pcp-pamela" in text
