"""Wire-format robustness: hostile bytes never crash the recipient.

A data recipient parses shipments from an untrusted channel.  Whatever
arrives — truncations, bit flips, structural mutations, garbage — the
recipient must see either a clean :class:`ShipmentError` or a parsed
shipment whose *verification* then gives the verdict.  Unhandled
exceptions (KeyError, TypeError, binascii errors, ...) are treated as
bugs.
"""

import json
import random

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.shipment import Shipment
from repro.core.system import TamperEvidentDatabase
from repro.crypto.pki import CertificateAuthority, Participant
from repro.exceptions import ReproError

_CA = CertificateAuthority(key_bits=512, rng=random.Random(21))
_P = Participant.enroll("w1", _CA, key_bits=512, rng=random.Random(22))


@pytest.fixture(scope="module")
def blob():
    db = TamperEvidentDatabase(ca=_CA)
    s = db.session(_P)
    s.insert("t", None)
    s.insert("t/c", 42, "t", note="loaded")
    s.update("t/c", 43)
    return db.ship("t").to_json()


def parse_and_verify(text: str):
    """The recipient's whole pipeline; returns the outcome kind."""
    try:
        shipment = Shipment.from_json(text)
    except ReproError:
        return "rejected"
    report = shipment.verify_with_ca(_CA.public_key, _CA.name)
    return "verified" if report.ok else "tampering-detected"


class TestTextLevelFuzz:
    @settings(max_examples=80, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=4000))
    def test_truncations_never_crash(self, blob, cut):
        outcome = parse_and_verify(blob[: cut % (len(blob) + 1)])
        assert outcome in ("rejected", "tampering-detected", "verified")
        if cut % (len(blob) + 1) < len(blob):
            assert outcome != "verified"

    @settings(max_examples=120, deadline=None)
    @given(
        position=st.integers(min_value=0, max_value=10**6),
        replacement=st.characters(min_codepoint=32, max_codepoint=126),
    )
    def test_single_character_mutations_never_crash(self, blob, position, replacement):
        index = position % len(blob)
        mutated = blob[:index] + replacement + blob[index + 1 :]
        outcome = parse_and_verify(mutated)
        assert outcome in ("rejected", "tampering-detected", "verified")

    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=200))
    @example("")
    @example("{}")
    @example("[]")
    @example('{"format": "repro-shipment-v1"}')
    def test_arbitrary_text_rejected_cleanly(self, text):
        assert parse_and_verify(text) == "rejected"


class TestStructureLevelFuzz:
    def _mutate(self, blob, path, value):
        data = json.loads(blob)
        target = data
        for key in path[:-1]:
            target = target[key]
        target[path[-1]] = value
        return json.dumps(data)

    @pytest.mark.parametrize("path,value", [
        (("target_id",), 123),
        (("records",), "not-a-list"),
        (("records", 0), {"object_id": "t"}),
        (("records", 0, "seq_id"), "NaN-ish"),
        (("records", 0, "checksum"), "zz-not-hex"),
        (("records", 0, "operation"), "explode"),
        (("records", 0, "inputs"), [{"bad": True}]),
        (("snapshot",), {}),
        (("snapshot", "nodes"), [{"id": "x"}]),
        (("snapshot", "nodes", 0, "value"), "not-hex"),
        (("certificates", 0, "signature"), "not-hex"),
        (("certificates", 0), {}),
    ])
    def test_structural_mutations_never_crash(self, blob, path, value):
        outcome = parse_and_verify(self._mutate(blob, path, value))
        assert outcome in ("rejected", "tampering-detected")

    def test_clean_blob_verifies(self, blob):
        assert parse_and_verify(blob) == "verified"

    def test_swapped_record_order_still_verifies(self, blob):
        # Record order in the wire format is not semantic.
        data = json.loads(blob)
        data["records"] = list(reversed(data["records"]))
        assert parse_and_verify(json.dumps(data)) == "verified"
