"""System-level property tests.

Two umbrella properties the whole design hangs on:

1. **Soundness** — any history produced through the legitimate API
   verifies (stateful machine driving random primitives).
2. **Tamper-evidence** — any single mutation of a shipped record's
   load-bearing field makes verification fail (fuzzed field flips).
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.shipment import Shipment
from repro.core.system import TamperEvidentDatabase
from repro.crypto.pki import CertificateAuthority, Participant

# One module-level PKI: key generation is the expensive part.
_CA = CertificateAuthority(key_bits=512)
_P1 = Participant.enroll("m1", _CA, key_bits=512)
_P2 = Participant.enroll("m2", _CA, key_bits=512)


class ProvenanceMachine(RuleBasedStateMachine):
    """Random legitimate histories must always verify."""

    def __init__(self):
        super().__init__()
        self.db = TamperEvidentDatabase(ca=_CA)
        self.sessions = [self.db.session(_P1), self.db.session(_P2)]
        self.serial = 0
        self.alive = []

    def _new_id(self, prefix="n"):
        self.serial += 1
        return f"{prefix}{self.serial}"

    @initialize()
    def seed_objects(self):
        self.sessions[0].insert("seed0", 0)
        self.sessions[1].insert("seed1", 1)
        self.alive = ["seed0", "seed1"]

    @rule(who=st.integers(0, 1), value=st.integers(0, 10**6))
    def insert_root(self, who, value):
        object_id = self._new_id("root")
        self.sessions[who].insert(object_id, value)
        self.alive.append(object_id)

    @rule(who=st.integers(0, 1), pick=st.integers(0, 10**6), value=st.integers())
    def insert_child(self, who, pick, value):
        parent = self.alive[pick % len(self.alive)]
        object_id = f"{parent}/{self._new_id('c')}"
        self.sessions[who].insert(object_id, value, parent)
        self.alive.append(object_id)

    @rule(who=st.integers(0, 1), pick=st.integers(0, 10**6), value=st.integers())
    def update(self, who, pick, value):
        self.sessions[who].update(self.alive[pick % len(self.alive)], value)

    @rule(who=st.integers(0, 1), pick=st.integers(0, 10**6))
    def delete_leaf(self, who, pick):
        store = self.db.store
        leaves = [
            x for x in self.alive if store.is_leaf(x) and store.parent(x) is not None
        ]
        if not leaves:
            return
        victim = leaves[pick % len(leaves)]
        self.sessions[who].delete(victim)
        self.alive.remove(victim)

    @rule(who=st.integers(0, 1), a=st.integers(0, 10**6), b=st.integers(0, 10**6))
    def aggregate(self, who, a, b):
        roots = sorted({self.db.store.root_of(x) for x in self.alive})
        first = roots[a % len(roots)]
        second = roots[b % len(roots)]
        inputs = [first] if first == second else [first, second]
        output = self._new_id("agg")
        self.sessions[who].aggregate(inputs, output)
        self.alive.append(output)

    @rule(who=st.integers(0, 1), pick=st.integers(0, 10**6),
          values=st.lists(st.integers(), min_size=1, max_size=3))
    def complex_batch(self, who, pick, values):
        parent = self.alive[pick % len(self.alive)]
        session = self.sessions[who]
        with session.complex_operation():
            for value in values:
                object_id = f"{parent}/{self._new_id('b')}"
                session.insert(object_id, value, parent)
                self.alive.append(object_id)

    @invariant()
    def every_root_verifies(self):
        for root in self.db.store.roots():
            report = self.db.verify(root)
            assert report.ok, f"{root}: {report.summary()}"


ProvenanceMachine.TestCase.settings = settings(
    max_examples=12,
    stateful_step_count=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestProvenanceMachine = ProvenanceMachine.TestCase


@pytest.fixture(scope="module")
def shipped():
    db = TamperEvidentDatabase(ca=_CA)
    s1, s2 = db.session(_P1), db.session(_P2)
    s1.insert("x", 10)
    s2.update("x", 20, note="second opinion")
    s1.insert("y", 5)
    s2.aggregate(["x", "y"], "z")
    s1.update("x", 30)
    return db, db.ship("z")


def _mutate_record(record, field_index, payload):
    """Apply one of a closed set of single-field mutations."""
    mutations = [
        lambda r: dataclasses.replace(r, participant_id="m1" if r.participant_id != "m1" else "m2"),
        lambda r: dataclasses.replace(r, seq_id=r.seq_id + 1),
        lambda r: dataclasses.replace(
            r, checksum=bytes([r.checksum[0] ^ (payload or 1)]) + r.checksum[1:]
        ),
        lambda r: dataclasses.replace(
            r,
            output=dataclasses.replace(
                r.output, digest=bytes([r.output.digest[0] ^ (payload or 1)]) + r.output.digest[1:]
            ),
        ),
        lambda r: dataclasses.replace(r, note=r.note + "X"),
        lambda r: dataclasses.replace(r, operation=_flip_operation(r.operation)),
    ]
    return mutations[field_index % len(mutations)](record)


def _flip_operation(operation):
    from repro.provenance.records import Operation

    order = [Operation.INSERT, Operation.UPDATE, Operation.COMPLEX, Operation.AGGREGATE]
    return order[(order.index(operation) + 1) % len(order)]


class TestSingleMutationDetection:
    @settings(max_examples=60, deadline=None)
    @given(
        record_index=st.integers(min_value=0, max_value=100),
        field_index=st.integers(min_value=0, max_value=5),
        payload=st.integers(min_value=0, max_value=255),
    )
    def test_any_record_field_flip_is_detected(
        self, shipped, record_index, field_index, payload
    ):
        db, shipment = shipped
        records = list(shipment.records)
        index = record_index % len(records)
        mutated = _mutate_record(records[index], field_index, payload)
        if mutated == records[index]:
            return  # identity mutation (e.g. XOR with 0)
        records[index] = mutated
        forged = dataclasses.replace(shipment, records=tuple(records))
        report = forged.verify(db.keystore())
        assert not report.ok, (
            f"undetected mutation of record {records[index].key}, "
            f"field {field_index}"
        )

    @settings(max_examples=25, deadline=None)
    @given(
        node_index=st.integers(min_value=0, max_value=100),
        new_value=st.integers(min_value=0, max_value=10**6),
    )
    def test_any_snapshot_value_change_is_detected(
        self, shipped, node_index, new_value
    ):
        db, shipment = shipped
        forest = shipment.snapshot.to_forest()
        ids = sorted(forest.iter_subtree(shipment.snapshot.root_id))
        victim = ids[node_index % len(ids)]
        if forest.value(victim) == new_value:
            return
        forest.update(victim, new_value)
        from repro.provenance.snapshot import SubtreeSnapshot

        forged = dataclasses.replace(
            shipment,
            snapshot=SubtreeSnapshot.capture(forest, shipment.snapshot.root_id),
        )
        report = forged.verify(db.keystore())
        assert not report.ok

    def test_json_reencoding_alone_is_not_detected(self, shipped):
        """Sanity: serialisation round trips are not false positives."""
        db, shipment = shipped
        restored = Shipment.from_json(shipment.to_json())
        assert restored.verify(db.keystore()).ok
