"""Unit tests for record filtering."""

import pytest

from repro.provenance.records import Operation
from repro.query.filters import RecordFilter


@pytest.fixture
def records(fig2_world):
    return tuple(fig2_world.provenance_store.all_records())


class TestPredicates:
    def test_by_participant(self, records):
        mine = RecordFilter().by_participant("p3").collect(records)
        assert {r.object_id for r in mine} == {"C"}

    def test_by_operation(self, records):
        aggs = RecordFilter().by_operation(Operation.AGGREGATE).collect(records)
        assert {r.object_id for r in aggs} == {"C", "D"}
        inserts = RecordFilter().by_operation(Operation.INSERT).collect(records)
        assert {r.object_id for r in inserts} == {"A", "B"}

    def test_by_object_prefix(self, records):
        assert all(
            r.object_id == "A"
            for r in RecordFilter().by_object_prefix("A").apply(records)
        )

    def test_by_seq_range(self, records):
        in_range = RecordFilter().by_seq_range(1, 2).collect(records)
        assert all(1 <= r.seq_id <= 2 for r in in_range)
        assert len(in_range) == 4  # A#1, B#1, A#2, C#2

    def test_only_inherited(self, fig2_world, participants, records):
        # fig2 world has no compound objects; build one inherited record.
        s = fig2_world.session(participants["p1"])
        s.insert("tree", None)
        s.insert("tree/leaf", 1, "tree")
        all_records = tuple(fig2_world.provenance_store.all_records())
        inherited = RecordFilter().only_inherited().collect(all_records)
        assert {r.object_id for r in inherited} == {"tree"}
        actual = RecordFilter().only_inherited(False).collect(all_records)
        assert len(actual) == len(all_records) - len(inherited)


class TestComposition:
    def test_conjunction(self, records):
        f = RecordFilter().by_participant("p2").by_operation(Operation.UPDATE)
        hits = f.collect(records)
        assert {(r.object_id, r.seq_id) for r in hits} == {("B", 1), ("A", 2)}

    def test_builders_are_pure(self):
        base = RecordFilter()
        derived = base.by_participant("p1")
        assert base.participant_id is None
        assert derived.participant_id == "p1"

    def test_callable_form(self, records):
        f = RecordFilter().by_operation(Operation.AGGREGATE)
        assert len(list(f(records))) == 2

    def test_empty_filter_passes_all(self, records):
        assert RecordFilter().collect(records) == records

    def test_lazy_apply(self, records):
        gen = RecordFilter().apply(iter(records))
        assert next(gen) is not None
