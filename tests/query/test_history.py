"""Unit tests for historical state queries."""

import pytest

from repro.exceptions import MissingProvenanceError
from repro.provenance.records import Operation
from repro.query.history import find_change, state_at, value_history


@pytest.fixture
def chain(tedb, participants):
    s1 = tedb.session(participants["p1"])
    s2 = tedb.session(participants["p2"])
    s1.insert("doc", "draft", note="initial")
    s2.update("doc", "reviewed")
    s1.update("doc", "final")
    s2.update("doc", "reviewed")  # value revisited
    return tedb.provenance_of("doc")


class TestValueHistory:
    def test_full_history(self, chain):
        history = value_history(chain, "doc")
        assert [h.value for h in history] == ["draft", "reviewed", "final", "reviewed"]
        assert [h.seq_id for h in history] == [0, 1, 2, 3]
        assert history[0].operation is Operation.INSERT
        assert history[0].note == "initial"

    def test_participants_attributed(self, chain):
        history = value_history(chain, "doc")
        assert [h.participant_id for h in history] == ["p1", "p2", "p1", "p2"]

    def test_unknown_object(self, chain):
        with pytest.raises(MissingProvenanceError):
            value_history(chain, "ghost")

    def test_str_rendering(self, chain):
        text = str(value_history(chain, "doc")[0])
        assert "#0 insert by p1" in text and "initial" in text

    def test_compound_history_shows_digests(self, tedb, participants):
        s = tedb.session(participants["p1"])
        s.insert("t", None)
        s.insert("t/c", 1, "t")
        history = value_history(tedb.provenance_of("t"), "t")
        assert not history[-1].has_value  # compound state
        assert "<" in str(history[-1])


class TestStateAt:
    def test_exact_and_floor(self, chain):
        assert state_at(chain, "doc", 0).value == "draft"
        assert state_at(chain, "doc", 2).value == "final"
        assert state_at(chain, "doc", 99).value == "reviewed"

    def test_before_genesis(self, chain):
        with pytest.raises(MissingProvenanceError):
            state_at(chain, "doc", -1)

    def test_aggregate_created_object(self, fig2_world):
        records = fig2_world.provenance_object("D")
        state = state_at(records, "C", 5)
        assert state.object_id == "C"


class TestFindChange:
    def test_finds_all_occurrences(self, chain):
        hits = find_change(chain, "doc", "reviewed")
        assert [h.seq_id for h in hits] == [1, 3]
        assert all(h.participant_id == "p2" for h in hits)

    def test_no_match(self, chain):
        assert find_change(chain, "doc", "nonexistent") == ()

    def test_none_value_matchable(self, tedb, participants):
        s = tedb.session(participants["p1"])
        s.insert("x", None)
        s.update("x", 1)
        hits = find_change(tedb.provenance_of("x"), "x", None)
        assert [h.seq_id for h in hits] == [0]
