"""Unit tests for lineage queries over the Fig 2 world."""

import pytest

from repro.query.lineage import (
    contribution_of,
    derivation_depth,
    derives_from,
    downstream_objects,
    lineage_summary,
)


@pytest.fixture
def dag(fig2_world):
    return fig2_world.dag()


class TestDerivesFrom:
    def test_through_aggregations(self, dag):
        assert derives_from(dag, "D", "A")
        assert derives_from(dag, "D", "B")
        assert derives_from(dag, "D", "C")
        assert derives_from(dag, "C", "B")

    def test_self(self, dag):
        assert derives_from(dag, "A", "A")

    def test_negative(self, dag):
        assert not derives_from(dag, "A", "B")
        assert not derives_from(dag, "C", "D")  # direction matters

    def test_untracked(self, dag):
        assert not derives_from(dag, "ghost", "A")


class TestDownstream:
    def test_impact_set(self, dag):
        assert downstream_objects(dag, "A") == ("C", "D")
        assert downstream_objects(dag, "B") == ("C", "D")
        assert downstream_objects(dag, "C") == ("D",)
        assert downstream_objects(dag, "D") == ()

    def test_untracked(self, dag):
        assert downstream_objects(dag, "ghost") == ()


class TestContribution:
    def test_counts(self, dag):
        counts = contribution_of(dag, "D")
        assert counts["p2"] == 4  # A#0, B#0, B#1, A#2
        assert counts["p1"] == 2  # A#1, D#3
        assert counts["p3"] == 1  # C#2
        assert sum(counts.values()) == 7


class TestDepth:
    def test_depths(self, dag):
        assert derivation_depth(dag, "A") == 3   # A0 -> A1 -> A2
        assert derivation_depth(dag, "B") == 2
        assert derivation_depth(dag, "C") == 3   # B0 -> B1 -> C2
        assert derivation_depth(dag, "D") == 4   # A0 -> A1 -> A2 -> D3
        assert derivation_depth(dag, "ghost") == 0


class TestSummary:
    def test_summary_fields(self, dag):
        summary = lineage_summary(dag, "D")
        assert summary.record_count == 7
        assert summary.participants == ("p1", "p2", "p3")
        assert summary.sources == ("A", "B")
        assert summary.aggregations == 2
        assert not summary.linear
        assert summary.depth == 4

    def test_summary_linear_object(self, dag):
        summary = lineage_summary(dag, "B")
        assert summary.linear
        assert summary.aggregations == 0
        assert "linear" in str(summary)

    def test_summary_str_mentions_dag(self, dag):
        assert "non-linear" in str(lineage_summary(dag, "D"))
