"""Unit tests for the audit renderings."""

import pytest

from repro.audit.inspector import ChainInspector, audit_trail, render_report


@pytest.fixture
def records(fig2_world):
    return tuple(fig2_world.provenance_store.all_records())


class TestChainInspector:
    def test_render_chain(self, records):
        text = ChainInspector(records).render_chain("A")
        assert "provenance of A" in text
        assert text.count("#") == 3  # three records
        assert "p2" in text and "p1" in text

    def test_render_unknown_chain(self, records):
        assert "no provenance records" in ChainInspector(records).render_chain("zz")

    def test_render_all_covers_every_object(self, records):
        text = ChainInspector(records).render_all()
        for object_id in ("A", "B", "C", "D"):
            assert f"provenance of {object_id}" in text

    def test_aggregate_rendering_lists_sources(self, records):
        text = ChainInspector(records).render_chain("D")
        assert "aggregate" in text
        assert "A=" in text and "C=" in text

    def test_inherited_marker(self, fig2_world, participants):
        s = fig2_world.session(participants["p1"])
        s.insert("tree", None)
        s.insert("tree/leaf", 1, "tree")
        text = ChainInspector(fig2_world.provenance_of("tree")).render_chain("tree")
        assert "(inherited)" in text

    def test_compound_states_summarised(self, fig2_world):
        text = ChainInspector(fig2_world.provenance_of("D")).render_chain("D")
        assert "<compound:" in text


class TestRenderReport:
    def test_clean_report(self, fig2_world):
        text = render_report(fig2_world.verify("D"))
        assert "VERIFIED" in text
        assert "7 records" in text

    def test_failed_report_lists_failures(self, fig2_world):
        import dataclasses

        shipment = fig2_world.ship("A")
        forged = dataclasses.replace(shipment, records=shipment.records[1:])
        report = forged.verify(fig2_world.keystore())
        text = render_report(report)
        assert "TAMPERING DETECTED" in text
        assert "[R2]" in text


class TestAuditTrail:
    def test_trail_contents(self, fig2_world):
        text = audit_trail(fig2_world.dag(), "D")
        assert "history of D (7 records)" in text
        assert "contributing participants: p1, p2, p3" in text
        assert "source objects: A, B" in text

    def test_trail_with_report(self, fig2_world):
        text = audit_trail(fig2_world.dag(), "D", fig2_world.verify("D"))
        assert text.startswith("VERIFIED")

    def test_trail_untracked(self, fig2_world):
        assert "no recorded history" in audit_trail(fig2_world.dag(), "ghost")
