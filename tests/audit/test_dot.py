"""Unit tests for the DOT exporter."""

import pytest

from repro.audit.dot import to_dot


@pytest.fixture
def dag(fig2_world):
    return fig2_world.dag()


class TestToDot:
    def test_valid_dot_shape(self, dag):
        text = to_dot(dag)
        assert text.startswith("digraph provenance {")
        assert text.rstrip().endswith("}")
        assert "rankdir=LR" in text

    def test_every_record_is_a_node(self, dag):
        text = to_dot(dag)
        for key in (("A", 0), ("B", 1), ("C", 2), ("D", 3)):
            assert f'"{key[0]}#{key[1]}"' in text

    def test_aggregation_edges_dashed(self, dag):
        text = to_dot(dag)
        assert text.count("style=dashed") == 4  # 2 inputs x 2 aggregations

    def test_chain_edges_solid(self, dag):
        text = to_dot(dag)
        assert '"A#0" -> "A#1"' in text

    def test_target_restriction(self, dag):
        text = to_dot(dag, target_id="B")
        assert '"B#0"' in text and '"B#1"' in text
        assert '"A#0"' not in text
        assert "style=dashed" not in text

    def test_labels_carry_participant_and_value(self, dag):
        text = to_dot(dag)
        assert "by p2" in text
        assert "'a1'" in text

    def test_notes_optional(self, tedb, participants):
        session = tedb.session(participants["p1"])
        session.insert("x", 1, note="the \"big\" load")
        dag = tedb.dag()
        without = to_dot(dag)
        with_notes = to_dot(dag, include_notes=True)
        assert "big" not in without
        assert "big" in with_notes
        # quotes in notes must be escaped, not break the DOT syntax
        assert '\\"big\\"' in with_notes

    def test_colors_assigned_per_object(self, dag):
        text = to_dot(dag)
        # Fig 2 has 4 objects; at least 4 distinct fill colours used.
        import re

        colors = set(re.findall(r'fillcolor="(#\w+)"', text))
        assert len(colors) == 4

    def test_empty_dag(self):
        from repro.provenance.dag import ProvenanceDAG

        text = to_dot(ProvenanceDAG([]))
        assert text.startswith("digraph")
