"""Unit tests for structural provenance linting."""

import dataclasses

import pytest

from repro.audit.lint import lint_records, lint_store


@pytest.fixture
def records(fig2_world):
    return list(fig2_world.provenance_store.all_records())


def codes(report):
    return sorted({issue.code for issue in report.issues})


class TestCleanStores:
    def test_fig2_store_lints_clean(self, fig2_world):
        report = lint_store(fig2_world.provenance_store)
        assert report.ok, report.summary()
        assert report.records_checked == 7
        assert report.objects_checked == 4
        assert "LINT OK" in report.summary()

    def test_compound_world_lints_clean(self, tedb, participants):
        s = tedb.session(participants["p1"])
        s.insert("t", None)
        with s.complex_operation():
            s.insert("t/r", None, "t")
            s.insert("t/r/c", 1, "t/r")
        s.delete("t/r/c")
        assert lint_store(tedb.provenance_store).ok


class TestStructuralIssues:
    def test_missing_genesis(self, records):
        trimmed = [r for r in records if r.key != ("A", 0)]
        report = lint_records(trimmed)
        assert not report.ok
        assert "chain-start" in codes(report)

    def test_seq_gap(self, records):
        trimmed = [r for r in records if r.key != ("A", 1)]
        report = lint_records(trimmed)
        assert "seq-gap" in codes(report)

    def test_duplicate_seq(self, records):
        report = lint_records(records + [records[0]])
        assert "dup-seq" in codes(report)

    def test_state_break(self, records):
        victim = next(r for r in records if r.key == ("A", 1))
        forged_input = dataclasses.replace(victim.inputs[0], digest=b"\x01" * 20)
        forged = dataclasses.replace(victim, inputs=(forged_input,))
        report = lint_records(
            [forged if r.key == victim.key else r for r in records]
        )
        assert "state-break" in codes(report)

    def test_dangling_aggregation_input(self, records):
        trimmed = [r for r in records if r.object_id != "B"]
        report = lint_records(trimmed)
        assert "dangling-input" in codes(report)

    def test_unmatched_aggregation_input(self, records):
        agg = next(r for r in records if r.key == ("C", 2))
        forged_state = dataclasses.replace(agg.inputs[0], digest=b"\x02" * 20)
        forged = dataclasses.replace(agg, inputs=(forged_state,) + agg.inputs[1:])
        report = lint_records([forged if r.key == agg.key else r for r in records])
        assert "unmatched-input" in codes(report)

    def test_wrong_digest_length(self, records):
        victim = records[0]
        forged = dataclasses.replace(
            victim, output=dataclasses.replace(victim.output, digest=b"\x00" * 5)
        )
        report = lint_records([forged if r.key == victim.key else r for r in records])
        assert "bad-digest" in codes(report)

    def test_unknown_algorithm(self, records):
        forged = dataclasses.replace(records[0], hash_algorithm="rot13")
        report = lint_records([forged] + records[1:])
        assert "bad-algorithm" in codes(report)

    def test_empty_checksum(self, records):
        forged = records[0].with_checksum(b"")
        report = lint_records([forged] + records[1:])
        assert "missing-checksum" in codes(report)

    def test_issue_str(self, records):
        trimmed = [r for r in records if r.key != ("A", 0)]
        report = lint_records(trimmed)
        assert "[chain-start] A#" in str(report.issues[0])


class TestLintVsVerify:
    def test_lint_cannot_see_forged_signatures(self, fig2_world, records):
        """Documented boundary: a re-signed-by-nobody checksum of the right
        size passes lint (structure is fine) but fails verification."""
        victim = records[0]
        forged = victim.with_checksum(b"\x07" * len(victim.checksum))
        forged_set = [forged if r.key == victim.key else r for r in records]
        assert lint_records(forged_set).ok  # structure intact
        from repro.core.verifier import Verifier

        report = Verifier(fig2_world.keystore()).verify_records(forged_set)
        assert not report.ok  # signatures catch it
