"""Unit tests for snapshot diffing."""

import pytest

from repro.audit.diff import diff_snapshots, explain_delivery
from repro.provenance.snapshot import SubtreeSnapshot


@pytest.fixture
def world(tedb, participants):
    session = tedb.session(participants["p1"])
    session.insert("t", None)
    session.insert("t/a", 1, "t")
    session.insert("t/b", 2, "t")
    return tedb, session


def snap(db):
    return SubtreeSnapshot.capture(db.store, "t")


class TestDiffSnapshots:
    def test_unchanged(self, world):
        db, _ = world
        diff = diff_snapshots(snap(db), snap(db))
        assert diff.unchanged
        assert "unchanged" in str(diff)

    def test_value_change(self, world):
        db, session = world
        old = snap(db)
        session.update("t/a", 10)
        diff = diff_snapshots(old, snap(db))
        (entry,) = diff.entries
        assert entry.kind == "changed"
        assert (entry.old_value, entry.new_value) == (1, 10)
        assert "1 -> 10" in str(entry)

    def test_addition_and_removal(self, world):
        db, session = world
        old = snap(db)
        session.insert("t/c", 3, "t")
        session.delete("t/b")
        diff = diff_snapshots(old, snap(db))
        assert [e.object_id for e in diff.by_kind("added")] == ["t/c"]
        assert [e.object_id for e in diff.by_kind("removed")] == ["t/b"]

    def test_ordering_removed_added_changed(self, world):
        db, session = world
        old = snap(db)
        session.delete("t/b")
        session.insert("t/c", 3, "t")
        session.update("t/a", 5)
        kinds = [e.kind for e in diff_snapshots(old, snap(db)).entries]
        assert kinds == ["removed", "added", "changed"]

    def test_multiple_changes_sorted_by_id(self, world):
        db, session = world
        old = snap(db)
        session.update("t/b", 20)
        session.update("t/a", 10)
        changed = diff_snapshots(old, snap(db)).by_kind("changed")
        assert [e.object_id for e in changed] == ["t/a", "t/b"]


class TestExplainDelivery:
    def test_changes_with_records(self, world):
        db, session = world
        old = snap(db)
        records = session.update("t/a", 10)
        text = explain_delivery(old, snap(db), records)
        assert "1 -> 10" in text
        assert "documented by:" in text
        assert "p1" in text

    def test_changes_without_records_warn(self, world):
        db, session = world
        old = snap(db)
        session.update("t/a", 10)
        text = explain_delivery(old, snap(db), [])
        assert "WARNING" in text

    def test_no_changes_no_warning(self, world):
        db, _ = world
        text = explain_delivery(snap(db), snap(db), [])
        assert "WARNING" not in text
