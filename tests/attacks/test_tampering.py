"""Unit tests for the single-attacker tampering primitives."""

import pytest

from repro.attacks import tampering
from repro.attacks.scenarios import build_world
from repro.exceptions import ProvenanceError


@pytest.fixture(scope="module")
def world():
    return build_world()


def verify(world, shipment):
    return shipment.verify_with_ca(world.db.ca.public_key, world.db.ca.name)


class TestPurity:
    """Attacks must not mutate the original shipment."""

    def test_modify_is_pure(self, world):
        original_records = world.shipment.records
        tampering.modify_record_output(world.shipment, "x", 3, 777)
        assert world.shipment.records == original_records
        assert verify(world, world.shipment).ok

    def test_tamper_data_is_pure(self, world):
        tampering.tamper_data(world.shipment, "x", 777)
        assert world.shipment.snapshot.value_of("x") == 14


class TestFindAndReplace:
    def test_find_record(self, world):
        record = tampering.find_record(world.shipment, "x", 2)
        assert record.participant_id == "mallory"

    def test_find_missing(self, world):
        with pytest.raises(ProvenanceError):
            tampering.find_record(world.shipment, "x", 99)

    def test_modify_input_requires_inputs(self, world):
        with pytest.raises(ProvenanceError):
            tampering.modify_record_input(world.shipment, "x", 0, 5)  # genesis


class TestDetectionDetails:
    def test_modified_output_blames_signature(self, world):
        forged = tampering.modify_record_output(world.shipment, "x", 3, 777)
        report = verify(world, forged)
        assert any(
            f.requirement == "R1" and f.seq_id in (3, 4) for f in report.failures
        )

    def test_removal_of_last_record_caught_by_data_check(self, world):
        # Removing the terminal record makes data mismatch the new terminal.
        forged = tampering.remove_record(world.shipment, "x", 4)
        report = verify(world, forged)
        assert not report.ok
        assert "R4" in report.requirement_codes()

    def test_removal_of_genesis_caught(self, world):
        forged = tampering.remove_record(world.shipment, "x", 0)
        report = verify(world, forged)
        assert "R2" in report.requirement_codes()

    def test_forged_insert_at_tail_caught_by_data_check(self, world):
        # Appending a forged terminal record: the attacker CAN sign it and
        # chain it, but the shipped data no longer matches it.
        forged = tampering.insert_forged_record(
            world.shipment, world.mallory, "x", 5, fake_value=1_000_000
        )
        report = verify(world, forged)
        assert not report.ok
        assert "R4" in report.requirement_codes()

    def test_spliced_record_caught_mid_chain(self, world):
        forged = tampering.insert_forged_record(
            world.shipment, world.mallory, "x", 2, fake_value=55
        )
        report = verify(world, forged)
        assert "R3" in report.requirement_codes()

    def test_reassign_between_unrelated_objects(self, world):
        forged = tampering.reassign_provenance(world.shipment, world.other_shipment)
        report = verify(world, forged)
        assert report.failures[0].requirement == "R5"

    def test_attribution_to_other_enrolled_participant(self, world):
        forged = tampering.forge_attribution(world.shipment, "x", 2, "alice")
        report = verify(world, forged)
        # Alice's key does not verify Mallory's signature.
        assert "R1" in report.requirement_codes()

    def test_attribution_to_unknown_participant(self, world):
        forged = tampering.forge_attribution(world.shipment, "x", 2, "nobody")
        report = verify(world, forged)
        assert "PKI" in report.requirement_codes()
