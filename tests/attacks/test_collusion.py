"""Unit tests for collusion attacks (R6/R7) and the documented boundary."""

import pytest

from repro.attacks import collusion
from repro.attacks.scenarios import build_world
from repro.exceptions import ProvenanceError


@pytest.fixture
def world():
    # Fresh world per test: collusion scenarios extend chains.
    return build_world()


def verify(world, shipment):
    return shipment.verify_with_ca(world.db.ca.public_key, world.db.ca.name)


class TestRemoveBetween:
    def test_detected_with_honest_successor(self, world):
        # Extend the chain with an honest record after Eve's, then excise
        # Alice's seq-3 record between Mallory (2) and Eve (4).
        world.db.session(world.alice).update("x", 15)
        shipment = world.db.ship("x")
        forged = collusion.remove_between(shipment, "x", 3, world.eve)
        report = verify(world, forged)
        assert not report.ok
        # Alice's honest seq-5 record no longer chains: gap at seq 4.
        assert "R2" in report.requirement_codes()

    def test_requires_sandwich(self, world):
        shipment = world.db.ship("y")  # y has only seq 0..1
        with pytest.raises(ProvenanceError):
            collusion.remove_between(shipment, "y", 1, world.eve)

    def test_rewritten_record_is_internally_valid(self, world):
        """The colluder's re-signed record itself verifies — detection
        comes from the surrounding chain, not the forged record."""
        world.db.session(world.alice).update("x", 15)
        shipment = world.db.ship("x")
        forged = collusion.remove_between(shipment, "x", 3, world.eve)
        rewritten = next(r for r in forged.records if r.seq_id == 3)
        assert rewritten.participant_id == "eve"


class TestInsertBetween:
    def test_detected(self, world):
        forged = collusion.insert_between(
            world.shipment, "x", 2, world.mallory, "alice", 42
        )
        report = verify(world, forged)
        assert not report.ok

    def test_scapegoat_never_validly_signed(self, world):
        forged = collusion.insert_between(
            world.shipment, "x", 2, world.mallory, "alice", 42
        )
        spliced = [
            r
            for r in forged.records
            if r.key == ("x", 3) and r.participant_id == "alice"
        ]
        assert spliced  # the forged record claims alice...
        report = verify(world, forged)
        assert not report.ok  # ...but alice's key rejects it


class TestTailRewriteBoundary:
    """The documented limitation: colluders owning the chain tail can
    truncate history undetectably (as in Hasan et al.)."""

    def test_tail_rewrite_not_detected(self, world):
        forged = collusion.tail_rewrite(world.shipment, "x", 3, world.eve)
        report = verify(world, forged)
        assert report.ok  # pinned: this is the scheme's known boundary

    def test_tail_rewrite_erases_victim(self, world):
        forged = collusion.tail_rewrite(world.shipment, "x", 3, world.eve)
        participants = {r.participant_id for r in forged.records}
        assert "alice" in participants  # earlier records remain
        seqs = sorted(r.seq_id for r in forged.records if r.object_id == "x")
        assert seqs == [0, 1, 2, 3]  # one record shorter than the truth

    def test_tail_rewrite_requires_tail(self, world):
        world.db.session(world.alice).update("x", 15)
        shipment = world.db.ship("x")
        with pytest.raises(ProvenanceError):
            collusion.tail_rewrite(shipment, "x", 3, world.eve)
