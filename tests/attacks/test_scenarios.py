"""Security-requirement tests: every attack behaves as the paper claims.

Each scenario returns ``expect_detected``; R1–R8 attacks must be caught,
and the tail-rewrite boundary case must (documentedly) pass verification.
"""

import pytest

from repro.attacks.scenarios import all_scenarios, build_world, scenarios_for


@pytest.fixture(scope="module")
def world():
    return build_world()


@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
def test_scenario_detection_matches_claim(scenario, world):
    tampered, report = scenario.execute(world)
    detected = not report.ok
    assert detected == scenario.expect_detected, (
        f"{scenario.requirement} ({scenario.name}): expected "
        f"detected={scenario.expect_detected}, got {report.summary()}"
    )


def test_every_requirement_has_a_scenario():
    requirements = {s.requirement for s in all_scenarios()}
    for code in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
        assert any(r.startswith(code) for r in requirements), f"missing {code}"


def test_scenarios_for_prefix():
    assert len(scenarios_for("R1")) == 2
    assert len(scenarios_for("R7")) == 2  # detected case + boundary
    assert scenarios_for("R9") == ()


def test_clean_world_verifies(world):
    report = world.shipment.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
    assert report.ok


def test_detected_scenarios_name_a_requirement(world):
    for scenario in all_scenarios():
        if not scenario.expect_detected:
            continue
        _, report = scenario.execute(world)
        assert report.requirement_codes(), scenario.name


@pytest.mark.parametrize("scheme", ["rsa-pkcs1v15", "merkle-batch"])
@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
def test_same_seed_execution_is_byte_identical(scenario, scheme):
    """Satellite guarantee: no scenario draws from a module-level RNG.

    Scenarios mutate their world (custody transfers, R7's extra honest
    record), so each run gets a FRESH world — equal seeds must still
    yield equal verdicts and byte-identical failure reports.
    """
    reports = [
        scenario.execute(build_world(seed=123, scheme=scheme))[1]
        for _ in range(2)
    ]
    assert reports[0].ok == reports[1].ok
    assert [str(f) for f in reports[0].failures] == [
        str(f) for f in reports[1].failures
    ]
    assert reports[0].failure_tally() == reports[1].failure_tally()


def test_worlds_record_their_seed_and_scheme():
    world = build_world(seed=77, scheme="merkle-batch")
    assert world.seed == 77
    assert world.scheme == "merkle-batch"
    assert set(world.participants) == {"alice", "mallory", "eve"}
