"""Integration tests: SQL execution with full provenance tracking."""

import pytest

from repro.exceptions import WorkloadError
from repro.model.relational import RelationalView
from repro.sql.executor import SQLExecutor


@pytest.fixture
def executor(tedb, participants):
    session = tedb.session(participants["p1"])
    sql = SQLExecutor(RelationalView(session))
    sql.execute("CREATE TABLE patients (age, weight)")
    sql.execute("INSERT INTO patients (age, weight) VALUES (52, 81)")
    sql.execute("INSERT INTO patients (age, weight) VALUES (47, 70)")
    sql.execute("INSERT INTO patients (age, weight) VALUES (61, 95)")
    return tedb, sql


class TestDDLAndDML:
    def test_create_and_insert(self, executor):
        tedb, sql = executor
        result = sql.execute("SELECT * FROM patients")
        assert result.rowcount == 3
        assert result.columns == ("age", "weight")

    def test_insert_returns_rowid(self, executor):
        _, sql = executor
        result = sql.execute("INSERT INTO patients (age, weight) VALUES (30, 60)")
        assert result.rowids == (3,)

    def test_update_by_rowid(self, executor):
        _, sql = executor
        result = sql.execute("UPDATE patients SET age = 53 WHERE rowid = 0")
        assert result.rowcount == 1
        rows = sql.execute("SELECT age FROM patients WHERE rowid = 0")
        assert rows.rows == ((53,),)

    def test_update_by_column_hits_all_matches(self, executor):
        _, sql = executor
        sql.execute("INSERT INTO patients (age, weight) VALUES (52, 99)")
        result = sql.execute("UPDATE patients SET weight = 0 WHERE age = 52")
        assert result.rowcount == 2

    def test_update_without_where_hits_everything(self, executor):
        _, sql = executor
        assert sql.execute("UPDATE patients SET age = 0").rowcount == 3

    def test_delete(self, executor):
        _, sql = executor
        assert sql.execute("DELETE FROM patients WHERE rowid = 1").rowcount == 1
        assert sql.execute("SELECT * FROM patients").rowcount == 2

    def test_delete_by_value(self, executor):
        _, sql = executor
        assert sql.execute("DELETE FROM patients WHERE weight = 81").rowcount == 1

    def test_select_projection(self, executor):
        _, sql = executor
        result = sql.execute("SELECT weight FROM patients WHERE age = 47")
        assert result.rows == ((70,),)
        assert "weight" in result.render()

    def test_select_no_match(self, executor):
        _, sql = executor
        result = sql.execute("SELECT * FROM patients WHERE age = 999")
        assert result.rowcount == 0
        assert "(0 rows)" in result.render()

    def test_unknown_column_rejected(self, executor):
        _, sql = executor
        with pytest.raises(WorkloadError):
            sql.execute("UPDATE patients SET bogus = 1")
        with pytest.raises(WorkloadError):
            sql.execute("SELECT bogus FROM patients")
        with pytest.raises(WorkloadError):
            sql.execute("DELETE FROM patients WHERE bogus = 1")

    def test_rowid_filter_needs_int(self, executor):
        _, sql = executor
        with pytest.raises(WorkloadError):
            sql.execute("UPDATE patients SET age = 1 WHERE rowid = 'x'")


class TestProvenanceBehindSQL:
    def test_everything_verifies(self, executor):
        tedb, sql = executor
        sql.execute("UPDATE patients SET age = 53 WHERE rowid = 0")
        sql.execute("DELETE FROM patients WHERE rowid = 2")
        report = tedb.verify("db")
        assert report.ok, report.summary()

    def test_cell_chain_records_sql_change(self, executor):
        tedb, sql = executor
        sql.execute("UPDATE patients SET age = 53 WHERE rowid = 0")
        chain = tedb.provenance_of("db/patients/r0/age")
        assert chain[-1].output.value == 53
        assert chain[-1].inputs[0].value == 52

    def test_note_attached_to_statement(self, executor):
        tedb, sql = executor
        sql.execute(
            "UPDATE patients SET age = 53 WHERE rowid = 0",
            note="age corrected per chart",
        )
        chain = tedb.provenance_of("db/patients/r0/age")
        assert chain[-1].note == "age corrected per chart"

    def test_multi_row_update_is_one_complex_operation(self, executor):
        tedb, sql = executor
        before = len(tedb.provenance_store)
        sql.execute("UPDATE patients SET weight = 1")
        # 3 cells + 3 rows + table + root = 8 records, once each.
        assert len(tedb.provenance_store) - before == 8

    def test_selects_leave_no_records(self, executor):
        tedb, sql = executor
        before = len(tedb.provenance_store)
        sql.execute("SELECT * FROM patients")
        assert len(tedb.provenance_store) == before


class TestOverPlainEngine:
    def test_untracked_execution(self):
        from repro.backend.engine import DatabaseEngine
        from repro.backend.memory import InMemoryStore

        sql = SQLExecutor(RelationalView(DatabaseEngine(InMemoryStore())))
        sql.execute("CREATE TABLE t (a)")
        sql.execute("INSERT INTO t (a) VALUES (1)")
        sql.execute("UPDATE t SET a = 2")
        assert sql.execute("SELECT a FROM t").rows == ((2,),)
