"""Property tests for the SQL layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.engine import DatabaseEngine
from repro.backend.memory import InMemoryStore
from repro.exceptions import ReproError
from repro.model.relational import RelationalView
from repro.sql.executor import SQLExecutor
from repro.sql.parser import SQLSyntaxError, parse

LITERALS = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.booleans(),
    st.none(),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
        max_size=30,
    ),
)


def render_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, int):
        return str(value)
    return "'" + str(value).replace("'", "''") + "'"


class TestLiteralRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(value=LITERALS)
    def test_insert_select_roundtrip(self, value):
        sql = SQLExecutor(RelationalView(DatabaseEngine(InMemoryStore())))
        sql.execute("CREATE TABLE t (a)")
        sql.execute(f"INSERT INTO t (a) VALUES ({render_literal(value)})")
        result = sql.execute("SELECT a FROM t")
        assert result.rows == ((value,),)

    @settings(max_examples=40, deadline=None)
    @given(value=LITERALS)
    def test_where_matches_inserted_value(self, value):
        sql = SQLExecutor(RelationalView(DatabaseEngine(InMemoryStore())))
        sql.execute("CREATE TABLE t (a)")
        sql.execute(f"INSERT INTO t (a) VALUES ({render_literal(value)})")
        result = sql.execute(f"SELECT a FROM t WHERE a = {render_literal(value)}")
        assert result.rowcount == 1


class TestParserRobustness:
    @settings(max_examples=150, deadline=None)
    @given(text=st.text(max_size=120))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse(text)
        except SQLSyntaxError:
            pass  # the only acceptable failure mode

    @settings(max_examples=60, deadline=None)
    @given(
        table=st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True),
        column=st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True),
        value=LITERALS,
    )
    def test_generated_statements_parse_or_reject_cleanly(self, table, column, value):
        statement = (
            f"INSERT INTO {table} ({column}) VALUES ({render_literal(value)})"
        )
        try:
            parsed = parse(statement)
        except SQLSyntaxError:
            return  # keyword-shaped identifiers are allowed to be rejected
        assert parsed.table == table
        assert parsed.values == (value,)

    @settings(max_examples=60, deadline=None)
    @given(text=st.text(max_size=60))
    def test_executor_errors_are_repro_errors(self, text):
        sql = SQLExecutor(RelationalView(DatabaseEngine(InMemoryStore())))
        sql.execute("CREATE TABLE t (a)")
        try:
            sql.execute(text)
        except ReproError:
            pass
