"""Unit tests for the SQL-dialect parser."""

import pytest

from repro.sql.parser import (
    CreateTable,
    Delete,
    Insert,
    Select,
    SQLSyntaxError,
    Update,
    Where,
    parse,
)


class TestCreate:
    def test_basic(self):
        stmt = parse("CREATE TABLE patients (age, weight)")
        assert stmt == CreateTable(table="patients", columns=("age", "weight"))

    def test_case_insensitive_keywords(self):
        assert parse("create table t (c)").table == "t"

    def test_missing_columns(self):
        with pytest.raises(SQLSyntaxError):
            parse("CREATE TABLE t ()")

    def test_keyword_as_identifier_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("CREATE TABLE select (c)")


class TestInsert:
    def test_literals(self):
        stmt = parse(
            "INSERT INTO t (a, b, c, d, e) VALUES (1, -2.5, 'x', NULL, TRUE)"
        )
        assert stmt.values == (1, -2.5, "x", None, True)

    def test_string_escaping(self):
        stmt = parse("INSERT INTO t (a) VALUES ('it''s')")
        assert stmt.values == ("it's",)

    def test_count_mismatch(self):
        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t (a) VALUES (1) extra")

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse("INSERT INTO t (a) VALUES (1);"), Insert)


class TestUpdate:
    def test_multi_assignment_with_rowid(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE rowid = 3")
        assert stmt.assignments == (("a", 1), ("b", "x"))
        assert stmt.where == Where(column=None, value=3)
        assert stmt.where.by_rowid

    def test_column_where(self):
        stmt = parse("UPDATE t SET a = 1 WHERE b = 'y'")
        assert stmt.where == Where(column="b", value="y")

    def test_no_where(self):
        assert parse("UPDATE t SET a = 1").where is None

    def test_missing_set(self):
        with pytest.raises(SQLSyntaxError):
            parse("UPDATE t a = 1")


class TestDeleteAndSelect:
    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE rowid = 0")
        assert isinstance(stmt, Delete)
        assert stmt.where.by_rowid

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, Select)
        assert stmt.columns == ()

    def test_select_projection_and_where(self):
        stmt = parse("SELECT a, b FROM t WHERE c = 5")
        assert stmt.columns == ("a", "b")
        assert stmt.where == Where(column="c", value=5)


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "DROP TABLE t",
        "SELECT FROM t",
        "INSERT INTO t VALUES (1)",
        "UPDATE t SET a = ",
        "SELECT * FROM t WHERE a > 5",
        "CREATE TABLE t (a,)",
        'SELECT * FROM t WHERE a = "double-quoted"',
    ])
    def test_rejected(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse(bad)

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t (a) VALUES ('oops)")
