"""End-to-end tests of the CLI commands (in-process, via main())."""

import json

import pytest

from repro.cli.main import main, parse_value


@pytest.fixture
def lab(tmp_path):
    path = str(tmp_path / "lab")
    assert main(["init", "--path", path, "--key-bits", "512"]) == 0
    assert main(["-w", path, "enroll", "alice"]) == 0
    assert main(["-w", path, "enroll", "bob"]) == 0
    return path


def run(lab, *argv):
    return main(["-w", lab, *argv])


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("42", 42),
        ("-1", -1),
        ("3.5", 3.5),
        ("true", True),
        ("False", False),
        ("null", None),
        (None, None),
        ("hello", "hello"),
        ("12abc", "12abc"),
    ])
    def test_parsing(self, text, expected):
        assert parse_value(text) == expected


class TestCommands:
    def test_full_lifecycle(self, lab, capsys):
        assert run(lab, "insert", "report", "draft", "--as", "alice") == 0
        assert run(lab, "update", "report", "final", "--as", "bob",
                   "--note", "editorial pass") == 0
        assert run(lab, "show", "report") == 0
        out = capsys.readouterr().out
        assert "insert" in out and "update" in out
        assert run(lab, "verify", "report") == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_participants_listing(self, lab, capsys):
        assert run(lab, "participants") == 0
        assert capsys.readouterr().out.split() == ["alice", "bob"]

    def test_aggregate_and_lineage(self, lab, capsys):
        run(lab, "insert", "a", "1", "--as", "alice")
        run(lab, "insert", "b", "2", "--as", "bob")
        assert run(lab, "aggregate", "c", "a", "b", "--as", "alice") == 0
        assert run(lab, "lineage", "c") == 0
        out = capsys.readouterr().out
        assert "non-linear" in out

    def test_objects(self, lab, capsys):
        run(lab, "insert", "x", "1", "--as", "alice")
        assert run(lab, "objects") == 0
        assert "x" in capsys.readouterr().out

    def test_history(self, lab, capsys):
        run(lab, "insert", "x", "1", "--as", "alice")
        run(lab, "update", "x", "2", "--as", "bob", "--note", "bump")
        capsys.readouterr()
        assert run(lab, "history", "x") == 0
        out = capsys.readouterr().out
        assert "#0 insert by alice: 1" in out
        assert "#1 update by bob: 2" in out and "bump" in out

    def test_history_unknown_object(self, lab, capsys):
        assert run(lab, "history", "ghost") == 2

    def test_audit(self, lab, capsys):
        run(lab, "insert", "x", "1", "--as", "alice")
        assert run(lab, "audit", "x") == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out and "history of x" in out

    def test_insert_with_parent_and_delete(self, lab):
        run(lab, "insert", "t", "--as", "alice")
        assert run(lab, "insert", "t/c", "5", "--parent", "t", "--as", "alice") == 0
        assert run(lab, "verify", "t") == 0
        assert run(lab, "delete", "t/c", "--as", "bob") == 0
        assert run(lab, "verify", "t") == 0

    def test_errors_exit_2(self, lab, capsys):
        assert run(lab, "update", "ghost", "1", "--as", "alice") == 2
        assert "error:" in capsys.readouterr().err
        assert run(lab, "insert", "x", "1", "--as", "nobody") == 2

    def test_init_twice_fails(self, lab):
        assert main(["init", "--path", lab]) == 2

    def test_sql_roundtrip(self, lab, capsys):
        assert run(lab, "sql", "CREATE TABLE t (a, b)", "--as", "alice") == 0
        assert run(lab, "sql",
                   "INSERT INTO t (a, b) VALUES (1, 'x')", "--as", "alice") == 0
        assert run(lab, "sql", "UPDATE t SET a = 2 WHERE rowid = 0",
                   "--as", "bob", "--note", "fixup") == 0
        capsys.readouterr()
        assert run(lab, "sql", "SELECT a, b FROM t") == 0
        out = capsys.readouterr().out
        assert "2" in out and "'x'" in out
        assert run(lab, "verify", "db") == 0

    def test_sql_write_requires_participant(self, lab, capsys):
        assert run(lab, "sql", "CREATE TABLE t (a)") == 2
        assert "--as" in capsys.readouterr().err

    def test_sql_read_on_missing_root(self, lab, capsys):
        assert run(lab, "sql", "SELECT * FROM t") == 2

    def test_sql_syntax_error(self, lab, capsys):
        assert run(lab, "sql", "DROP TABLE t", "--as", "alice") == 2
        assert "error:" in capsys.readouterr().err

    def test_anchor_and_verify(self, lab, capsys):
        run(lab, "insert", "x", "1", "--as", "alice")
        run(lab, "update", "x", "2", "--as", "bob")
        assert run(lab, "anchor", "x") == 0
        assert "anchored 'x' at seq 1" in capsys.readouterr().out
        assert run(lab, "verify", "x", "--anchors") == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_anchor_detects_store_truncation(self, lab, capsys):
        """Truncating the provenance database behind the system's back is
        caught by the anchored checksum."""
        import sqlite3

        run(lab, "insert", "x", "1", "--as", "alice")
        run(lab, "update", "x", "2", "--as", "bob")
        run(lab, "anchor", "x")
        # An attacker with store access erases the anchored record...
        conn = sqlite3.connect(f"{lab}/provenance.db")
        conn.execute("DELETE FROM provenance WHERE object_id = 'x' AND seq_id = 1")
        conn.commit()
        conn.close()
        # ...and rewrites the data to match the surviving history.
        conn = sqlite3.connect(f"{lab}/backend.db")
        from repro.model.values import encode_value

        conn.execute(
            "UPDATE nodes SET value = ? WHERE object_id = 'x'",
            (encode_value(1),),
        )
        conn.commit()
        conn.close()
        capsys.readouterr()
        assert run(lab, "verify", "x") == 0  # plain verification fooled
        assert run(lab, "verify", "x", "--anchors") == 1  # anchor catches it
        assert "R7" in capsys.readouterr().out

    def test_dot_export(self, lab, capsys, tmp_path):
        run(lab, "insert", "x", "1", "--as", "alice")
        run(lab, "update", "x", "2", "--as", "bob", "--note", "fixup")
        capsys.readouterr()
        assert run(lab, "dot", "x", "--notes") == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph provenance")
        assert "fixup" in out
        target = str(tmp_path / "g.dot")
        assert run(lab, "dot", "x", "-o", target) == 0
        assert open(target).read().startswith("digraph")

    def test_shell_session(self, lab, capsys, monkeypatch):
        import io

        script = "\n".join(
            [
                "CREATE TABLE t (a)",
                "INSERT INTO t (a) VALUES (7)",
                ".tables",
                "SELECT a FROM t",
                "DROP TABLE t",  # dialect error: shell keeps going
                ".verify",
                ".exit",
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script + "\n"))
        assert run(lab, "shell", "--as", "alice") == 0
        captured = capsys.readouterr()
        assert "t" in captured.out
        assert "7" in captured.out
        assert "VERIFIED" in captured.out
        assert "error:" in captured.err

    def test_shell_eof_exits(self, lab, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert run(lab, "shell", "--as", "alice") == 0

    def test_shell_help(self, lab, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(".help\n.exit\n"))
        run(lab, "shell", "--as", "alice")
        assert ".tables" in capsys.readouterr().out

    def test_lint(self, lab, capsys):
        run(lab, "insert", "x", "1", "--as", "alice")
        run(lab, "update", "x", "2", "--as", "bob")
        assert run(lab, "lint") == 0
        assert "LINT OK" in capsys.readouterr().out


class TestShipments:
    def test_ship_and_verify_roundtrip(self, lab, tmp_path, capsys):
        run(lab, "insert", "x", "1", "--as", "alice")
        run(lab, "update", "x", "2", "--as", "bob")
        out_file = str(tmp_path / "x.shipment.json")
        assert run(lab, "ship", "x", "-o", out_file) == 0
        assert run(lab, "verify-shipment", out_file) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_shipment_with_exported_ca_key(self, lab, tmp_path, capsys):
        run(lab, "insert", "x", "1", "--as", "alice")
        out_file = str(tmp_path / "x.json")
        key_file = str(tmp_path / "ca.json")
        run(lab, "ship", "x", "-o", out_file)
        assert run(lab, "export-ca-key", "-o", key_file) == 0
        assert run(lab, "verify-shipment", out_file, "--ca-key", key_file) == 0

    def test_tampered_shipment_fails_verification(self, lab, tmp_path, capsys):
        run(lab, "insert", "x", "secret", "--as", "alice")
        out_file = str(tmp_path / "x.json")
        run(lab, "ship", "x", "-o", out_file)
        data = json.loads(open(out_file).read())
        from repro.model.values import encode_value

        data["snapshot"]["nodes"][0]["value"] = encode_value("forged").hex()
        open(out_file, "w").write(json.dumps(data))
        assert run(lab, "verify-shipment", out_file) == 1
        assert "TAMPERING" in capsys.readouterr().out


class TestStatsAndTrace:
    """`stats` and `trace` run a seeded synthetic workload — no workspace."""

    def test_stats_table(self, capsys):
        assert main(["stats", "--objects", "3", "--updates", "1"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "crypto.sign.count{scheme=rsa-pkcs1v15}" in out
        assert "db.rng.seed" in out

    def test_stats_json_snapshot(self, capsys):
        assert main(["stats", "--objects", "3", "--updates", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["gauges"]["db.rng.seed"] == 42
        assert data["counters"]["verify.runs"] == 1

    def test_stats_prometheus_to_file(self, tmp_path, capsys):
        out_file = str(tmp_path / "metrics.prom")
        assert main(["stats", "--objects", "3", "--updates", "1",
                     "--prometheus", "-o", out_file]) == 0
        text = open(out_file).read()
        assert "# TYPE repro_verify_runs_total counter" in text
        assert "repro_db_rng_seed 42" in text

    def test_stats_seed_changes_metrics_identically(self, capsys):
        """Same seed twice -> byte-identical JSON counter sections."""
        main(["stats", "--json", "--seed", "7"])
        first = json.loads(capsys.readouterr().out)
        main(["stats", "--json", "--seed", "7"])
        second = json.loads(capsys.readouterr().out)
        assert first["counters"] == second["counters"]
        assert first["gauges"] == second["gauges"]

    def test_stats_leaves_observability_disabled(self):
        from repro import obs

        main(["stats", "--objects", "2", "--updates", "1", "--json"])
        assert not obs.OBS.enabled and not obs.OBS.tracing

    def test_trace_renders_tree(self, capsys):
        assert main(["trace", "--objects", "3", "--updates", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("verify (")
        assert "verify.chain" in out
        assert "ms" in out

    def test_trace_json(self, capsys):
        assert main(["trace", "--objects", "2", "--updates", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "verify"
        assert any(c["name"] == "verify.chain" for c in data["children"])

    def test_trace_parallel_workers(self, capsys):
        assert main(["trace", "--objects", "4", "--updates", "1",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "verify.chain" in out


class TestDashAndAlerts:
    """`repro dash` / `repro alerts tail` against an in-process server."""

    @pytest.fixture
    def live(self):
        from repro import obs
        from repro.service import ProvenanceHTTPServer, ServiceClient, ServiceConfig

        obs.enable(reset=True)
        obs.OBS.tracing = False
        log = obs.enable_events()
        server = ProvenanceHTTPServer(
            config=ServiceConfig(seed=11, key_bits=512)
        )
        server.start_background()
        admin = ServiceClient(server.base_url, token=server.service.admin_token)
        tenant = ServiceClient(
            server.base_url, token=admin.issue_key("t1")["token"]
        )
        tenant.insert("A", 1)
        yield server, admin, log
        server.stop()
        obs.disable_events()
        obs.disable(reset=True)

    def test_dash_once_renders_fleet_table(self, live, capsys):
        server, admin, _ = live
        assert main(["dash", "--url", server.base_url,
                     "--token", admin.token, "--once"]) == 0
        out = capsys.readouterr().out
        assert "health=ok" in out
        assert "tenant" in out and "t1" in out
        assert "p99" in out

    def test_dash_once_json(self, live, capsys):
        server, admin, _ = live
        assert main(["dash", "--url", server.base_url,
                     "--token", admin.token, "--once", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["health"] == "ok"
        assert "t1" in snap["tenants"]
        assert snap["tenants"]["t1"]["records"] >= 1

    def test_dash_ticks_compute_request_rate(self, live, capsys):
        server, admin, _ = live
        assert main(["dash", "--url", server.base_url, "--token", admin.token,
                     "--ticks", "2", "--interval", "0.1"]) == 0
        out = capsys.readouterr().out
        assert out.count("health=ok") == 2
        assert "req/s=" in out  # second frame has a delta to rate

    def test_dash_non_admin_token_fails(self, live, capsys):
        server, _, _ = live
        assert main(["dash", "--url", server.base_url,
                     "--token", "not-a-key", "--once"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_dash_unreachable_server_fails(self, capsys):
        assert main(["dash", "--url", "http://127.0.0.1:9",
                     "--token", "x", "--once"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_alerts_tail_empty_stream_exits_zero(self, live, capsys):
        server, admin, _ = live
        assert main(["alerts", "tail", "--url", server.base_url,
                     "--token", admin.token]) == 0
        assert capsys.readouterr().out == ""

    def test_alerts_tail_tampering_exits_one(self, live, capsys):
        server, admin, log = live
        log.emit("alert", rule="tamper", severity="critical",
                 message="R1 failed", tampering=True, tenant="t1")
        assert main(["alerts", "tail", "--url", server.base_url,
                     "--token", admin.token]) == 1
        out = capsys.readouterr().out
        assert "tamper" in out and "TAMPERING" in out

    def test_alerts_tail_json_lines(self, live, capsys):
        server, admin, log = live
        log.emit("service.health", tenant="t1",
                 previous="ok", health="degraded")
        assert main(["alerts", "tail", "--url", server.base_url,
                     "--token", admin.token, "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[-1]["kind"] == "service.health"
        assert events[-1]["fields"]["health"] == "degraded"

    def test_alerts_tail_since_skips_old_events(self, live, capsys):
        server, admin, log = live
        old = log.emit("alert", rule="old")
        new = log.emit("alert", rule="new")
        assert main(["alerts", "tail", "--url", server.base_url, "--token",
                     admin.token, "--since", str(old.seq)]) == 0
        out = capsys.readouterr().out
        assert "new" in out and "old" not in out
        assert f"#{new.seq}" in out

    def test_alerts_tail_bad_token_exits_two(self, live, capsys):
        server, _, _ = live
        assert main(["alerts", "tail", "--url", server.base_url,
                     "--token", "nope"]) == 2
        assert "error:" in capsys.readouterr().err
