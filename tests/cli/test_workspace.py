"""Unit tests for on-disk workspaces."""

import json

import pytest

from repro.cli.workspace import Workspace, WorkspaceError

KEY_BITS = 512


@pytest.fixture
def ws(tmp_path):
    with Workspace.create(tmp_path / "lab", key_bits=KEY_BITS) as workspace:
        yield workspace


class TestLifecycle:
    def test_create_and_reopen(self, tmp_path):
        Workspace.create(tmp_path / "lab", key_bits=KEY_BITS).close()
        with Workspace(tmp_path / "lab") as ws:
            assert ws.config["key_bits"] == KEY_BITS
            assert ws.ca.name == "repro-root-ca"

    def test_double_create_rejected(self, tmp_path):
        Workspace.create(tmp_path / "lab", key_bits=KEY_BITS).close()
        with pytest.raises(WorkspaceError):
            Workspace.create(tmp_path / "lab")

    def test_open_non_workspace_rejected(self, tmp_path):
        with pytest.raises(WorkspaceError):
            Workspace(tmp_path / "nothing-here")

    def test_ca_survives_reopen(self, tmp_path):
        ws = Workspace.create(tmp_path / "lab", key_bits=KEY_BITS)
        original_key = ws.ca.public_key
        ws.close()
        with Workspace(tmp_path / "lab") as reopened:
            assert reopened.ca.public_key == original_key


class TestParticipants:
    def test_enroll_and_load(self, ws):
        enrolled = ws.enroll("alice")
        loaded = ws.participant("alice")
        assert loaded.participant_id == "alice"
        assert loaded.certificate == enrolled.certificate
        # The loaded key signs verifiably under the stored certificate.
        sig = loaded.sign(b"m")
        assert enrolled.scheme.verify(b"m", sig)

    def test_duplicate_enroll_rejected(self, ws):
        ws.enroll("alice")
        with pytest.raises(WorkspaceError):
            ws.enroll("alice")

    def test_unknown_participant(self, ws):
        ws.enroll("alice")
        with pytest.raises(WorkspaceError) as excinfo:
            ws.participant("mallory")
        assert "alice" in str(excinfo.value)  # lists enrolled ids

    def test_corrupt_participant_file(self, ws):
        ws.enroll("alice")
        (ws.path / "participants" / "alice.json").write_text("{broken")
        with pytest.raises(WorkspaceError):
            ws.participant("alice")

    def test_participants_listing(self, ws):
        for name in ("bob", "alice"):
            ws.enroll(name)
        assert ws.participants() == ["alice", "bob"]

    def test_certificates_persisted_in_ca(self, ws, tmp_path):
        ws.enroll("alice")
        ws.close()
        with Workspace(ws.path) as reopened:
            cert = reopened.ca.certificate_for("alice")
            assert reopened.ca.verify_certificate(cert)


class TestAnchors:
    def test_anchor_log_persists_across_reopen(self, tmp_path):
        path = tmp_path / "lab"
        with Workspace.create(path, key_bits=KEY_BITS) as ws:
            alice = ws.enroll("alice")
            db = ws.database()
            db.session(alice).insert("x", 1)
            service = ws.anchor_service()
            ws.save_anchor(service.anchor_latest(db, "x"))
        with Workspace(path) as reopened:
            receipts = reopened.anchor_receipts()
            assert len(receipts) == 1
            assert receipts[0].object_id == "x"
            # The reloaded service continues the counter and verifies its
            # own earlier receipts.
            service = reopened.anchor_service()
            assert service.verifier().verify(
                receipts[0].payload(), receipts[0].signature
            )
            db = reopened.database()
            next_receipt = service.anchor_latest(db, "x")
            assert next_receipt.counter == receipts[0].counter + 1


class TestDatabase:
    def test_operations_persist(self, tmp_path):
        path = tmp_path / "lab"
        with Workspace.create(path, key_bits=KEY_BITS) as ws:
            alice = ws.enroll("alice")
            session = ws.database().session(alice)
            session.insert("x", 1)
            session.update("x", 2)
        with Workspace(path) as ws:
            db = ws.database()
            assert db.store.value("x") == 2
            assert db.verify("x").ok

    def test_cross_session_participants(self, tmp_path):
        path = tmp_path / "lab"
        with Workspace.create(path, key_bits=KEY_BITS) as ws:
            ws.enroll("alice")
            ws.database().session(ws.participant("alice")).insert("x", 1)
        with Workspace(path) as ws:
            ws.enroll("bob")
            ws.database().session(ws.participant("bob")).update("x", 2)
        with Workspace(path) as ws:
            db = ws.database()
            chain = db.provenance_of("x")
            assert [r.participant_id for r in chain] == ["alice", "bob"]
            assert db.verify("x").ok
