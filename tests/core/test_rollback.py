"""Atomicity tests: failed operations leave no trace.

A store mutation without a matching provenance record is
indistinguishable from an R4 attack at the next verification, so when
provenance collection fails, the session must roll the store back — and
the provenance store must never keep a partial record batch.
"""

import pytest

from repro.core.system import TamperEvidentDatabase
from repro.exceptions import MissingProvenanceError, ProvenanceError


@pytest.fixture
def session(tedb, participants):
    return tedb.session(participants["p1"])


def world_state(db):
    data = {
        object_id: db.store.value(object_id)
        for root in db.store.roots()
        for object_id in db.store.iter_subtree(root)
    }
    return data, len(db.provenance_store)


class TestPrimitiveRollback:
    def test_untracked_update_rolls_back(self, tedb, session):
        tedb.store.insert("rogue", 1)
        before = world_state(tedb)
        with pytest.raises(MissingProvenanceError):
            session.update("rogue", 2)
        assert world_state(tedb) == before
        assert tedb.store.value("rogue") == 1  # value restored

    def test_untracked_delete_with_basic_hashing_rolls_back(self, ca, participants):
        # Basic hashing walks the real tree, so the untracked child makes
        # the parent's before-state mismatch its chain -> strict failure,
        # and the delete must be rolled back.
        db = TamperEvidentDatabase(ca=ca, hashing="basic")
        session = db.session(participants["p1"])
        session.insert("parent", None)
        db.store.insert("parent/rogue", 7, "parent")
        with pytest.raises(ProvenanceError):
            session.delete("parent/rogue")
        assert db.store.value("parent/rogue") == 7

    def test_untracked_delete_with_economical_cache_is_invisible(self, tedb, session):
        # Pinned semantics: the economical cache never saw the rogue
        # object, so deleting it succeeds and history stays consistent
        # (the exclusive-writer assumption, documented in the collector).
        session.insert("parent", None)
        tedb.store.insert("parent/rogue", 7, "parent")
        session.delete("parent/rogue")
        assert "parent/rogue" not in tedb.store
        assert tedb.verify("parent").ok

    def test_store_still_consistent_after_rollback(self, tedb, session):
        session.insert("x", 1)
        tedb.store.insert("rogue", 1)
        with pytest.raises(MissingProvenanceError):
            session.update("rogue", 2)
        # Tracked objects still work and verify.
        session.update("x", 2)
        assert tedb.verify("x").ok

    def test_basic_hashing_strict_violation_rolls_back(self, ca, participants):
        db = TamperEvidentDatabase(ca=ca, hashing="basic")
        session = db.session(participants["p1"])
        session.insert("x", 1)
        db.store.update("x", 999)  # out-of-band
        with pytest.raises(ProvenanceError):
            session.update("x", 2)
        # The session's own mutation was rolled back; the out-of-band 999
        # remains (the session never owned that change).
        assert db.store.value("x") == 999


class TestAggregateRollback:
    def test_failed_aggregate_removes_created_subtree(self, tedb, session):
        tedb.store.insert("rogue", 1)  # no provenance, bootstrap off
        before = world_state(tedb)
        with pytest.raises(MissingProvenanceError):
            session.aggregate(["rogue"], "derived")
        assert "derived" not in tedb.store
        assert world_state(tedb) == before

    def test_partial_bootstrap_not_persisted(self, tedb, session):
        """Two untracked inputs, bootstrap disabled: neither input's
        genesis record may survive the failure."""
        tedb.store.insert("rogue1", 1)
        tedb.store.insert("rogue2", 2)
        with pytest.raises(MissingProvenanceError):
            session.aggregate(["rogue1", "rogue2"], "derived")
        assert len(tedb.provenance_store) == 0


class TestComplexRollback:
    def test_exception_in_block_rolls_back_store(self, tedb, session):
        session.insert("t", None)
        before = world_state(tedb)
        with pytest.raises(RuntimeError):
            with session.complex_operation():
                session.insert("t/a", 1, "t")
                session.insert("t/b", 2, "t")
                raise RuntimeError("boom")
        assert world_state(tedb) == before
        assert "t/a" not in tedb.store and "t/b" not in tedb.store

    def test_mixed_ops_rolled_back_in_order(self, tedb, session):
        session.insert("t", None)
        session.insert("t/a", 1, "t")
        with pytest.raises(RuntimeError):
            with session.complex_operation():
                session.update("t/a", 99)
                session.delete("t/a")
                session.insert("t/a", 77, "t")
                raise RuntimeError("boom")
        assert tedb.store.value("t/a") == 1  # original value restored
        assert tedb.verify("t").ok

    def test_collection_failure_after_block_rolls_back(self, ca, participants):
        db = TamperEvidentDatabase(ca=ca, hashing="basic")
        session = db.session(participants["p1"])
        session.insert("t", None)
        db.store.insert("t/rogue", 5, "t")  # untracked: strict failure
        with pytest.raises(ProvenanceError):
            with session.complex_operation():
                session.update("t/rogue", 6)
        assert db.store.value("t/rogue") == 5

    def test_hash_cache_consistent_after_rollback(self, tedb, session):
        """The economical cache must not keep digests of the rolled-back
        state — follow-up operations and verification stay correct."""
        session.insert("t", None)
        session.insert("t/a", 1, "t")
        with pytest.raises(RuntimeError):
            with session.complex_operation():
                session.update("t/a", 50)
                raise RuntimeError("boom")
        # New legitimate operation after the rollback:
        session.update("t/a", 2)
        report = tedb.verify("t")
        assert report.ok, report.summary()
        chain = tedb.provenance_of("t/a")
        # seq 0 insert, seq 1 the post-rollback update; nothing from 50.
        assert [r.seq_id for r in chain] == [0, 1]
        assert chain[1].inputs[0].value == 1
        assert chain[1].output.value == 2

    def test_session_usable_after_rollback(self, tedb, session):
        session.insert("x", 1)
        with pytest.raises(RuntimeError):
            with session.complex_operation():
                session.update("x", 9)
                raise RuntimeError("boom")
        with session.complex_operation():
            session.update("x", 2)
        assert tedb.store.value("x") == 2
        assert tedb.verify("x").ok
