"""ParallelVerifier must be report-for-report identical to Verifier.

§3.2's local chaining makes per-object chains independently verifiable;
the parallel verifier fans them out over a process pool and merges the
per-chain failures back in serial order.  These tests pin the contract:
for any worker count, on clean and on tampered inputs, the
``VerificationReport`` — failures, requirement codes, order, counts — is
byte-identical to the serial verifier's.
"""

import pytest

from repro.attacks.scenarios import all_scenarios, build_world
from repro.core.system import TamperEvidentDatabase
from repro.core.verifier import ParallelVerifier, Verifier

WORKER_COUNTS = (1, 2, 8)


@pytest.fixture(scope="module")
def world():
    return build_world()


@pytest.fixture(scope="module")
def aggregate_db(ca, participants):
    """A database whose provenance DAG crosses chains via aggregation."""
    db = TamperEvidentDatabase(ca=ca)
    session = db.session(participants["p1"])
    for i in range(6):
        session.insert(f"src{i}", i)
        session.update(f"src{i}", i * 10)
    session.aggregate([f"src{i}" for i in range(6)], "agg")
    return db


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_untampered_shipment_reports_identical(world, workers):
    keystore = world.db.keystore()
    serial = world.shipment.verify(keystore)
    parallel = world.shipment.verify(keystore, workers=workers)
    assert serial.ok
    assert parallel == serial


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_tampered_shipment_reports_identical(world, workers):
    # One representative record-tampering attack (R1).
    from repro.attacks import tampering

    tampered = tampering.modify_record_output(world.shipment, "x", 3, fake_value=1300)
    serial = tampered.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
    parallel = tampered.verify_with_ca(
        world.db.ca.public_key, world.db.ca.name, workers=workers
    )
    assert not serial.ok
    assert parallel == serial
    assert parallel.failures == serial.failures  # same failures, same order
    assert parallel.requirement_codes() == serial.requirement_codes()


@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
def test_all_attack_scenarios_report_identical(world, scenario):
    """Every R1–R8 scenario: parallel == serial, detection unchanged."""
    tampered = scenario.run(world)
    serial = tampered.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
    parallel = tampered.verify_with_ca(
        world.db.ca.public_key, world.db.ca.name, workers=4
    )
    assert parallel == serial
    assert (not serial.ok) == scenario.expect_detected


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_aggregate_cross_chain_resolution(aggregate_db, keystore, workers):
    """Aggregation records read *other* chains during verification; the
    per-chain partition must still resolve their predecessors."""
    records = list(aggregate_db.provenance_store.all_records())
    serial = Verifier(keystore).verify_records(records)
    parallel = ParallelVerifier(keystore, workers=workers).verify_records(records)
    assert serial.ok
    assert parallel == serial


def test_verify_records_on_tampered_chain_merges_deterministically(
    aggregate_db, keystore
):
    records = list(aggregate_db.provenance_store.all_records())
    # Corrupt two records in different chains: merged failure order must
    # match the serial sorted-object iteration, not pool completion order.
    corrupted = []
    for record in records:
        if record.key in (("src1", 1), ("src4", 1)):
            record = record.with_checksum(
                bytes([record.checksum[0] ^ 0xFF]) + record.checksum[1:]
            )
        corrupted.append(record)
    serial = Verifier(keystore).verify_records(corrupted)
    assert not serial.ok
    for workers in WORKER_COUNTS:
        parallel = ParallelVerifier(keystore, workers=workers).verify_records(corrupted)
        assert parallel == serial


def test_database_verify_accepts_workers(tedb, participants):
    session = tedb.session(participants["p1"])
    session.insert("doc", "draft")
    session.update("doc", "final")
    serial = tedb.verify("doc")
    parallel = tedb.verify("doc", workers=2)
    assert serial.ok
    assert parallel == serial


def test_single_worker_runs_in_process(keystore, aggregate_db):
    """workers=1 must not pay for a pool."""
    records = list(aggregate_db.provenance_store.all_records())
    verifier = ParallelVerifier(keystore, workers=1)
    # no pool machinery: _run_pool would need >1 worker
    report = verifier.verify_records(records)
    assert report.ok


# ----------------------------------------------------------------------
# worker death (fault injection)
# ----------------------------------------------------------------------


def _kill_plan(kind, *chunk_indices, rate=None):
    from repro.faults.plan import FaultPlan, FaultRule

    if rate is not None:
        rule = FaultRule("verify.worker", kind, rate=rate)
    else:
        rule = FaultRule("verify.worker", kind, indices=frozenset(chunk_indices))
    return FaultPlan(seed=0, rules=(rule,))


def test_crashed_worker_chunk_reverified_serially(keystore, aggregate_db):
    """A chunk whose worker dies is re-verified in-process; the merged
    report stays byte-identical to the serial verifier's."""
    from repro.faults.plan import FaultKind

    records = list(aggregate_db.provenance_store.all_records())
    serial = Verifier(keystore).verify_records(records)
    plan = _kill_plan(FaultKind.CRASH, 0)
    report = ParallelVerifier(keystore, workers=2, faults=plan).verify_records(
        records
    )
    assert report == serial
    assert report.ok
    # The parent logged the death it observed.
    assert any(e.site == "verify.worker" for e in plan.events)


def test_all_workers_dead_degrades_to_full_serial(keystore, aggregate_db):
    from repro.faults.plan import FaultKind

    records = list(aggregate_db.provenance_store.all_records())
    serial = Verifier(keystore).verify_records(records)
    plan = _kill_plan(FaultKind.CRASH, rate=1.0)
    report = ParallelVerifier(keystore, workers=4, faults=plan).verify_records(
        records
    )
    assert report == serial


def test_dead_worker_on_tampered_chain_keeps_failure_order(
    keystore, aggregate_db
):
    """Degraded chunks must merge failures at their exact serial position."""
    from repro.faults.plan import FaultKind

    corrupted = []
    for record in aggregate_db.provenance_store.all_records():
        if record.key in (("src1", 1), ("src4", 1)):
            record = record.with_checksum(
                bytes([record.checksum[0] ^ 0xFF]) + record.checksum[1:]
            )
        corrupted.append(record)
    serial = Verifier(keystore).verify_records(corrupted)
    assert not serial.ok
    plan = _kill_plan(FaultKind.CRASH, 0, 1)
    parallel = ParallelVerifier(
        keystore, workers=2, faults=plan
    ).verify_records(corrupted)
    assert parallel == serial
    assert parallel.failures == serial.failures


def test_hard_killed_worker_process_degrades(keystore, aggregate_db):
    """KILL is real process death (``os._exit``), which breaks the whole
    pool — every chunk must still come back via serial re-verification."""
    from repro.faults.plan import FaultKind

    records = list(aggregate_db.provenance_store.all_records())
    serial = Verifier(keystore).verify_records(records)
    plan = _kill_plan(FaultKind.KILL, 0)
    report = ParallelVerifier(keystore, workers=2, faults=plan).verify_records(
        records
    )
    assert report == serial


def test_degraded_chunks_are_counted(keystore, aggregate_db):
    from repro import obs
    from repro.faults.plan import FaultKind

    records = list(aggregate_db.provenance_store.all_records())
    obs.enable(reset=True)
    try:
        plan = _kill_plan(FaultKind.CRASH, 0)
        ParallelVerifier(keystore, workers=2, faults=plan).verify_records(records)
        assert obs.OBS.registry.counter("verify.degraded_chunks").value >= 1
    finally:
        obs.disable()
