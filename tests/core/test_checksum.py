"""Unit tests for the checksum payload constructions (§3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import checksum as payloads
from repro.exceptions import ProvenanceError
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord

D1, D2, D3 = b"\x01" * 20, b"\x02" * 20, b"\x03" * 20
C1, C2 = b"\xaa" * 64, b"\xbb" * 64


def record(op, seq, inputs, output_digest=D2, object_id="A"):
    return ProvenanceRecord(
        object_id=object_id,
        seq_id=seq,
        participant_id="p",
        operation=op,
        inputs=inputs,
        output=ObjectState(object_id=object_id, digest=output_digest),
        checksum=b"",
    )


def state(object_id="A", digest=D1):
    return ObjectState(object_id=object_id, digest=digest)


class TestPayloadPrimitives:
    def test_insert_payload_deterministic(self):
        assert payloads.insert_payload(D1) == payloads.insert_payload(D1)
        assert payloads.insert_payload(D1) != payloads.insert_payload(D2)

    def test_update_payload_binds_everything(self):
        base = payloads.update_payload(D1, D2, C1)
        assert base != payloads.update_payload(D3, D2, C1)  # input
        assert base != payloads.update_payload(D1, D3, C1)  # output
        assert base != payloads.update_payload(D1, D2, C2)  # prev checksum

    def test_cross_operation_domain_separation(self):
        # The same digests must never produce the same payload for
        # different operation kinds.
        ins = payloads.insert_payload(D2)
        upd = payloads.update_payload(payloads.ZERO, D2, payloads.ZERO)
        agg = payloads.aggregate_payload([payloads.ZERO], D2, [payloads.ZERO])
        assert len({ins, upd, agg}) == 3

    def test_no_concatenation_ambiguity(self):
        # Moving a byte across a part boundary must change the payload.
        a = payloads.update_payload(b"\x01\x02", b"\x03", C1)
        b = payloads.update_payload(b"\x01", b"\x02\x03", C1)
        assert a != b

    def test_aggregate_payload_orders_and_counts(self):
        base = payloads.aggregate_payload([D1, D2], D3, [C1, C2])
        swapped = payloads.aggregate_payload([D2, D1], D3, [C2, C1])
        assert base != swapped  # global order is load-bearing

    def test_aggregate_requires_matched_lengths(self):
        with pytest.raises(ProvenanceError):
            payloads.aggregate_payload([D1, D2], D3, [C1])
        with pytest.raises(ProvenanceError):
            payloads.aggregate_payload([], D3, [])

    @given(st.binary(min_size=1, max_size=40), st.binary(min_size=1, max_size=40))
    def test_update_payload_injective_on_inputs(self, a, b):
        if a != b:
            assert payloads.update_payload(a, D2, C1) != payloads.update_payload(
                b, D2, C1
            )


class TestRecordPayload:
    def test_genesis_insert(self):
        r = record(Operation.INSERT, 0, ())
        assert payloads.insert_payload(D2) in payloads.record_payload(r, ())

    def test_genesis_with_prev_rejected(self):
        r = record(Operation.INSERT, 0, ())
        with pytest.raises(ProvenanceError):
            payloads.record_payload(r, (C1,))

    def test_genesis_with_inputs_rejected(self):
        r = record(Operation.INSERT, 0, (state(),))
        with pytest.raises(ProvenanceError):
            payloads.record_payload(r, ())

    def test_update(self):
        r = record(Operation.UPDATE, 1, (state(),))
        assert payloads.update_payload(D1, D2, C1) in payloads.record_payload(r, (C1,))

    def test_complex_is_update_shaped(self):
        r = record(Operation.COMPLEX, 4, (state(),))
        assert payloads.update_payload(D1, D2, C1) in payloads.record_payload(r, (C1,))

    def test_context_binds_seq_and_operation(self):
        # Hardening: the same formula inputs at a different seq or with a
        # relabelled operation must sign differently.
        base = payloads.record_payload(record(Operation.UPDATE, 1, (state(),)), (C1,))
        bumped = payloads.record_payload(record(Operation.UPDATE, 2, (state(),)), (C1,))
        relabelled = payloads.record_payload(
            record(Operation.COMPLEX, 1, (state(),)), (C1,)
        )
        assert len({base, bumped, relabelled}) == 3

    def test_context_binds_object_and_inheritance(self):
        import dataclasses

        r = record(Operation.UPDATE, 1, (state(),))
        inherited = dataclasses.replace(r, inherited=True)
        assert payloads.record_payload(r, (C1,)) != payloads.record_payload(
            inherited, (C1,)
        )

    def test_update_needs_exactly_one_prev(self):
        r = record(Operation.UPDATE, 1, (state(),))
        with pytest.raises(ProvenanceError):
            payloads.record_payload(r, ())
        with pytest.raises(ProvenanceError):
            payloads.record_payload(r, (C1, C2))

    def test_update_input_must_be_self(self):
        r = record(Operation.UPDATE, 1, (state(object_id="B"),))
        with pytest.raises(ProvenanceError):
            payloads.record_payload(r, (C1,))

    def test_reinsertion_after_delete(self):
        r = record(Operation.INSERT, 3, ())
        expected = payloads.update_payload(payloads.ZERO, D2, C1)
        assert expected in payloads.record_payload(r, (C1,))

    def test_aggregate(self):
        r = record(
            Operation.AGGREGATE,
            2,
            (state("X", D1), state("Y", D3)),
            output_digest=D2,
        )
        expected = payloads.aggregate_payload([D1, D3], D2, [C1, C2])
        assert expected in payloads.record_payload(r, (C1, C2))

    def test_fig3_checksum_structure(self):
        """Example 3 / Fig 3: C7 = S(h(h(A,a3)|h(C,c1)) | h(D,d1) | C5|C6)."""
        c7_payload = payloads.record_payload(
            record(
                Operation.AGGREGATE,
                3,
                (state("A", D1), state("C", D3)),
                output_digest=D2,
                object_id="D",
            ),
            (C1, C2),
        )
        from repro.crypto.hashing import hash_concat

        combined = hash_concat([D1, D3])
        assert combined in c7_payload
        assert D2 in c7_payload
        assert C1 in c7_payload and C2 in c7_payload
