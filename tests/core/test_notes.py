"""Tests for white-box operation notes (paper footnote 4 extension).

Notes describe the operation in human terms ("amended transcription
error", the SQL text, ...).  They are part of the signed checksum
payload, so they are exactly as tamper-evident as the recorded states.
"""

import dataclasses

import pytest


@pytest.fixture
def session(tedb, participants):
    return tedb.session(participants["p1"])


class TestNoteCollection:
    def test_primitive_note_recorded(self, tedb, session):
        session.insert("x", 1, note="initial intake")
        (record,) = session.update("x", 2, note="corrected transcription error")
        assert record.note == "corrected transcription error"
        chain = tedb.provenance_of("x")
        assert chain[0].note == "initial intake"

    def test_note_propagates_to_inherited_records(self, tedb, session):
        session.insert("t", None)
        records = session.insert("t/c", 1, "t", note="loaded from CSV")
        assert all(r.note == "loaded from CSV" for r in records)

    def test_aggregate_note(self, tedb, session):
        session.insert("a", 1)
        session.insert("b", 2)
        record = session.aggregate(["a", "b"], "c", note="quarterly rollup")
        assert record.note == "quarterly rollup"

    def test_complex_operation_note(self, tedb, session):
        session.insert("t", None)
        with session.complex_operation(note="nightly batch"):
            session.insert("t/a", 1, "t")
            session.insert("t/b", 2, "t")
        assert all(r.note == "nightly batch" for r in session.last_records)

    def test_primitive_notes_merge_inside_complex(self, tedb, session):
        session.insert("t", None)
        with session.complex_operation():
            session.insert("t/a", 1, "t", note="step one")
            session.insert("t/b", 2, "t", note="step two")
        assert session.last_records[0].note == "step one; step two"

    def test_empty_note_default(self, tedb, session):
        (record,) = session.insert("x", 1)
        assert record.note == ""
        assert "note" not in record.to_dict()


class TestNoteIntegrity:
    def test_noted_history_verifies(self, tedb, session):
        session.insert("x", 1, note="created")
        session.update("x", 2, note="reviewed")
        report = tedb.verify("x")
        assert report.ok, report.summary()

    def test_note_roundtrips_through_shipment(self, tedb, session):
        from repro.core.shipment import Shipment

        session.insert("x", 1, note="created")
        shipment = Shipment.from_json(tedb.ship("x").to_json())
        assert shipment.records[0].note == "created"
        assert shipment.verify(tedb.keystore()).ok

    def test_tampered_note_detected(self, tedb, session):
        session.insert("x", 1)
        session.update("x", 2, note="legitimate correction")
        shipment = tedb.ship("x")
        records = tuple(
            dataclasses.replace(r, note="totally routine edit")
            if r.note
            else r
            for r in shipment.records
        )
        forged = dataclasses.replace(shipment, records=records)
        report = forged.verify(tedb.keystore())
        assert not report.ok
        assert "R1" in report.requirement_codes()

    def test_removed_note_detected(self, tedb, session):
        session.insert("x", 1)
        session.update("x", 2, note="under protest")
        shipment = tedb.ship("x")
        records = tuple(
            dataclasses.replace(r, note="") if r.note else r
            for r in shipment.records
        )
        forged = dataclasses.replace(shipment, records=records)
        assert not forged.verify(tedb.keystore()).ok

    def test_added_note_detected(self, tedb, session):
        session.insert("x", 1)
        session.update("x", 2)
        shipment = tedb.ship("x")
        records = tuple(
            dataclasses.replace(r, note="looks fine to me") for r in shipment.records
        )
        forged = dataclasses.replace(shipment, records=records)
        assert not forged.verify(tedb.keystore()).ok
