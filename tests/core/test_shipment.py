"""Unit tests for shipments (data + provenance + certificates)."""

import json

import pytest

from repro.core.shipment import Shipment
from repro.exceptions import CertificateError, ShipmentError


@pytest.fixture
def shipment(fig2_world):
    return fig2_world.ship("D")


class TestBuild:
    def test_contents(self, fig2_world, shipment):
        assert shipment.target_id == "D"
        assert shipment.snapshot.root_id == "D"
        assert {r.object_id for r in shipment.records} == {"A", "B", "C", "D"}
        subjects = {c.subject for c in shipment.certificates}
        assert subjects == {"p1", "p2", "p3"}

    def test_unknown_object_rejected(self, fig2_world):
        with pytest.raises(ShipmentError):
            fig2_world.ship("nope")

    def test_len_is_record_count(self, shipment):
        assert len(shipment) == len(shipment.records)

    def test_snapshot_matches_store(self, fig2_world, shipment):
        assert shipment.snapshot.node_count == fig2_world.store.subtree_size("D")


class TestVerification:
    def test_verify_with_keystore(self, fig2_world, shipment):
        assert shipment.verify(fig2_world.keystore()).ok

    def test_verify_with_ca_only(self, fig2_world, shipment):
        report = shipment.verify_with_ca(fig2_world.ca.public_key, fig2_world.ca.name)
        assert report.ok

    def test_forged_certificate_in_shipment_reported(
        self, fig2_world, shipment, other_keypair
    ):
        import dataclasses

        bad_cert = dataclasses.replace(
            shipment.certificates[0], public_key=other_keypair.public
        )
        forged = dataclasses.replace(
            shipment, certificates=(bad_cert,) + shipment.certificates[1:]
        )
        report = forged.verify_with_ca(fig2_world.ca.public_key, fig2_world.ca.name)
        assert not report.ok
        assert "PKI" in report.requirement_codes()

    def test_wrong_ca_key_reported(self, shipment, other_keypair):
        report = shipment.verify_with_ca(other_keypair.public)
        assert not report.ok
        assert report.requirement_codes() == ("PKI",)


class TestWireFormat:
    def test_json_roundtrip(self, fig2_world, shipment):
        blob = shipment.to_json()
        restored = Shipment.from_json(blob)
        assert restored == shipment
        assert restored.verify_with_ca(
            fig2_world.ca.public_key, fig2_world.ca.name
        ).ok

    def test_json_is_plain_json(self, shipment):
        data = json.loads(shipment.to_json())
        assert data["format"] == "repro-shipment-v1"
        assert data["target_id"] == "D"

    def test_wrong_format_rejected(self, shipment):
        data = json.loads(shipment.to_json())
        data["format"] = "v999"
        with pytest.raises(ShipmentError):
            Shipment.from_json(json.dumps(data))

    def test_garbage_rejected(self):
        with pytest.raises(ShipmentError):
            Shipment.from_json("not json at all {")
        with pytest.raises(ShipmentError):
            Shipment.from_json(json.dumps({"format": "repro-shipment-v1"}))

    def test_tampering_in_transit_detected(self, fig2_world, shipment):
        data = json.loads(shipment.to_json())
        # Flip one value in the shipped snapshot.
        from repro.model.values import encode_value

        data["snapshot"]["nodes"][0]["value"] = encode_value("evil").hex()
        tampered = Shipment.from_json(json.dumps(data))
        report = tampered.verify_with_ca(fig2_world.ca.public_key, fig2_world.ca.name)
        assert not report.ok
