"""Unit tests for checksummed provenance collection.

Collection semantics under test (§2.1, §4.2, §4.4):
- seq ids: insert 0, update prev+1, aggregate max(inputs)+1;
- inheritance: one inherited record per surviving ancestor;
- inherited-checksum counts: delete => x records, insert/update => x+1;
- complex grouping: one record per touched object for the whole group.
"""

import pytest

from repro.exceptions import MissingProvenanceError, ProvenanceError
from repro.provenance.records import Operation


@pytest.fixture
def session(tedb, participants):
    return tedb.session(participants["p1"])


@pytest.fixture
def deep(session):
    """db -> t -> r -> c (depth 3 leaf, x=3 ancestors)."""
    session.insert("db", None)
    session.insert("db/t", None, "db")
    session.insert("db/t/r", None, "db/t")
    session.insert("db/t/r/c", 1, "db/t/r")
    return session


class TestSeqIdRules:
    def test_insert_starts_at_zero(self, tedb, session):
        (record,) = session.insert("x", 1)
        assert record.seq_id == 0
        assert record.operation is Operation.INSERT

    def test_update_increments(self, tedb, session):
        session.insert("x", 1)
        (record,) = session.update("x", 2)
        assert record.seq_id == 1
        (record,) = session.update("x", 3)
        assert record.seq_id == 2

    def test_aggregate_is_max_plus_one(self, tedb, session):
        session.insert("a", 1)          # a: seq 0
        session.insert("b", 1)          # b: seq 0
        session.update("b", 2)          # b: seq 1
        session.update("b", 3)          # b: seq 2
        record = session.aggregate(["a", "b"], "c")
        assert record.seq_id == 3       # max(0, 2) + 1
        assert record.operation is Operation.AGGREGATE

    def test_fig2_sequence_ids(self, fig2_world):
        store = fig2_world.provenance_store
        assert store.latest("A").seq_id == 2
        assert store.latest("B").seq_id == 1
        assert store.latest("C").seq_id == 2   # max(A#1, B#1) + 1
        assert store.latest("D").seq_id == 3   # max(A#2, C#2) + 1


class TestInheritance:
    def test_update_produces_x_plus_1_records(self, tedb, deep):
        records = deep.update("db/t/r/c", 2)
        assert len(records) == 4  # cell + 3 ancestors
        assert [r.object_id for r in records] == ["db/t/r/c", "db/t/r", "db/t", "db"]
        assert [r.inherited for r in records] == [False, True, True, True]

    def test_insert_produces_x_plus_1_records(self, tedb, deep):
        records = deep.insert("db/t/r/c2", 5, "db/t/r")
        assert len(records) == 4
        assert records[0].operation is Operation.INSERT
        assert all(r.operation is Operation.UPDATE for r in records[1:])

    def test_delete_produces_x_records(self, tedb, deep):
        records = deep.delete("db/t/r/c")
        assert len(records) == 3  # ancestors only; the leaf is gone
        assert all(r.inherited for r in records)
        assert [r.object_id for r in records] == ["db/t/r", "db/t", "db"]

    def test_inherited_records_carry_subtree_digests(self, tedb, deep):
        from repro.core.merkle import subtree_digest

        records = deep.update("db/t/r/c", 7)
        root_record = records[-1]
        assert root_record.object_id == "db"
        assert root_record.output.digest == subtree_digest(tedb.store, "db")
        assert root_record.output.node_count == 4

    def test_root_insert_has_no_inherited_records(self, tedb, session):
        records = session.insert("solo", 1)
        assert len(records) == 1

    def test_delete_of_root_leaf_produces_nothing(self, tedb, session):
        session.insert("solo", 1)
        records = session.delete("solo")
        assert records == ()


class TestComplexOperations:
    def test_one_record_per_object(self, tedb, deep):
        with deep.complex_operation():
            deep.update("db/t/r/c", 2)
            deep.update("db/t/r/c", 3)
            deep.update("db/t/r/c", 4)
        records = deep.last_records
        assert len(records) == 4  # c + 3 ancestors, once each
        cell_record = records[0]
        assert cell_record.operation is Operation.COMPLEX
        assert cell_record.inputs[0].value == 1  # state at op start
        assert cell_record.output.value == 4     # state at op end

    def test_insert_then_delete_in_op_leaves_no_record(self, tedb, deep):
        with deep.complex_operation():
            deep.insert("db/t/r/tmp", 9, "db/t/r")
            deep.delete("db/t/r/tmp")
        assert all(r.object_id != "db/t/r/tmp" for r in deep.last_records)
        # ancestors still get records (they were touched)
        assert {r.object_id for r in deep.last_records} == {"db/t/r", "db/t", "db"}

    def test_fresh_insert_in_complex_is_insert_record(self, tedb, deep):
        with deep.complex_operation():
            deep.insert("db/t/r2", None, "db/t")
            deep.insert("db/t/r2/c", 1, "db/t/r2")
        by_id = {r.object_id: r for r in deep.last_records}
        assert by_id["db/t/r2"].operation is Operation.INSERT
        assert by_id["db/t/r2"].seq_id == 0
        assert by_id["db/t"].operation is Operation.COMPLEX

    def test_empty_complex_op(self, tedb, session):
        with session.complex_operation():
            pass
        assert session.last_records == ()

    def test_exception_abandons_collection(self, tedb, deep):
        before = len(tedb.provenance_store)
        with pytest.raises(RuntimeError):
            with deep.complex_operation():
                deep.update("db/t/r/c", 100)
                raise RuntimeError("boom")
        assert len(tedb.provenance_store) == before

    def test_setup_b_record_counts_scaled(self, tedb, participants):
        """Paper's Fig 9 accounting at 1/100 scale: 40 updates in 40 rows
        => 40 cells + 40 rows + table + root records."""
        from repro.model.relational import RelationalView
        from repro.workloads.operations import apply_update_sweep
        from repro.workloads.synthetic import populate_session, tables_for

        session = tedb.session(participants["p1"])
        view = populate_session(session, tables_for((1,), scale=0.01))
        before = len(tedb.provenance_store)
        apply_update_sweep(view, "t1", 40, 40)
        assert len(tedb.provenance_store) - before == 40 + 40 + 1 + 1


class TestAggregation:
    def test_record_inputs_in_global_order(self, tedb, session):
        session.insert("b", 2)
        session.insert("a", 1)
        record = session.aggregate(["b", "a"], "agg")
        assert record.input_ids == ("a", "b")

    def test_inputs_remain(self, tedb, session):
        session.insert("a", 1)
        session.aggregate(["a"], "agg")
        assert "a" in tedb.store
        assert tedb.store.value("agg/a") == 1

    def test_aggregate_of_compound_subtrees(self, tedb, deep):
        record = deep.aggregate(["db/t/r"], "extract")
        assert record.inputs[0].node_count == 2  # r + c
        assert tedb.store.value("extract/r/c") == 1

    def test_missing_input_provenance_rejected(self, tedb, session):
        # An object created behind the collector's back has no chain.
        tedb.store.insert("rogue", 1)
        with pytest.raises(MissingProvenanceError):
            session.aggregate(["rogue"], "agg")

    def test_bootstrap_attests_untracked_inputs(self, ca, participants):
        from repro.core.system import TamperEvidentDatabase

        db = TamperEvidentDatabase(ca=ca, bootstrap_missing=True)
        db.store.insert("legacy", 41)
        session = db.session(participants["p1"])
        record = session.aggregate(["legacy"], "agg")
        genesis = db.provenance_store.records_for("legacy")
        assert len(genesis) == 1
        assert genesis[0].seq_id == 0
        assert record.seq_id == 1


class TestStrictMode:
    def test_out_of_band_mutation_detected_with_basic_hashing(self, ca, participants):
        """Basic hashing re-reads the tree, so strict mode catches
        out-of-band mutations at collection time."""
        from repro.core.system import TamperEvidentDatabase

        db = TamperEvidentDatabase(ca=ca, hashing="basic")
        session = db.session(participants["p1"])
        session.insert("x", 1)
        db.store.update("x", 999)  # bypasses the session
        with pytest.raises(ProvenanceError):
            session.update("x", 2)

    def test_out_of_band_mutation_caught_at_verification_with_economical(
        self, tedb, participants
    ):
        """Economical hashing trusts its cache (exclusive-writer
        assumption), so an out-of-band change surfaces at verification —
        the recipient's R4 check — rather than at collection."""
        session = tedb.session(participants["p1"])
        session.insert("x", 1)
        tedb.store.update("x", 999)
        report = tedb.verify("x")
        assert not report.ok
        assert "R4" in report.requirement_codes()

    def test_untracked_update_rejected_without_bootstrap(self, tedb, session):
        tedb.store.insert("rogue", 1)
        with pytest.raises(MissingProvenanceError):
            session.update("rogue", 2)

    def test_bootstrap_mode_attests_then_updates(self, ca, participants):
        from repro.core.system import TamperEvidentDatabase

        db = TamperEvidentDatabase(ca=ca, bootstrap_missing=True)
        db.store.insert("legacy", 41)
        session = db.session(participants["p2"])
        records = session.update("legacy", 42)
        chain = db.provenance_store.records_for("legacy")
        assert [r.seq_id for r in chain] == [0, 1]
        assert chain[0].operation is Operation.INSERT
        # The returned batch includes the synthesised genesis record.
        assert [r.seq_id for r in records] == [0, 1]


class TestReinsertion:
    def test_chain_continues_after_delete(self, tedb, session):
        session.insert("parent", None)
        session.insert("parent/x", 1, "parent")
        session.delete("parent/x")
        records = session.insert("parent/x", 2, "parent")
        record = records[0]
        assert record.operation is Operation.INSERT
        assert record.seq_id > 0  # continues the old chain
        assert tedb.verify("parent").ok

    def test_reinserted_object_verifies(self, tedb, session):
        session.insert("p", None)
        session.insert("p/x", 1, "p")
        session.delete("p/x")
        session.insert("p/x", 2, "p")
        session.update("p/x", 3)
        report = tedb.verify("p/x")
        assert report.ok, report.summary()


class TestRecordMetadata:
    def test_participant_and_scheme_recorded(self, tedb, participants):
        session = tedb.session(participants["p3"])
        (record,) = session.insert("x", 1)
        assert record.participant_id == "p3"
        assert record.scheme == "rsa-pkcs1v15"
        assert record.hash_algorithm == "sha1"

    def test_leaf_values_inlined(self, tedb, session):
        session.insert("x", "hello")
        (record,) = session.update("x", "world")
        assert record.inputs[0].value == "hello"
        assert record.output.value == "world"
        assert record.inputs[0].has_value and record.output.has_value

    def test_carry_values_disabled(self, ca, participants):
        from repro.core.system import TamperEvidentDatabase

        db = TamperEvidentDatabase(ca=ca, carry_values=False)
        session = db.session(participants["p1"])
        (record,) = session.insert("x", "secret")
        assert not record.output.has_value
        assert db.verify("x").ok  # digests alone suffice
