"""Unit tests for the TamperEvidentDatabase façade and sessions."""

import pytest

from repro.core.merkle import BasicHashing, EconomicalHashing
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import ProvenanceError, TransactionError, UnknownObjectError


@pytest.fixture
def session(tedb, participants):
    return tedb.session(participants["p1"])


class TestConstruction:
    def test_defaults(self, tedb):
        assert tedb.hashing.name == "economical"
        assert tedb.hash_algorithm == "sha1"
        assert len(tedb.store) == 0
        assert len(tedb.provenance_store) == 0

    def test_hashing_selection(self, ca):
        assert TamperEvidentDatabase(ca=ca, hashing="basic").hashing.name == "basic"
        strategy = EconomicalHashing("sha256")
        db = TamperEvidentDatabase(ca=ca, hashing=strategy, hash_algorithm="sha256")
        assert db.hashing is strategy

    def test_unknown_hashing_rejected(self, ca):
        with pytest.raises(ProvenanceError):
            TamperEvidentDatabase(ca=ca, hashing="quantum")

    def test_repr(self, tedb):
        assert "economical" in repr(tedb)

    def test_enroll_issues_certificate(self, tedb):
        p = tedb.enroll("newbie")
        assert p.certificate is not None
        assert tedb.ca.verify_certificate(p.certificate)

    def test_keystore_covers_enrolled(self, tedb):
        tedb.enroll("someone")
        assert "someone" in tedb.keystore()


class TestSessionPrimitives:
    def test_insert_update_delete_roundtrip(self, tedb, session):
        session.insert("x", 1)
        session.update("x", 2)
        assert tedb.store.value("x") == 2
        session.insert("x/child", 3, "x")
        session.delete("x/child")
        assert "x/child" not in tedb.store

    def test_store_errors_propagate(self, session):
        with pytest.raises(UnknownObjectError):
            session.update("ghost", 1)
        with pytest.raises(UnknownObjectError):
            session.delete("ghost")

    def test_failed_primitive_collects_nothing(self, tedb, session):
        before = len(tedb.provenance_store)
        with pytest.raises(UnknownObjectError):
            session.insert("orphan", 1, parent="ghost")
        assert len(tedb.provenance_store) == before

    def test_aggregate_in_complex_rejected(self, tedb, session):
        session.insert("a", 1)
        with pytest.raises(TransactionError):
            with session.complex_operation():
                session.aggregate(["a"], "b")

    def test_nested_complex_joins(self, tedb, session):
        session.insert("root", None)
        with session.complex_operation():
            session.insert("root/a", 1, "root")
            with session.complex_operation():
                session.insert("root/b", 2, "root")
        # one complex group: a, b, and one inherited root record
        assert {r.object_id for r in session.last_records} == {
            "root/a",
            "root/b",
            "root",
        }

    def test_two_participants_interleave(self, tedb, participants):
        s1 = tedb.session(participants["p1"])
        s2 = tedb.session(participants["p2"])
        s1.insert("x", 1)
        s2.update("x", 2)
        s1.update("x", 3)
        chain = tedb.provenance_of("x")
        assert [r.participant_id for r in chain] == ["p1", "p2", "p1"]
        assert tedb.verify("x").ok


class TestProvenanceReads:
    def test_provenance_of_returns_own_chain(self, fig2_world):
        chain = fig2_world.provenance_of("A")
        assert [r.seq_id for r in chain] == [0, 1, 2]

    def test_provenance_object_is_closure(self, fig2_world):
        closure = fig2_world.provenance_object("D")
        objects = {r.object_id for r in closure}
        assert objects == {"A", "B", "C", "D"}

    def test_ship_and_verify(self, fig2_world):
        report = fig2_world.verify("D")
        assert report.ok, report.summary()

    def test_verify_unknown_object(self, tedb):
        from repro.exceptions import ShipmentError

        with pytest.raises(ShipmentError):
            tedb.verify("ghost")


class TestBasicHashingEndToEnd:
    """The whole pipeline must also work under the Basic strategy."""

    def test_full_flow(self, ca, participants):
        db = TamperEvidentDatabase(ca=ca, hashing="basic")
        s = db.session(participants["p1"])
        s.insert("db", None)
        s.insert("db/t", None, "db")
        with s.complex_operation():
            s.insert("db/t/r", None, "db/t")
            s.insert("db/t/r/c", 5, "db/t/r")
        s.update("db/t/r/c", 6)
        s.aggregate(["db/t/r"], "extract")
        assert db.verify("db").ok
        assert db.verify("extract").ok

    def test_basic_and_economical_agree_on_digests(self, ca, participants):
        results = []
        for hashing in ("basic", "economical"):
            db = TamperEvidentDatabase(ca=ca, hashing=hashing)
            s = db.session(participants["p1"])
            s.insert("r", None)
            s.insert("r/a", 1, "r")
            s.update("r/a", 2)
            results.append(db.provenance_store.latest("r").output.digest)
        assert results[0] == results[1]


class TestSessionAsExecutor:
    def test_relational_view_over_session(self, tedb, session):
        from repro.model.relational import RelationalView

        view = RelationalView(session)
        view.create_table("patients", ["age", "weight"])
        key = view.insert_row("patients", {"age": 52, "weight": 80})
        view.update_cell("patients", key, "age", 53)
        # Full fine-grained provenance: cell, row, table, root all tracked.
        assert tedb.provenance_of(view.cell_id("patients", key, "age"))
        assert tedb.provenance_of(view.row_id("patients", key))
        assert tedb.provenance_of(view.table_id("patients"))
        assert tedb.provenance_of("db")
        assert tedb.verify("db").ok
