"""Anchoring tests: the tail-truncation boundary, closed.

Without anchors, colluders owning a chain's tail can truncate history
undetectably (pinned in ``test_collusion.py``).  With one anchored
checksum past the victim record, the same attack must be detected.
"""

import dataclasses

import pytest

from repro.attacks import collusion
from repro.attacks.scenarios import build_world
from repro.core.anchor import AnchorReceipt, AnchorService, verify_with_anchors
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import RSASignatureScheme
from repro.exceptions import VerificationError


@pytest.fixture(scope="module")
def anchored_world():
    import random

    world = build_world()
    keypair = generate_keypair(512, rng=random.Random(0xA11C))
    service = AnchorService(RSASignatureScheme(keypair.private))
    # The recipient (e.g. a regulator) had the terminal state anchored
    # while the history was still honest.
    service.anchor_latest(world.db, "x")
    return world, service


def keystore(world):
    store = world.db.keystore()
    return store


class TestAnchorService:
    def test_receipts_accumulate(self, anchored_world):
        world, service = anchored_world
        receipts = service.receipts_for("x")
        assert len(receipts) >= 1
        assert receipts[0].seq_id == 4  # the honest terminal record
        assert receipts[0].counter >= 1

    def test_receipt_roundtrip(self, anchored_world):
        _, service = anchored_world
        receipt = service.receipts_for("x")[0]
        assert AnchorReceipt.from_dict(receipt.to_dict()) == receipt

    def test_malformed_receipt_rejected(self):
        with pytest.raises(VerificationError):
            AnchorReceipt.from_dict({"object_id": "x"})

    def test_anchor_unknown_object_rejected(self, anchored_world):
        world, service = anchored_world
        with pytest.raises(VerificationError):
            service.anchor_latest(world.db, "ghost")


class TestAnchoredVerification:
    def test_honest_shipment_passes(self, anchored_world):
        world, service = anchored_world
        report = verify_with_anchors(
            world.shipment,
            keystore(world),
            service.receipts_for("x"),
            service.verifier(),
        )
        assert report.ok, report.summary()

    def test_tail_rewrite_now_detected(self, anchored_world):
        """The documented boundary case, closed by one anchor."""
        world, service = anchored_world
        forged = collusion.tail_rewrite(world.shipment, "x", 3, world.eve)
        # Plain verification still cannot see it...
        assert forged.verify(keystore(world)).ok
        # ...but the anchored terminal record is gone from the chain.
        report = verify_with_anchors(
            forged, keystore(world), service.receipts_for("x"), service.verifier()
        )
        assert not report.ok
        assert "R7" in report.requirement_codes()

    def test_rewrite_at_anchored_seq_detected(self, anchored_world):
        """Forging a *different* record at the anchored seq is caught by
        the checksum mismatch."""
        world, service = anchored_world
        receipt = service.receipts_for("x")[0]
        victim = next(
            r for r in world.shipment.records if r.key == ("x", receipt.seq_id)
        )
        forged_record = victim.with_checksum(b"\x01" * len(victim.checksum))
        records = tuple(
            forged_record if r.key == victim.key else r
            for r in world.shipment.records
        )
        forged = dataclasses.replace(world.shipment, records=records)
        report = verify_with_anchors(
            forged, keystore(world), service.receipts_for("x"), service.verifier()
        )
        assert not report.ok
        assert "R7" in report.requirement_codes()

    def test_fabricated_receipt_rejected(self, anchored_world):
        """An attacker cannot invent anchors: the service signature fails."""
        world, service = anchored_world
        genuine = service.receipts_for("x")[0]
        fake = dataclasses.replace(genuine, seq_id=99)
        report = verify_with_anchors(
            world.shipment, keystore(world), [fake], service.verifier()
        )
        assert not report.ok
        assert any(f.requirement == "ANCHOR" for f in report.failures)

    def test_receipts_for_other_objects_ignored(self, anchored_world):
        world, service = anchored_world
        service.anchor_latest(world.db, "y")
        report = verify_with_anchors(
            world.shipment,
            keystore(world),
            service.receipts_for("y"),  # y is not in x's shipment
            service.verifier(),
        )
        assert report.ok

    def test_underlying_tampering_still_reported(self, anchored_world):
        from repro.attacks import tampering

        world, service = anchored_world
        forged = tampering.remove_record(world.shipment, "x", 2)
        report = verify_with_anchors(
            forged, keystore(world), service.receipts_for("x"), service.verifier()
        )
        assert not report.ok
        assert "R2" in report.requirement_codes()
