"""Concurrency tests: parallel chain construction under local chaining.

§3.2: "the participants can construct provenance chains (and checksums)
for the two objects in parallel".  These tests hammer a shared database
from multiple threads and require every resulting chain to verify.
"""

import threading

import pytest

from repro.core.concurrent import ConcurrentSession, TreeLockManager, concurrent_sessions
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import TransactionError

THREADS = 4
OPS_PER_THREAD = 15


@pytest.fixture
def world(ca, participants):
    db = TamperEvidentDatabase(ca=ca)
    sessions = concurrent_sessions(db, list(participants.values()) * 2)
    return db, sessions[:THREADS]


def run_threads(workers):
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        return wrapped

    threads = [threading.Thread(target=guard(w)) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestParallelChains:
    def test_disjoint_objects_in_parallel(self, world):
        db, sessions = world

        def worker(index):
            session = sessions[index]

            def work():
                session.insert(f"obj{index}", 0)
                for i in range(OPS_PER_THREAD):
                    session.update(f"obj{index}", i)

            return work

        run_threads([worker(i) for i in range(THREADS)])
        for i in range(THREADS):
            report = db.verify(f"obj{i}")
            assert report.ok, report.summary()
            assert len(db.provenance_of(f"obj{i}")) == OPS_PER_THREAD + 1

    def test_contended_single_object(self, world):
        db, sessions = world
        sessions[0].insert("shared", -1)

        def worker(index):
            session = sessions[index]

            def work():
                for i in range(OPS_PER_THREAD):
                    session.update("shared", index * 1000 + i)

            return work

        run_threads([worker(i) for i in range(THREADS)])
        chain = db.provenance_of("shared")
        assert len(chain) == THREADS * OPS_PER_THREAD + 1
        assert [r.seq_id for r in chain] == list(range(len(chain)))
        assert db.verify("shared").ok

    def test_parallel_subtree_growth(self, world):
        db, sessions = world
        sessions[0].insert("tree0", None)
        sessions[1].insert("tree1", None)

        def worker(index):
            session = sessions[index]
            tree = f"tree{index % 2}"

            def work():
                for i in range(OPS_PER_THREAD):
                    session.insert(f"{tree}/t{index}_{i}", i, tree)

            return work

        run_threads([worker(i) for i in range(THREADS)])
        for tree in ("tree0", "tree1"):
            report = db.verify(tree)
            assert report.ok, report.summary()
            expected = 2 * OPS_PER_THREAD
            assert db.store.subtree_size(tree) == expected + 1

    def test_parallel_aggregations(self, world):
        db, sessions = world
        for i in range(THREADS):
            sessions[0].insert(f"src{i}", i)

        def worker(index):
            session = sessions[index]

            def work():
                session.aggregate([f"src{index}"], f"derived{index}")

            return work

        run_threads([worker(i) for i in range(THREADS)])
        for i in range(THREADS):
            assert db.verify(f"derived{i}").ok

    def test_mixed_root_creation(self, world):
        db, sessions = world

        def worker(index):
            session = sessions[index]

            def work():
                for i in range(OPS_PER_THREAD):
                    session.insert(f"root_{index}_{i}", i)

            return work

        run_threads([worker(i) for i in range(THREADS)])
        assert len(db.store.roots()) == THREADS * OPS_PER_THREAD


class TestComplexOperations:
    def test_declared_roots(self, world):
        db, sessions = world
        sessions[0].insert("t", None)
        with sessions[0].complex_operation(roots=["t"]) as s:
            s.insert("t/a", 1, "t")
            s.insert("t/b", 2, "t")
        assert db.verify("t").ok

    def test_undeclared_root_rejected(self, world):
        db, sessions = world
        sessions[0].insert("t", None)
        sessions[0].insert("u", None)
        with pytest.raises(TransactionError):
            with sessions[0].complex_operation(roots=["t"]) as s:
                s.insert("u/c", 1, "u")  # touches undeclared tree 'u'

    def test_parallel_complex_ops_on_distinct_trees(self, world):
        db, sessions = world
        for i in range(THREADS):
            sessions[0].insert(f"ct{i}", None)

        def worker(index):
            session = sessions[index]

            def work():
                with session.complex_operation(roots=[f"ct{index}"]) as s:
                    for i in range(5):
                        s.insert(f"ct{index}/n{i}", i, f"ct{index}")

            return work

        run_threads([worker(i) for i in range(THREADS)])
        for i in range(THREADS):
            assert db.verify(f"ct{i}").ok


class TestLockManager:
    def test_same_lock_for_same_root(self):
        locks = TreeLockManager()
        assert locks.lock_for("a") is locks.lock_for("a")
        assert locks.lock_for("a") is not locks.lock_for("b")

    def test_holding_orders_and_releases(self):
        locks = TreeLockManager()
        with locks.holding(["b", "a"]):
            assert locks.lock_for("a").locked()
            assert locks.lock_for("b").locked()
        assert not locks.lock_for("a").locked()
        assert not locks.lock_for("b").locked()

    def test_reentrant_structural(self):
        locks = TreeLockManager()
        with locks.holding([], structural=True):
            with locks.structural:  # RLock: no deadlock
                pass
