"""Unit and property tests for compound (Merkle) hashing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.engine import DatabaseEngine
from repro.core.merkle import (
    BasicHashing,
    EconomicalHashing,
    StreamingDatabaseHasher,
    subtree_digest,
    tree_digests,
)
from repro.exceptions import ProvenanceError
from repro.model.tree import Forest


@pytest.fixture
def fig4_forest():
    """The paper's Fig 4 compound object: A -> {B -> {D}, C}."""
    f = Forest()
    f.insert("A", "a")
    f.insert("B", "b", parent="A")
    f.insert("C", "c", parent="A")
    f.insert("D", "d", parent="B")
    return f


class TestSubtreeDigest:
    def test_deterministic(self, fig4_forest):
        assert subtree_digest(fig4_forest, "A") == subtree_digest(fig4_forest, "A")

    def test_value_change_changes_root(self, fig4_forest):
        before = subtree_digest(fig4_forest, "A")
        fig4_forest.update("D", "d'")
        assert subtree_digest(fig4_forest, "A") != before

    def test_structure_change_changes_root(self, fig4_forest):
        before = subtree_digest(fig4_forest, "A")
        fig4_forest.insert("E", "e", parent="C")
        assert subtree_digest(fig4_forest, "A") != before

    def test_sibling_subtree_unaffected(self, fig4_forest):
        before_c = subtree_digest(fig4_forest, "C")
        fig4_forest.update("D", "d'")
        assert subtree_digest(fig4_forest, "C") == before_c

    def test_reuse_property(self, fig4_forest):
        """Fig 5: h_A is computable from h_B and h_C (reuse across records)."""
        digests = tree_digests(fig4_forest, "A")
        assert digests["B"] == subtree_digest(fig4_forest, "B")
        assert digests["D"] == subtree_digest(fig4_forest, "D")

    def test_position_independence(self, fig4_forest):
        """A subtree hashes identically wherever it sits (aggregation reuse)."""
        other = Forest()
        other.insert("X", None)
        other.insert("B", "b", parent="X")  # same ids/values, new parent
        other.insert("D", "d", parent="B")
        assert subtree_digest(other, "B") == subtree_digest(fig4_forest, "B")

    def test_algorithm_parameter(self, fig4_forest):
        sha1 = subtree_digest(fig4_forest, "A", "sha1")
        sha256 = subtree_digest(fig4_forest, "A", "sha256")
        assert len(sha1) == 20 and len(sha256) == 32

    def test_deep_tree_no_recursion_limit(self):
        forest = Forest()
        forest.insert("n0", 0)
        for i in range(1, 5000):
            forest.insert(f"n{i}", i, parent=f"n{i - 1}")
        digest = subtree_digest(forest, "n0")
        assert len(digest) == 20


def _apply_ops(forest, engine, ops):
    """Apply (kind, ...) op tuples; returns captured events."""
    events = []
    for op in ops:
        if op[0] == "insert":
            events.append(engine.insert(op[1], op[2], op[3]))
        elif op[0] == "update":
            events.append(engine.update(op[1], op[2]))
        else:
            events.append(engine.delete(op[1]))
    return events


class TestStrategyEquivalence:
    """Basic and Economical must produce identical digests (§4.3)."""

    def run_both(self, ops_rounds):
        results = []
        for strategy in (BasicHashing(), EconomicalHashing()):
            forest = Forest()
            forest.insert("root", None)
            forest.insert("root/a", 1, "root")
            forest.insert("root/b", 2, "root")
            engine = DatabaseEngine(forest)
            digests = []
            for ops in ops_rounds:
                ctx = strategy.begin(forest)
                ctx.ensure_tree("root")
                events = _apply_ops(forest, engine, ops)
                ctx.commit(events)
                digests.append(ctx.after_digest("root"))
            results.append(digests)
        return results

    def test_update_rounds(self):
        basic, econ = self.run_both(
            [
                [("update", "root/a", 10)],
                [("update", "root/b", 20), ("update", "root/a", 11)],
            ]
        )
        assert basic == econ

    def test_insert_and_delete(self):
        basic, econ = self.run_both(
            [
                [("insert", "root/c", 3, "root")],
                [("delete", "root/c")],
                [("insert", "root/c", 4, "root"), ("update", "root/a", 5)],
            ]
        )
        assert basic == econ

    def test_delete_then_reinsert_same_op(self):
        basic, econ = self.run_both(
            [[("delete", "root/a"), ("insert", "root/a", 99, "root")]]
        )
        assert basic == econ

    def test_economical_hashes_fewer_nodes(self):
        forest = Forest()
        forest.insert("root", None)
        for i in range(100):
            forest.insert(f"root/n{i}", i, "root")
        engine = DatabaseEngine(forest)

        econ = EconomicalHashing()
        ctx = econ.begin(forest)
        ctx.ensure_tree("root")
        primed = econ.nodes_hashed
        assert primed == 101
        events = [engine.update("root/n5", -5)]
        ctx.commit(events)
        # one changed leaf + the root path
        assert econ.nodes_hashed - primed == 2

        basic = BasicHashing()
        ctx2 = basic.begin(forest)
        ctx2.ensure_tree("root")
        events = [engine.update("root/n6", -6)]
        before = basic.nodes_hashed
        ctx2.commit(events)
        assert basic.nodes_hashed - before == 101  # full rehash

    def test_before_and_after_views(self):
        forest = Forest()
        forest.insert("r", None)
        forest.insert("r/x", 1, "r")
        engine = DatabaseEngine(forest)
        for strategy in (BasicHashing(), EconomicalHashing()):
            ctx = strategy.begin(forest if strategy.name == "basic" else forest)
            ctx.ensure_tree("r")
            before_root = ctx.before_digest("r")
            events = [engine.update("r/x", 2)]
            ctx.commit(events)
            assert ctx.before_digest("r") == before_root
            assert ctx.after_digest("r") != before_root
            assert ctx.before_size("r") == 2
            assert ctx.after_size("r") == 2
            # restore for the second strategy
            engine.update("r/x", 1)
            if strategy.name == "economical":
                break

    def test_after_before_commit_rejected(self):
        forest = Forest()
        forest.insert("r", 1)
        for strategy in (BasicHashing(), EconomicalHashing()):
            ctx = strategy.begin(forest)
            ctx.ensure_tree("r")
            with pytest.raises(ProvenanceError):
                ctx.after_digest("r")

    def test_new_object_has_no_before(self):
        forest = Forest()
        engine = DatabaseEngine(forest)
        for strategy in (BasicHashing(), EconomicalHashing()):
            ctx = strategy.begin(forest)
            if "fresh" in forest:
                engine.delete("fresh")
            events = [engine.insert("fresh", 1, None)]
            ctx.commit(events)
            assert ctx.before_digest("fresh") is None
            assert ctx.before_size("fresh") == 0
            assert len(ctx.after_digest("fresh")) == 20

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**30), min_size=1, max_size=25))
    def test_random_sequences_agree(self, seeds):
        """Property: both strategies agree on every root digest after any
        random primitive sequence, applied in random operation groupings."""
        final_digests = []
        for strategy in (BasicHashing(), EconomicalHashing()):
            rng = random.Random(99)
            forest = Forest()
            forest.insert("root", None)
            engine = DatabaseEngine(forest)
            alive = ["root"]
            serial = 0
            pending = []
            for seed in seeds:
                kind = seed % 3
                if kind == 0 or len(alive) < 2:
                    parent = rng.choice(alive)
                    new_id = f"{parent}/n{serial}"
                    serial += 1
                    pending.append(("insert", new_id, seed, parent))
                    alive.append(new_id)
                elif kind == 1:
                    pending.append(("update", rng.choice(alive), seed))
                else:
                    leaves = [
                        x
                        for x in alive
                        if x != "root" and x in forest and forest.is_leaf(x)
                    ]
                    # exclude ids that pending inserts will parent under
                    parents_of_pending = {o[3] for o in pending if o[0] == "insert"}
                    leaves = [x for x in leaves if x not in parents_of_pending]
                    if leaves:
                        victim = rng.choice(leaves)
                        # flush pending ops first so deletes stay leaf-valid
                        ctx = strategy.begin(forest)
                        ctx.ensure_tree("root")
                        events = _apply_ops(forest, engine, pending)
                        pending = []
                        events.append(engine.delete(victim))
                        alive.remove(victim)
                        ctx.commit(events)
            if pending:
                ctx = strategy.begin(forest)
                ctx.ensure_tree("root")
                events = _apply_ops(forest, engine, pending)
                ctx.commit(events)
            final_digests.append(subtree_digest(forest, "root"))
        assert final_digests[0] == final_digests[1]


class TestCurrentStateQueries:
    def test_current_digest_matches_subtree_digest(self, fig4_forest):
        for strategy in (BasicHashing(), EconomicalHashing()):
            assert strategy.current_digest(fig4_forest, "A") == subtree_digest(
                fig4_forest, "A"
            )

    def test_current_size(self, fig4_forest):
        for strategy in (BasicHashing(), EconomicalHashing()):
            assert strategy.current_size(fig4_forest, "A") == 4
            assert strategy.current_size(fig4_forest, "C") == 1

    def test_economical_current_uses_cache(self, fig4_forest):
        strategy = EconomicalHashing()
        strategy.current_digest(fig4_forest, "A")
        primed = strategy.nodes_hashed
        strategy.current_digest(fig4_forest, "A")  # cached: no rehash
        assert strategy.nodes_hashed == primed

    def test_unknown_object(self, fig4_forest):
        from repro.exceptions import UnknownObjectError

        strategy = EconomicalHashing()
        with pytest.raises(UnknownObjectError):
            strategy.current_digest(fig4_forest, "ghost")
        with pytest.raises(UnknownObjectError):
            strategy.current_size(fig4_forest, "ghost")


class TestStreamingHasher:
    def test_matches_materialised(self):
        from repro.workloads.synthetic import title_table_rows

        rows = 50
        forest = Forest()
        forest.insert("bigdb", None)
        forest.insert("bigdb/title", "doc_id,title", "bigdb")
        for row_id, row_value, cells in title_table_rows(rows):
            forest.insert(row_id, row_value, "bigdb/title")
            for cell_id, value in cells:
                forest.insert(cell_id, value, row_id)

        hasher = StreamingDatabaseHasher()
        streamed = hasher.hash_database(
            "bigdb", None, [("bigdb/title", "doc_id,title", title_table_rows(rows))]
        )
        assert streamed == subtree_digest(forest, "bigdb")
        assert hasher.nodes_hashed == len(forest)

    def test_multi_table_database(self):
        def rows_for(table_id, n):
            for i in range(n):
                row_id = f"{table_id}/r{i}"
                yield row_id, None, [(f"{row_id}/v", i)]

        hasher = StreamingDatabaseHasher()
        digest = hasher.hash_database(
            "db",
            None,
            [("db/t1", "v", rows_for("db/t1", 3)), ("db/t2", "v", rows_for("db/t2", 2))],
        )
        forest = Forest()
        forest.insert("db", None)
        for table, n in (("db/t1", 3), ("db/t2", 2)):
            forest.insert(table, "v", "db")
            for row_id, row_value, cells in rows_for(table, n):
                forest.insert(row_id, row_value, table)
                for cell_id, value in cells:
                    forest.insert(cell_id, value, row_id)
        assert digest == subtree_digest(forest, "db")

    def test_row_order_matters(self):
        hasher = StreamingDatabaseHasher()
        rows_fwd = [("t/r0", None, [("t/r0/v", 0)]), ("t/r1", None, [("t/r1/v", 1)])]
        rows_rev = list(reversed(rows_fwd))
        a = hasher.hash_table("t", None, rows_fwd)
        b = hasher.hash_table("t", None, rows_rev)
        assert a != b  # caller must supply global order
