"""Unit tests for selective disclosure (value redaction)."""

import pytest

from repro.core.redaction import (
    redact_object_values,
    redact_participant_values,
    redact_values,
)
from repro.exceptions import ShipmentError


@pytest.fixture
def world(tedb, participants):
    s1 = tedb.session(participants["p1"])
    s2 = tedb.session(participants["p2"])
    s1.insert("salary", 120_000)
    s2.update("salary", 130_000)
    s1.insert("grade", "A")
    s2.aggregate(["salary", "grade"], "packet")
    return tedb, tedb.ship("packet")


class TestRedaction:
    def test_redacted_shipment_still_verifies(self, world):
        tedb, shipment = world
        redacted = redact_object_values(shipment, "salary")
        report = redacted.verify(tedb.keystore())
        assert report.ok, report.summary()

    def test_values_actually_removed(self, world):
        _, shipment = world
        redacted = redact_object_values(shipment, "salary")
        for record in redacted.records:
            for state in (*record.inputs, record.output):
                if state.object_id == "salary":
                    assert not state.has_value
                    assert state.value is None

    def test_digests_untouched(self, world):
        _, shipment = world
        redacted = redact_object_values(shipment, "salary")
        originals = {r.key: r for r in shipment.records}
        for record in redacted.records:
            assert record.checksum == originals[record.key].checksum
            assert record.output.digest == originals[record.key].output.digest

    def test_unmatched_records_identical(self, world):
        _, shipment = world
        redacted = redact_object_values(shipment, "salary")
        for original, copy in zip(shipment.records, redacted.records):
            if all(
                s.object_id != "salary" for s in (*original.inputs, original.output)
            ):
                assert original == copy

    def test_by_participant(self, world):
        tedb, shipment = world
        redacted = redact_participant_values(shipment, "p1")
        assert redacted.verify(tedb.keystore()).ok
        for record in redacted.records:
            if record.participant_id == "p1":
                assert not record.output.has_value

    def test_roundtrips_through_json(self, world):
        from repro.core.shipment import Shipment

        tedb, shipment = world
        redacted = redact_object_values(shipment, "salary")
        restored = Shipment.from_json(redacted.to_json())
        assert restored.verify(tedb.keystore()).ok

    def test_cannot_redact_delivered_value(self, tedb, participants):
        s = tedb.session(participants["p1"])
        s.insert("doc", "contents")
        shipment = tedb.ship("doc")
        with pytest.raises(ShipmentError):
            redact_object_values(shipment, "doc")

    def test_snapshot_never_touched(self, world):
        _, shipment = world
        redacted = redact_object_values(shipment, "salary")
        assert redacted.snapshot == shipment.snapshot

    def test_tampering_after_redaction_still_detected(self, world):
        import dataclasses

        tedb, shipment = world
        redacted = redact_object_values(shipment, "salary")
        victim = redacted.records[0]
        forged = dataclasses.replace(
            victim,
            output=dataclasses.replace(victim.output, digest=b"\x00" * 20),
        )
        records = tuple(
            forged if r.key == victim.key else r for r in redacted.records
        )
        broken = dataclasses.replace(redacted, records=records)
        assert not broken.verify(tedb.keystore()).ok

    def test_custom_predicate(self, world):
        tedb, shipment = world
        # Withhold only input-side values, keep outputs.
        redacted = redact_values(
            shipment,
            lambda record, state: state in record.inputs,
        )
        assert redacted.verify(tedb.keystore()).ok
        for record in redacted.records:
            assert all(not s.has_value for s in record.inputs)
