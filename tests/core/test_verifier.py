"""Unit tests for the data-recipient verification procedure (§3)."""

import dataclasses

import pytest

from repro.core.shipment import Shipment
from repro.core.verifier import VerificationFailure, Verifier
from repro.provenance.snapshot import SubtreeSnapshot


@pytest.fixture
def world(fig2_world, keystore):
    return fig2_world, Verifier(keystore)


class TestCleanVerification:
    def test_every_object_verifies(self, world):
        db, verifier = world
        for object_id in ("A", "B", "C", "D"):
            shipment = db.ship(object_id)
            report = verifier.verify(
                shipment.snapshot, shipment.records, shipment.target_id
            )
            assert report.ok, f"{object_id}: {report.summary()}"

    def test_report_counts(self, world):
        db, verifier = world
        shipment = db.ship("D")
        report = verifier.verify(shipment.snapshot, shipment.records, "D")
        assert report.records_checked == len(shipment.records)
        assert report.objects_checked == 4
        assert report.target_id == "D"
        assert "VERIFIED" in report.summary()

    def test_verify_records_only(self, world):
        db, verifier = world
        assert verifier.verify_records(db.provenance_of("A")).ok


class TestFailureModes:
    def _verify(self, world, shipment):
        _, verifier = world
        return verifier.verify(shipment.snapshot, shipment.records, shipment.target_id)

    def test_empty_records(self, world):
        db, verifier = world
        shipment = db.ship("A")
        report = verifier.verify(shipment.snapshot, (), "A")
        assert not report.ok
        assert "R4" in report.requirement_codes()

    def test_wrong_snapshot_object(self, world):
        db, _ = world
        shipment = db.ship("A")
        other = db.ship("B")
        forged = dataclasses.replace(shipment, snapshot=other.snapshot)
        report = self._verify(world, forged)
        assert "R5" in report.requirement_codes()

    def test_stale_snapshot(self, world, participants):
        db, _ = world
        shipment = db.ship("A")
        db.session(participants["p2"]).update("A", "a4")
        # Old snapshot with NEW records: data no longer matches terminal.
        stale = dataclasses.replace(shipment, records=tuple(db.provenance_of("A")))
        report = self._verify(world, stale)
        assert "R4" in report.requirement_codes()

    def test_truncated_chain_start(self, world):
        db, _ = world
        shipment = db.ship("A")
        forged = dataclasses.replace(shipment, records=shipment.records[1:])
        report = self._verify(world, forged)
        assert "R2" in report.requirement_codes()

    def test_duplicate_seq(self, world):
        db, _ = world
        shipment = db.ship("A")
        forged = dataclasses.replace(
            shipment, records=shipment.records + (shipment.records[-1],)
        )
        report = self._verify(world, forged)
        assert "R3" in report.requirement_codes()

    def test_unknown_participant(self, world, ca):
        db, _ = world
        shipment = db.ship("A")
        victim = shipment.records[0]
        forged_record = dataclasses.replace(victim, participant_id="stranger")
        records = tuple(
            forged_record if r.key == victim.key else r for r in shipment.records
        )
        forged = dataclasses.replace(shipment, records=records)
        report = self._verify(world, forged)
        assert "PKI" in report.requirement_codes()

    def test_aggregate_missing_input_chain(self, world):
        db, _ = world
        shipment = db.ship("D")
        # Drop B's entire chain: D's ancestry is no longer verifiable.
        records = tuple(r for r in shipment.records if r.object_id != "B")
        forged = dataclasses.replace(shipment, records=records)
        report = self._verify(world, forged)
        assert not report.ok
        assert "R2" in report.requirement_codes()

    def test_aggregate_input_state_mismatch(self, world):
        db, _ = world
        shipment = db.ship("C")
        agg = next(r for r in shipment.records if r.object_id == "C")
        forged_input = dataclasses.replace(agg.inputs[0], digest=b"\x00" * 20)
        forged_agg = dataclasses.replace(
            agg, inputs=(forged_input,) + agg.inputs[1:]
        )
        records = tuple(
            forged_agg if r.key == agg.key else r for r in shipment.records
        )
        report = self._verify(world, dataclasses.replace(shipment, records=records))
        assert "R1" in report.requirement_codes()

    def test_ambiguous_digest_identical_predecessors(self, world, participants):
        """Regression: an aggregation input later updated back to an
        identical value (seq still below the aggregate's) creates two
        digest-identical candidate predecessors; the verifier must accept
        the combination the signer actually used."""
        db, verifier = world
        s = db.session(participants["p1"])
        s.insert("base", 7)
        s.insert("extra", 1)
        s.update("extra", 2)  # pushes the aggregate's seq above base's updates
        s.aggregate(["base", "extra"], "combo")
        s.update("base", 7)  # same value again: digest-identical state at seq 1
        shipment = db.ship("combo")
        report = verifier.verify(shipment.snapshot, shipment.records, "combo")
        assert report.ok, report.summary()

    def test_heavily_ambiguous_predecessors_still_verify(self, world, participants):
        """Stress the bounded ambiguity search: two aggregation inputs
        each accumulate many digest-identical states after the
        aggregation.  The all-oldest fast path must find the signer's
        combination without walking the whole cartesian product."""
        db, verifier = world
        s = db.session(participants["p2"])
        s.insert("left", 1)
        s.insert("right", 2)
        s.insert("bump", 0)
        for i in range(12):  # push the future aggregate's seq high
            s.update("bump", i)
        s.aggregate(["bump", "left", "right"], "fusion")
        for _ in range(9):  # 9 digest-identical states per input, seq < 13
            s.update("left", 1)
            s.update("right", 2)
        shipment = db.ship("fusion")
        report = verifier.verify(shipment.snapshot, shipment.records, "fusion")
        assert report.ok, report.summary()

    def test_multiple_failures_all_reported(self, world):
        db, _ = world
        shipment = db.ship("D")
        records = tuple(
            r for r in shipment.records if r.key not in (("A", 1), ("B", 0))
        )
        report = self._verify(world, dataclasses.replace(shipment, records=records))
        assert len(report.failures) >= 2


class TestFailureRendering:
    def test_failure_str(self):
        failure = VerificationFailure("R1", "x", "bad signature", seq_id=3)
        assert str(failure) == "[R1] x#3: bad signature"

    def test_summary_truncates(self, world):
        db, verifier = world
        shipment = db.ship("D")
        report = verifier.verify(shipment.snapshot, (), "D")
        assert "TAMPERING DETECTED" in report.summary()
