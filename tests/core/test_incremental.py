"""Unit tests for incremental (checkpoint-based) verification."""

import dataclasses

import pytest

from repro.core.incremental import Checkpoint, verify_extension
from repro.core.verifier import Verifier
from repro.exceptions import VerificationError
from repro.provenance.snapshot import SubtreeSnapshot


@pytest.fixture
def world(tedb, participants, keystore):
    session = tedb.session(participants["p1"])
    session.insert("feed", 1)
    session.update("feed", 2)
    verifier = Verifier(keystore)
    shipment = tedb.ship("feed")
    assert verifier.verify(shipment.snapshot, shipment.records, "feed").ok
    checkpoint = Checkpoint.from_records("feed", shipment.records)
    return tedb, session, verifier, checkpoint


class TestCheckpoint:
    def test_from_records(self, world):
        _, _, _, checkpoint = world
        assert checkpoint.object_id == "feed"
        assert checkpoint.seq_id == 1

    def test_no_records_rejected(self, world):
        with pytest.raises(VerificationError):
            Checkpoint.from_records("ghost", ())

    def test_json_roundtrip(self, world):
        _, _, _, checkpoint = world
        assert Checkpoint.from_json(checkpoint.to_json()) == checkpoint

    def test_malformed_json_rejected(self):
        with pytest.raises(VerificationError):
            Checkpoint.from_json("{}")
        with pytest.raises(VerificationError):
            Checkpoint.from_json("not json")


class TestVerifyExtension:
    def _delivery(self, db, checkpoint):
        records = [
            r for r in db.provenance_of("feed") if r.seq_id > checkpoint.seq_id
        ]
        snapshot = SubtreeSnapshot.capture(db.store, "feed")
        return snapshot, records

    def test_clean_extension(self, world, participants):
        db, session, verifier, checkpoint = world
        session.update("feed", 3)
        db.session(participants["p2"]).update("feed", 4)
        snapshot, records = self._delivery(db, checkpoint)
        report = verify_extension(verifier, checkpoint, snapshot, records)
        assert report.ok, report.summary()
        assert report.records_checked == 2

    def test_empty_extension_checks_data(self, world):
        db, _, verifier, checkpoint = world
        snapshot, records = self._delivery(db, checkpoint)
        assert records == []
        report = verify_extension(verifier, checkpoint, snapshot, records)
        assert report.ok

    def test_full_chain_reshipped_is_fine(self, world):
        db, session, verifier, checkpoint = world
        session.update("feed", 3)
        snapshot = SubtreeSnapshot.capture(db.store, "feed")
        all_records = db.provenance_of("feed")  # includes verified prefix
        report = verify_extension(verifier, checkpoint, snapshot, all_records)
        assert report.ok
        assert report.records_checked == 1  # only the new record

    def test_first_new_record_must_chain_to_checkpoint(self, world):
        db, session, verifier, checkpoint = world
        session.update("feed", 3)
        snapshot, records = self._delivery(db, checkpoint)
        forged_input = dataclasses.replace(records[0].inputs[0], digest=b"\x00" * 20)
        records[0] = dataclasses.replace(records[0], inputs=(forged_input,))
        report = verify_extension(verifier, checkpoint, snapshot, records)
        assert not report.ok
        assert "R1" in report.requirement_codes()

    def test_missing_record_detected(self, world, participants):
        db, session, verifier, checkpoint = world
        session.update("feed", 3)
        session.update("feed", 4)
        snapshot, records = self._delivery(db, checkpoint)
        report = verify_extension(verifier, checkpoint, snapshot, records[1:])
        assert not report.ok
        assert "R2" in report.requirement_codes()

    def test_forged_signature_detected(self, world):
        db, session, verifier, checkpoint = world
        session.update("feed", 3)
        snapshot, records = self._delivery(db, checkpoint)
        records[0] = records[0].with_checksum(b"\x00" * len(records[0].checksum))
        report = verify_extension(verifier, checkpoint, snapshot, records)
        assert not report.ok
        assert "R1" in report.requirement_codes()

    def test_stale_data_detected(self, world):
        db, session, verifier, checkpoint = world
        snapshot = SubtreeSnapshot.capture(db.store, "feed")  # state at seq 1
        session.update("feed", 3)
        records = [r for r in db.provenance_of("feed") if r.seq_id > checkpoint.seq_id]
        report = verify_extension(verifier, checkpoint, snapshot, records)
        assert not report.ok
        assert "R4" in report.requirement_codes()

    def test_wrong_object_detected(self, world, participants):
        db, session, verifier, checkpoint = world
        db.session(participants["p2"]).insert("other", 9)
        snapshot = SubtreeSnapshot.capture(db.store, "other")
        report = verify_extension(verifier, checkpoint, snapshot, [])
        assert not report.ok
        assert "R5" in report.requirement_codes()

    def test_aggregation_forces_full_verification(self, world, participants):
        db, session, verifier, checkpoint = world
        session.insert("side", 1)
        # An aggregate record *for the checkpointed object's chain* would
        # only arise if 'feed' were re-created by aggregation; simulate by
        # shipping an aggregate record labelled for feed.
        agg = db.session(participants["p2"]).aggregate(["feed", "side"], "merged")
        relabelled = dataclasses.replace(
            agg,
            object_id="feed",
            seq_id=checkpoint.seq_id + 1,
            output=dataclasses.replace(agg.output, object_id="feed"),
        )
        snapshot = SubtreeSnapshot.capture(db.store, "feed")
        report = verify_extension(verifier, checkpoint, snapshot, [relabelled])
        assert not report.ok
        assert "STRUCT" in report.requirement_codes()

    def test_unknown_participant_detected(self, world):
        db, session, verifier, checkpoint = world
        session.update("feed", 3)
        snapshot, records = self._delivery(db, checkpoint)
        records[0] = dataclasses.replace(records[0], participant_id="stranger")
        report = verify_extension(verifier, checkpoint, snapshot, records)
        assert not report.ok
        assert "PKI" in report.requirement_codes()

    def test_checkpoint_advances(self, world):
        db, session, verifier, checkpoint = world
        session.update("feed", 3)
        snapshot, records = self._delivery(db, checkpoint)
        assert verify_extension(verifier, checkpoint, snapshot, records).ok
        # Recipient rolls the checkpoint forward and verifies the next drop.
        new_checkpoint = Checkpoint.from_records(
            "feed", list(db.provenance_of("feed"))
        )
        session.update("feed", 4)
        snapshot2, records2 = self._delivery(db, new_checkpoint)
        report = verify_extension(verifier, new_checkpoint, snapshot2, records2)
        assert report.ok
        assert report.records_checked == 1
