"""Unit tests for subtree snapshots."""

import pytest

from repro.exceptions import ShipmentError
from repro.model.tree import Forest
from repro.provenance.snapshot import SubtreeSnapshot


@pytest.fixture
def forest():
    f = Forest()
    f.insert("A", "a")
    f.insert("B", "b", parent="A")
    f.insert("C", "c", parent="A")
    f.insert("D", "d", parent="B")
    return f


class TestCapture:
    def test_capture_preorder(self, forest):
        snap = SubtreeSnapshot.capture(forest, "A")
        assert [n.object_id for n in snap.nodes] == ["A", "B", "D", "C"]
        assert snap.node_count == 4

    def test_capture_subtree_only(self, forest):
        snap = SubtreeSnapshot.capture(forest, "B")
        assert [n.object_id for n in snap.nodes] == ["B", "D"]

    def test_immutable_against_later_changes(self, forest):
        snap = SubtreeSnapshot.capture(forest, "A")
        forest.update("D", "changed")
        assert snap.value_of("D") == "d"

    def test_value_of_unknown(self, forest):
        snap = SubtreeSnapshot.capture(forest, "B")
        with pytest.raises(ShipmentError):
            snap.value_of("C")


class TestToForest:
    def test_rebuild_matches(self, forest):
        snap = SubtreeSnapshot.capture(forest, "A")
        rebuilt = snap.to_forest()
        assert len(rebuilt) == 4
        assert rebuilt.value("D") == "d"
        assert rebuilt.children("A") == ("B", "C")

    def test_rebuilt_subtree_root_has_no_parent(self, forest):
        snap = SubtreeSnapshot.capture(forest, "B")
        rebuilt = snap.to_forest()
        assert rebuilt.get("B").parent is None

    def test_digest_preserved_through_rebuild(self, forest):
        from repro.core.merkle import subtree_digest

        snap = SubtreeSnapshot.capture(forest, "A")
        assert subtree_digest(snap.to_forest(), "A") == subtree_digest(forest, "A")


class TestSerialization:
    def test_roundtrip(self, forest):
        snap = SubtreeSnapshot.capture(forest, "A")
        restored = SubtreeSnapshot.from_dict(snap.to_dict())
        assert restored == snap

    def test_roundtrip_normalises_node_order(self, forest):
        snap = SubtreeSnapshot.capture(forest, "A")
        data = snap.to_dict()
        data["nodes"] = list(reversed(data["nodes"]))
        restored = SubtreeSnapshot.from_dict(data)
        assert restored == snap

    def test_missing_root_rejected(self, forest):
        snap = SubtreeSnapshot.capture(forest, "A")
        data = snap.to_dict()
        data["nodes"] = [n for n in data["nodes"] if n["id"] != "A"]
        with pytest.raises(ShipmentError):
            SubtreeSnapshot.from_dict(data)

    def test_orphan_nodes_rejected(self, forest):
        snap = SubtreeSnapshot.capture(forest, "A")
        data = snap.to_dict()
        data["nodes"].append({"id": "ghost", "value": "4e00000000", "parent": "nowhere"})
        with pytest.raises(ShipmentError):
            SubtreeSnapshot.from_dict(data)

    def test_garbage_rejected(self):
        with pytest.raises(ShipmentError):
            SubtreeSnapshot.from_dict({"root_id": "A", "nodes": [{"id": "A"}]})
