"""Unit tests for the OPM export."""

import json

import pytest

from repro.provenance.opm import to_opm, to_opm_json


@pytest.fixture
def opm(fig2_world):
    return to_opm(fig2_world.provenance_store.all_records())


class TestEntities:
    def test_artifacts_one_per_state(self, opm):
        ids = {a["id"] for a in opm["artifacts"]}
        # 7 records => 7 output states (inputs all come from those states)
        assert ids == {
            "artifact:A#0", "artifact:A#1", "artifact:A#2",
            "artifact:B#0", "artifact:B#1",
            "artifact:C#2", "artifact:D#3",
        }

    def test_processes_one_per_record(self, opm):
        assert len(opm["processes"]) == 7

    def test_agents(self, opm):
        assert {a["participant"] for a in opm["agents"]} == {"p1", "p2", "p3"}

    def test_checksum_annotation_preserved(self, opm):
        for process in opm["processes"]:
            assert len(process["annotations"]["checksum"]) > 0

    def test_values_carried_on_artifacts(self, opm):
        by_id = {a["id"]: a for a in opm["artifacts"]}
        assert by_id["artifact:A#0"]["value"] == "a1"


class TestDependencies:
    def test_generated_by_covers_every_artifact_with_a_record(self, opm):
        generated = {e["artifact"] for e in opm["wasGeneratedBy"]}
        assert "artifact:D#3" in generated
        assert len(generated) == 7

    def test_update_derivation(self, opm):
        assert {"derived": "artifact:A#1", "source": "artifact:A#0"} in opm[
            "wasDerivedFrom"
        ]

    def test_aggregation_derivation_uses_consumed_states(self, opm):
        derived = opm["wasDerivedFrom"]
        # C (seq 2) consumed A#1 and B#1 (the states before seq 2).
        assert {"derived": "artifact:C#2", "source": "artifact:A#1"} in derived
        assert {"derived": "artifact:C#2", "source": "artifact:B#1"} in derived
        # D (seq 3) consumed A#2 and C#2.
        assert {"derived": "artifact:D#3", "source": "artifact:A#2"} in derived
        assert {"derived": "artifact:D#3", "source": "artifact:C#2"} in derived

    def test_controlled_by(self, opm):
        assert {"process": "process:C#2", "agent": "agent:p3"} in opm[
            "wasControlledBy"
        ]

    def test_used_mirrors_derivations(self, opm):
        assert len(opm["used"]) == len(opm["wasDerivedFrom"])


class TestJson:
    def test_valid_json(self, fig2_world):
        blob = to_opm_json(fig2_world.provenance_store.all_records())
        data = json.loads(blob)
        assert data["format"] == "opm-json-v1"

    def test_note_annotation(self, tedb, participants):
        session = tedb.session(participants["p1"])
        session.insert("x", 1, note="white-box description")
        data = to_opm(tedb.provenance_store.all_records())
        assert data["processes"][0]["annotations"]["note"] == "white-box description"

    def test_empty_records(self):
        data = to_opm([])
        assert data["artifacts"] == [] and data["processes"] == []
