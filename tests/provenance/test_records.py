"""Unit tests for provenance records and object states."""

import pytest

from repro.exceptions import ProvenanceError
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord


def make_state(object_id="A", digest=b"\x01" * 20, **kwargs):
    return ObjectState(object_id=object_id, digest=digest, **kwargs)


def make_record(**overrides):
    defaults = dict(
        object_id="A",
        seq_id=1,
        participant_id="p1",
        operation=Operation.UPDATE,
        inputs=(make_state(),),
        output=make_state(digest=b"\x02" * 20),
        checksum=b"\xab" * 64,
    )
    defaults.update(overrides)
    return ProvenanceRecord(**defaults)


class TestObjectState:
    def test_roundtrip_with_value(self):
        state = make_state(value=42, has_value=True, node_count=1)
        assert ObjectState.from_dict(state.to_dict()) == state

    def test_roundtrip_compound(self):
        state = make_state(node_count=36002)
        restored = ObjectState.from_dict(state.to_dict())
        assert restored == state
        assert not restored.has_value

    def test_none_value_distinguished_from_no_value(self):
        with_none = make_state(value=None, has_value=True)
        without = make_state()
        assert ObjectState.from_dict(with_none.to_dict()).has_value
        assert not ObjectState.from_dict(without.to_dict()).has_value

    def test_malformed_rejected(self):
        with pytest.raises(ProvenanceError):
            ObjectState.from_dict({"object_id": "A"})


class TestProvenanceRecord:
    def test_key_and_input_ids(self):
        record = make_record()
        assert record.key == ("A", 1)
        assert record.input_ids == ("A",)

    def test_output_object_must_match(self):
        with pytest.raises(ProvenanceError):
            make_record(output=make_state(object_id="B"))

    def test_negative_seq_rejected(self):
        with pytest.raises(ProvenanceError):
            make_record(seq_id=-1)

    def test_is_genesis(self):
        assert make_record(
            operation=Operation.INSERT, seq_id=0, inputs=()
        ).is_genesis
        assert make_record(
            operation=Operation.AGGREGATE, seq_id=3
        ).is_genesis
        assert not make_record().is_genesis

    def test_with_checksum(self):
        record = make_record(checksum=b"")
        signed = record.with_checksum(b"\x01" * 64)
        assert signed.checksum == b"\x01" * 64
        assert record.checksum == b""  # original unchanged

    def test_storage_bytes_matches_paper_row(self):
        # (SeqID int, Participant int, Oid int, Checksum binary(128))
        record = make_record(checksum=b"\x00" * 128)
        assert record.storage_bytes() == 140

    def test_roundtrip(self):
        record = make_record(
            operation=Operation.AGGREGATE,
            inputs=(make_state("X"), make_state("Y", value=3, has_value=True)),
            output=make_state("A", node_count=7),
            inherited=True,
        )
        assert ProvenanceRecord.from_dict(record.to_dict()) == record

    def test_malformed_rejected(self):
        with pytest.raises(ProvenanceError):
            ProvenanceRecord.from_dict({"object_id": "A"})
        bad = make_record().to_dict()
        bad["operation"] = "frobnicate"
        with pytest.raises(ProvenanceError):
            ProvenanceRecord.from_dict(bad)

    def test_describe_mentions_parts(self):
        text = make_record(inherited=True).describe()
        assert "A" in text and "p1" in text and "inherited" in text

    def test_operation_str(self):
        assert str(Operation.AGGREGATE) == "aggregate"
