"""Sharded per-tenant store: routing, protocol conformance, crash surface."""

import os

import pytest

from repro.exceptions import ProvenanceError, SequenceError
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord
from repro.provenance.registry import (
    ShardedProvenanceStore,
    open_tenant_store,
    shard_index,
    tenant_store_paths,
)
from repro.provenance.store import (
    InMemoryProvenanceStore,
    ProvenanceStore,
    VerifiedWatermark,
)


def record_for(object_id, seq_id, operation=Operation.UPDATE):
    digest = bytes([seq_id % 256]) * 20
    inputs = (
        ()
        if operation is Operation.INSERT
        else (ObjectState(object_id=object_id, digest=digest),)
    )
    return ProvenanceRecord(
        object_id=object_id,
        seq_id=seq_id,
        participant_id="p1",
        operation=operation,
        inputs=inputs,
        output=ObjectState(object_id=object_id, digest=digest),
        checksum=b"\xcd" * 64,
    )


def make_store(shards=4):
    return ShardedProvenanceStore(
        InMemoryProvenanceStore() for _ in range(shards)
    )


#: Enough ids that every shard of a 4-way store gets traffic.
OBJECTS = [f"obj{i}" for i in range(16)]


class TestRouting:
    def test_routing_is_stable_and_total(self):
        for oid in OBJECTS:
            idx = shard_index(oid, 4)
            assert 0 <= idx < 4
            assert shard_index(oid, 4) == idx  # repeatable

    def test_all_shards_used(self):
        assert {shard_index(oid, 4) for oid in OBJECTS} == {0, 1, 2, 3}

    def test_single_shard_short_circuit(self):
        assert shard_index("anything", 1) == 0

    def test_chain_never_spans_shards(self):
        store = make_store()
        for oid in OBJECTS:
            store.append(record_for(oid, 0, Operation.INSERT))
            store.append(record_for(oid, 1))
        for oid in OBJECTS:
            holders = [
                pos for pos, shard in enumerate(store.shards)
                if shard.records_for(oid)
            ]
            assert len(holders) == 1

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ProvenanceError):
            ShardedProvenanceStore(())


class TestProtocolConformance:
    """The sharded store behaves exactly like a single store."""

    def test_satisfies_protocol(self):
        assert isinstance(make_store(), ProvenanceStore)

    def test_matches_single_store(self):
        sharded, single = make_store(), InMemoryProvenanceStore()
        for target in (sharded, single):
            for oid in OBJECTS:
                target.append(record_for(oid, 0, Operation.INSERT))
                target.append(record_for(oid, 1))
        assert len(sharded) == len(single)
        assert sharded.object_ids() == single.object_ids()
        assert list(sharded.all_records()) == list(single.all_records())
        for oid in OBJECTS:
            assert sharded.records_for(oid) == single.records_for(oid)
            assert sharded.latest(oid) == single.latest(oid)
            assert sharded.get(oid, 1) == single.get(oid, 1)

    def test_append_many_spanning_shards(self):
        store = make_store()
        batch = [record_for(oid, 0, Operation.INSERT) for oid in OBJECTS]
        store.append_many(batch)
        assert len(store) == len(OBJECTS)

    def test_append_many_validates_before_any_shard_commits(self):
        store = make_store()
        store.append(record_for(OBJECTS[0], 0, Operation.INSERT))
        bad = [
            record_for(OBJECTS[1], 0, Operation.INSERT),
            record_for(OBJECTS[0], 0, Operation.INSERT),  # seq conflict
        ]
        with pytest.raises(SequenceError):
            store.append_many(bad)
        # Atomic across shards: the valid head record must not have landed.
        assert store.latest(OBJECTS[1]) is None

    def test_purge_and_space(self):
        store = make_store()
        store.append(record_for("A", 0, Operation.INSERT))
        assert store.space_bytes() > 0
        assert store.purge_object("A") == 1
        assert store.object_ids() == ()


class TestCrashSurface:
    def test_torn_batch_splits_global_prefix_per_shard(self):
        store = make_store()
        batch = [record_for(oid, 0, Operation.INSERT) for oid in OBJECTS[:8]]
        torn_ids = store.begin_torn_batch(batch, keep=3)
        # Exactly the first 3 records of the *global* batch survive,
        # regardless of which shard each landed on.
        surviving = {r.object_id for r in store.all_records()}
        assert surviving == {r.object_id for r in batch[:3]}
        # Every shard that received records left an uncommitted journal
        # entry for the recovery scanner...
        journal = store.journal()
        assert journal and all(not entry.committed for entry in journal)
        # ...and the returned ids name every torn sub-batch, not just one.
        assert sorted(torn_ids) == sorted(entry.batch_id for entry in journal)

    def test_torn_empty_batch_returns_no_ids(self):
        store = make_store()
        assert store.begin_torn_batch([], keep=0) == ()
        assert store.journal() == ()

    def test_resolve_torn_routes_by_encoded_id(self):
        store = make_store()
        batch = [record_for(oid, 0, Operation.INSERT) for oid in OBJECTS[:8]]
        store.begin_torn_batch(batch, keep=0)
        for entry in store.journal():
            for object_id, seq_id in entry.keys:
                store.discard(object_id, seq_id)
            store.resolve_torn(entry.batch_id)
        assert all(entry.committed for entry in store.journal())
        assert len(store) == 0

    def test_recovery_scanner_composes(self):
        from repro.faults.recovery import RecoveryScanner

        store = make_store()
        store.append(record_for("A", 0, Operation.INSERT))
        batch = [record_for(oid, 0, Operation.INSERT) for oid in OBJECTS[:8]]
        store.begin_torn_batch(batch, keep=2)
        report = RecoveryScanner(store).recover()
        assert not report.clean
        # Only the pre-crash record and fully-committed state remain;
        # every torn suffix is truncated and re-verifiable.
        assert all(entry.committed for entry in store.journal())
        assert store.latest("A").seq_id == 0

    def test_watermark_surface(self):
        store = make_store()
        for oid in OBJECTS[:4]:
            store.append(record_for(oid, 0, Operation.INSERT))
            store.set_watermark(VerifiedWatermark(
                object_id=oid, index=1, seq_id=0, checksum=b"\xcd" * 64,
            ))
        assert [wm.object_id for wm in store.watermarks()] == sorted(OBJECTS[:4])
        assert store.get_watermark(OBJECTS[0]).index == 1
        assert store.clear_watermark(OBJECTS[0])
        assert store.get_watermark(OBJECTS[0]) is None


class TestTenantLayout:
    def test_paths_are_percent_escaped(self, tmp_path):
        paths = tenant_store_paths(str(tmp_path), "../evil/../../t", 2)
        for path in paths:
            assert os.path.realpath(path).startswith(str(tmp_path))
            assert "/evil/" not in path

    @pytest.mark.parametrize("hostile", [".", "..", "...", "./..", "a/../.."])
    def test_dot_tenant_ids_cannot_escape_the_root(self, tmp_path, hostile):
        """Regression: '.' used to be in the safe set, so tenant '..'
        resolved its shard files into the PARENT of the store root."""
        root = tmp_path / "store"
        root.mkdir()
        paths = tenant_store_paths(str(root), hostile, 2)
        real_root = os.path.realpath(str(root))
        for path in paths:
            parent = os.path.dirname(os.path.realpath(path))
            assert parent.startswith(real_root + os.sep)
            assert parent != real_root  # never dumps shards into the root

    def test_dot_tenant_ids_get_distinct_directories(self, tmp_path):
        dirs = {
            os.path.dirname(tenant_store_paths(str(tmp_path), t, 1)[0])
            for t in (".", "..", "...", "%2e")
        }
        assert len(dirs) == 4

    def test_open_tenant_store_dot_tenant_stays_inside_root(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        store = open_tenant_store(str(root), "..", shards=1)
        try:
            store.append(record_for("A", 0, Operation.INSERT))
        finally:
            store.close()
        # Nothing was created outside (or directly inside) the root.
        assert sorted(os.listdir(tmp_path)) == ["store"]
        assert os.listdir(root) == ["%2e%2e"]

    def test_open_tenant_store_memory_vs_sqlite(self, tmp_path):
        memory = open_tenant_store(None, "t1", shards=3)
        assert len(memory.shards) == 3

        on_disk = open_tenant_store(str(tmp_path), "t1", shards=3)
        try:
            on_disk.append(record_for("A", 0, Operation.INSERT))
        finally:
            on_disk.close()
        files = sorted(os.listdir(tmp_path / "t1"))
        assert files == ["shard-0.sqlite", "shard-1.sqlite", "shard-2.sqlite"]

        # Re-opening routes the chain back to the shard that holds it.
        reopened = open_tenant_store(str(tmp_path), "t1", shards=3)
        try:
            assert reopened.latest("A").seq_id == 0
        finally:
            reopened.close()

    def test_distinct_tenants_distinct_directories(self, tmp_path):
        a = open_tenant_store(str(tmp_path), "alice", shards=1)
        b = open_tenant_store(str(tmp_path), "bob", shards=1)
        try:
            a.append(record_for("A", 0, Operation.INSERT))
            assert b.latest("A") is None
        finally:
            a.close()
            b.close()
