"""Unit tests for provenance compaction (footnote 3's optimisation)."""

import pytest

from repro.provenance.compaction import compact, compactable_objects


@pytest.fixture
def session(tedb, participants):
    return tedb.session(participants["p1"])


class TestCompactableObjects:
    def test_nothing_compactable_when_all_live(self, tedb, session):
        session.insert("a", 1)
        session.insert("b", 2)
        assert compactable_objects(tedb.provenance_store, tedb.store) == ()

    def test_deleted_unreferenced_chain_is_compactable(self, tedb, session):
        session.insert("p", None)
        session.insert("p/x", 1, "p")
        session.delete("p/x")
        assert compactable_objects(tedb.provenance_store, tedb.store) == ("p/x",)

    def test_aggregation_input_chain_retained(self, tedb, session):
        session.insert("src", 1)
        session.aggregate(["src"], "derived")
        # Delete the source object entirely (it is a root leaf).
        session.delete("src")
        # derived still derives from src: its chain must survive.
        assert compactable_objects(tedb.provenance_store, tedb.store) == ()

    def test_chain_compactable_once_derivative_also_deleted(self, tedb, session):
        session.insert("src", 1)
        session.aggregate(["src"], "derived")
        session.delete("src")
        # Remove derived's tree too (cells first).
        for object_id in reversed(list(tedb.store.iter_subtree("derived"))):
            session.delete(object_id)
        compactable = compactable_objects(tedb.provenance_store, tedb.store)
        assert set(compactable) == {"src", "derived"}

    def test_transitive_retention(self, tedb, session):
        session.insert("a", 1)
        session.aggregate(["a"], "b")
        session.aggregate(["b"], "c")
        session.delete("a")
        for object_id in reversed(list(tedb.store.iter_subtree("b"))):
            session.delete(object_id)
        # c is live and derives from b which derives from a: keep both.
        assert compactable_objects(tedb.provenance_store, tedb.store) == ()


class TestCompact:
    def test_compact_reclaims_space(self, tedb, session):
        session.insert("p", None)
        session.insert("p/x", 1, "p")
        session.update("p/x", 2)
        session.delete("p/x")
        before_records = len(tedb.provenance_store)
        before_bytes = tedb.provenance_store.space_bytes()
        stats = compact(tedb.provenance_store, tedb.store)
        assert stats.objects_purged == ("p/x",)
        assert stats.records_removed == 2  # p/x's insert + update (deletes add none)
        assert len(tedb.provenance_store) == before_records - stats.records_removed
        assert tedb.provenance_store.space_bytes() < before_bytes
        assert "purged 1 chains" in str(stats)

    def test_survivors_still_verify_after_compaction(self, tedb, session):
        session.insert("keep", 1)
        session.insert("p", None)
        session.insert("p/x", 1, "p")
        session.delete("p/x")
        session.update("keep", 2)
        compact(tedb.provenance_store, tedb.store)
        assert tedb.verify("keep").ok
        assert tedb.verify("p").ok  # ancestor chain untouched

    def test_aggregate_closure_still_verifies_after_source_delete(
        self, tedb, session
    ):
        session.insert("src", 1)
        session.aggregate(["src"], "derived")
        session.delete("src")
        stats = compact(tedb.provenance_store, tedb.store)
        assert stats.objects_purged == ()  # nothing safe to purge
        assert tedb.verify("derived").ok

    def test_compact_idempotent(self, tedb, session):
        session.insert("p", None)
        session.insert("p/x", 1, "p")
        session.delete("p/x")
        first = compact(tedb.provenance_store, tedb.store)
        second = compact(tedb.provenance_store, tedb.store)
        assert first.records_removed > 0
        assert second.records_removed == 0
        assert second.objects_purged == ()

    def test_sqlite_store_compaction(self, ca, participants):
        from repro.core.system import TamperEvidentDatabase
        from repro.provenance.store import SQLiteProvenanceStore

        with SQLiteProvenanceStore() as prov:
            db = TamperEvidentDatabase(ca=ca, provenance_store=prov)
            s = db.session(participants["p1"])
            s.insert("p", None)
            s.insert("p/x", 1, "p")
            s.delete("p/x")
            stats = compact(prov, db.store)
            assert stats.objects_purged == ("p/x",)
            assert prov.records_for("p/x") == ()
            assert db.verify("p").ok
