"""Property test: ``append_many`` is equivalent to sequential ``append``.

For any record sequence — valid or not — the batch API must behave like
appending record by record, except that a failure anywhere in the batch
leaves the store untouched (all-or-nothing), whereas the sequential loop
stops mid-way.  Both store implementations are checked against each other
and against the in-memory reference semantics.
"""

import copy
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CrashError, SequenceError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore


def _record(object_id: str, seq_id: int) -> ProvenanceRecord:
    digest = bytes([seq_id % 251]) * 20
    operation = Operation.INSERT if seq_id == 0 else Operation.UPDATE
    inputs = () if seq_id == 0 else (ObjectState(object_id=object_id, digest=digest),)
    return ProvenanceRecord(
        object_id=object_id,
        seq_id=seq_id,
        participant_id="p1",
        operation=operation,
        inputs=inputs,
        output=ObjectState(object_id=object_id, digest=digest),
        checksum=bytes([seq_id % 251, len(object_id) % 251]) * 32,
    )


#: Sequences over a small id/seq alphabet so collisions (duplicates and
#: regressions) are generated often.
record_batches = st.lists(
    st.tuples(st.sampled_from("ABC"), st.integers(min_value=0, max_value=4)),
    max_size=12,
).map(lambda keys: [_record(object_id, seq) for object_id, seq in keys])


def _state(store):
    """Full observable state of a provenance store."""
    return (
        len(store),
        store.space_bytes(),
        [record.to_dict() for record in store.all_records()],
        [store.latest(object_id).to_dict() for object_id in store.object_ids()
         if store.latest(object_id) is not None],
    )


def _sequential_outcome(records):
    """Apply the batch record-by-record to the reference store."""
    reference = InMemoryProvenanceStore()
    for record in records:
        try:
            reference.append(record)
        except SequenceError as exc:
            return reference, exc
    return reference, None


@settings(max_examples=60, deadline=None)
@given(record_batches)
def test_append_many_equivalent_to_sequential_append(records):
    reference, error = _sequential_outcome(records)

    for make_store in (InMemoryProvenanceStore, SQLiteProvenanceStore):
        store = make_store()
        try:
            if error is None:
                store.append_many(records)
                assert _state(store) == _state(reference)
            else:
                with pytest.raises(SequenceError):
                    store.append_many(records)
                # all-or-nothing: no partial writes on failure
                assert len(store) == 0
                assert list(store.all_records()) == []
        finally:
            if isinstance(store, SQLiteProvenanceStore):
                store.close()


@settings(max_examples=40, deadline=None)
@given(record_batches, record_batches)
def test_append_many_after_committed_prefix(first, second):
    """A failing batch must not disturb previously committed records."""
    prefix_ref, prefix_error = _sequential_outcome(first)
    if prefix_error is not None:
        first = []  # keep only cleanly appendable prefixes
        prefix_ref = InMemoryProvenanceStore()

    reference, error = _sequential_outcome(first + second)

    for make_store in (InMemoryProvenanceStore, SQLiteProvenanceStore):
        store = make_store()
        try:
            if first:
                store.append_many(first)
            if error is None:
                store.append_many(second)
                assert _state(store) == _state(reference)
            else:
                with pytest.raises(SequenceError):
                    store.append_many(second)
                # the committed prefix is intact, the failed batch absent
                assert _state(store) == _state(prefix_ref)
        finally:
            if isinstance(store, SQLiteProvenanceStore):
                store.close()


def _valid_prefix(records):
    """The longest cleanly-appendable prefix of a generated sequence."""
    reference = InMemoryProvenanceStore()
    prefix = []
    for record in records:
        try:
            reference.append(record)
        except SequenceError:
            break
        prefix.append(record)
    return prefix, reference


@settings(max_examples=30, deadline=None)
@given(record_batches, st.integers(min_value=0, max_value=2**16))
def test_crash_recovery_round_trip_matches_fault_free_run(records, seed):
    """For ANY seeded fault plan (torn batches, transient errors at random
    points), appending batches through a FaultyStore with crash-recovery
    and retry converges to the exact state of a fault-free run — the
    ``append_many`` ≡ sequential ``append`` equivalence survives every
    crash point."""
    valid, reference = _valid_prefix(records)
    batches = [valid[i : i + 3] for i in range(0, len(valid), 3)]
    plan = FaultPlan(
        seed=seed,
        rules=(
            FaultRule("store.append_many", FaultKind.TORN, rate=0.4),
            FaultRule("store.append_many", FaultKind.ERROR, rate=0.3),
        ),
    )
    for make_store in (InMemoryProvenanceStore, SQLiteProvenanceStore):
        inner = make_store()
        # Each store replays the identical schedule from index 0.
        faulty = FaultyStore(inner, copy.deepcopy(plan))
        try:
            for batch in batches:
                for attempt in range(200):
                    try:
                        faulty.append_many(batch)
                        break
                    except CrashError:
                        # Crash consumed the batch's acknowledgement:
                        # restart, recover, retry.
                        RecoveryScanner(inner).recover()
                    except sqlite3.OperationalError:
                        pass  # transient: plain retry
                else:  # pragma: no cover - geometric termination
                    pytest.fail("fault plan never let the batch through")
            assert _state(inner) == _state(reference)
            assert not [e for e in inner.journal() if not e.committed]
        finally:
            if isinstance(inner, SQLiteProvenanceStore):
                inner.close()


@settings(max_examples=30, deadline=None)
@given(record_batches, st.integers(min_value=0, max_value=12))
def test_any_crash_point_recovers_to_committed_prefix(records, keep):
    """A batch torn at ANY position, then recovered, leaves the store
    byte-identical to never having attempted the batch."""
    valid, _ = _valid_prefix(records)
    if len(valid) < 2:
        valid = [_record("A", 0), _record("A", 1)]
    committed, batch = valid[: len(valid) // 2], valid[len(valid) // 2 :]
    for make_store in (InMemoryProvenanceStore, SQLiteProvenanceStore):
        store = make_store()
        try:
            if committed:
                store.append_many(committed)
            before = _state(store)
            store.begin_torn_batch(batch, keep=min(keep, len(batch)))
            RecoveryScanner(store).recover()
            assert _state(store) == before
            # The recovered store accepts the batch as if nothing happened.
            store.append_many(batch)
        finally:
            if isinstance(store, SQLiteProvenanceStore):
                store.close()


@settings(max_examples=40, deadline=None)
@given(record_batches)
def test_both_stores_raise_identical_messages(records):
    """The two implementations agree on *which* record is rejected."""
    memory = InMemoryProvenanceStore()
    with SQLiteProvenanceStore() as sqlite_store:
        memory_error = sqlite_error = None
        try:
            memory.append_many(records)
        except SequenceError as exc:
            memory_error = str(exc)
        try:
            sqlite_store.append_many(records)
        except SequenceError as exc:
            sqlite_error = str(exc)
        assert memory_error == sqlite_error
        assert _state(memory) == _state(sqlite_store)
