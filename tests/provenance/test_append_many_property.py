"""Property test: ``append_many`` is equivalent to sequential ``append``.

For any record sequence — valid or not — the batch API must behave like
appending record by record, except that a failure anywhere in the batch
leaves the store untouched (all-or-nothing), whereas the sequential loop
stops mid-way.  Both store implementations are checked against each other
and against the in-memory reference semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SequenceError
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore


def _record(object_id: str, seq_id: int) -> ProvenanceRecord:
    digest = bytes([seq_id % 251]) * 20
    operation = Operation.INSERT if seq_id == 0 else Operation.UPDATE
    inputs = () if seq_id == 0 else (ObjectState(object_id=object_id, digest=digest),)
    return ProvenanceRecord(
        object_id=object_id,
        seq_id=seq_id,
        participant_id="p1",
        operation=operation,
        inputs=inputs,
        output=ObjectState(object_id=object_id, digest=digest),
        checksum=bytes([seq_id % 251, len(object_id) % 251]) * 32,
    )


#: Sequences over a small id/seq alphabet so collisions (duplicates and
#: regressions) are generated often.
record_batches = st.lists(
    st.tuples(st.sampled_from("ABC"), st.integers(min_value=0, max_value=4)),
    max_size=12,
).map(lambda keys: [_record(object_id, seq) for object_id, seq in keys])


def _state(store):
    """Full observable state of a provenance store."""
    return (
        len(store),
        store.space_bytes(),
        [record.to_dict() for record in store.all_records()],
        [store.latest(object_id).to_dict() for object_id in store.object_ids()
         if store.latest(object_id) is not None],
    )


def _sequential_outcome(records):
    """Apply the batch record-by-record to the reference store."""
    reference = InMemoryProvenanceStore()
    for record in records:
        try:
            reference.append(record)
        except SequenceError as exc:
            return reference, exc
    return reference, None


@settings(max_examples=60, deadline=None)
@given(record_batches)
def test_append_many_equivalent_to_sequential_append(records):
    reference, error = _sequential_outcome(records)

    for make_store in (InMemoryProvenanceStore, SQLiteProvenanceStore):
        store = make_store()
        try:
            if error is None:
                store.append_many(records)
                assert _state(store) == _state(reference)
            else:
                with pytest.raises(SequenceError):
                    store.append_many(records)
                # all-or-nothing: no partial writes on failure
                assert len(store) == 0
                assert list(store.all_records()) == []
        finally:
            if isinstance(store, SQLiteProvenanceStore):
                store.close()


@settings(max_examples=40, deadline=None)
@given(record_batches, record_batches)
def test_append_many_after_committed_prefix(first, second):
    """A failing batch must not disturb previously committed records."""
    prefix_ref, prefix_error = _sequential_outcome(first)
    if prefix_error is not None:
        first = []  # keep only cleanly appendable prefixes
        prefix_ref = InMemoryProvenanceStore()

    reference, error = _sequential_outcome(first + second)

    for make_store in (InMemoryProvenanceStore, SQLiteProvenanceStore):
        store = make_store()
        try:
            if first:
                store.append_many(first)
            if error is None:
                store.append_many(second)
                assert _state(store) == _state(reference)
            else:
                with pytest.raises(SequenceError):
                    store.append_many(second)
                # the committed prefix is intact, the failed batch absent
                assert _state(store) == _state(prefix_ref)
        finally:
            if isinstance(store, SQLiteProvenanceStore):
                store.close()


@settings(max_examples=40, deadline=None)
@given(record_batches)
def test_both_stores_raise_identical_messages(records):
    """The two implementations agree on *which* record is rejected."""
    memory = InMemoryProvenanceStore()
    with SQLiteProvenanceStore() as sqlite_store:
        memory_error = sqlite_error = None
        try:
            memory.append_many(records)
        except SequenceError as exc:
            memory_error = str(exc)
        try:
            sqlite_store.append_many(records)
        except SequenceError as exc:
            sqlite_error = str(exc)
        assert memory_error == sqlite_error
        assert _state(memory) == _state(sqlite_store)
