"""Conformance tests for both provenance store implementations."""

import pytest

from repro.exceptions import SequenceError
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord
from repro.provenance.store import (
    InMemoryProvenanceStore,
    ProvenanceStore,
    SQLiteProvenanceStore,
)


def record_for(object_id, seq_id, participant="p1", operation=Operation.UPDATE):
    digest = bytes([seq_id % 256]) * 20
    inputs = (
        ()
        if operation is Operation.INSERT
        else (ObjectState(object_id=object_id, digest=digest),)
    )
    return ProvenanceRecord(
        object_id=object_id,
        seq_id=seq_id,
        participant_id=participant,
        operation=operation,
        inputs=inputs,
        output=ObjectState(object_id=object_id, digest=digest),
        checksum=b"\xcd" * 64,
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield InMemoryProvenanceStore()
    else:
        with SQLiteProvenanceStore() as s:
            yield s


class TestConformance:
    def test_satisfies_protocol(self, store):
        assert isinstance(store, ProvenanceStore)

    def test_append_and_chain(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        chain = store.records_for("A")
        assert [r.seq_id for r in chain] == [0, 1]

    def test_latest(self, store):
        assert store.latest("A") is None
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        assert store.latest("A").seq_id == 1

    def test_get_by_key(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        assert store.get("A", 0).seq_id == 0
        assert store.get("A", 5) is None
        assert store.get("B", 0) is None

    def test_seq_must_increase(self, store):
        store.append(record_for("A", 3))
        with pytest.raises(SequenceError):
            store.append(record_for("A", 3))
        with pytest.raises(SequenceError):
            store.append(record_for("A", 2))

    def test_gaps_allowed(self, store):
        # Aggregates legitimately start chains above 0 and jump seq ids.
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 5))
        assert store.latest("A").seq_id == 5

    def test_independent_objects(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("B", 0, operation=Operation.INSERT))
        assert store.object_ids() == ("A", "B")
        assert len(store.records_for("A")) == 1

    def test_all_records_ordering(self, store):
        store.append(record_for("B", 0, operation=Operation.INSERT))
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        keys = [r.key for r in store.all_records()]
        assert keys == [("A", 0), ("A", 1), ("B", 0)]

    def test_len_and_space(self, store):
        assert len(store) == 0
        assert store.space_bytes() == 0
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        assert len(store) == 2
        # 12 bytes of ints + 64-byte checksum per record
        assert store.space_bytes() == 2 * (12 + 64)

    def test_record_payload_roundtrips(self, store):
        original = record_for("A", 0, operation=Operation.INSERT)
        store.append(original)
        assert store.records_for("A")[0] == original

    def test_append_many_matches_sequential(self, store):
        batch = [
            record_for("A", 0, operation=Operation.INSERT),
            record_for("B", 0, operation=Operation.INSERT),
            record_for("A", 1),
            record_for("A", 2),
            record_for("B", 1),
        ]
        store.append_many(batch)
        assert len(store) == 5
        assert [r.seq_id for r in store.records_for("A")] == [0, 1, 2]
        assert store.latest("B").seq_id == 1
        assert store.space_bytes() == sum(r.storage_bytes() for r in batch)

    def test_append_many_continues_existing_chain(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append_many([record_for("A", 1), record_for("A", 2)])
        assert store.latest("A").seq_id == 2
        with pytest.raises(SequenceError):
            store.append_many([record_for("A", 2)])

    def test_append_many_is_atomic_on_mid_batch_duplicate(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        before = len(store)
        with pytest.raises(SequenceError):
            store.append_many(
                [
                    record_for("B", 0, operation=Operation.INSERT),
                    record_for("A", 1),
                    record_for("A", 1),  # duplicate key mid-batch
                ]
            )
        # all-or-nothing: the valid prefix was not half-flushed
        assert len(store) == before
        assert store.records_for("B") == ()
        assert store.latest("A").seq_id == 0

    def test_append_many_empty_batch(self, store):
        store.append_many([])
        assert len(store) == 0

    def test_append_after_append_many_sees_batch_tail(self, store):
        store.append_many(
            [record_for("A", 0, operation=Operation.INSERT), record_for("A", 1)]
        )
        with pytest.raises(SequenceError):
            store.append(record_for("A", 1))
        store.append(record_for("A", 2))
        assert store.latest("A").seq_id == 2


class TestSQLiteSpecific:
    def test_persistence(self, tmp_path):
        path = str(tmp_path / "prov.db")
        with SQLiteProvenanceStore(path) as s:
            s.append(record_for("A", 0, operation=Operation.INSERT))
        with SQLiteProvenanceStore(path) as s:
            assert len(s) == 1
            assert s.latest("A").seq_id == 0

    def test_duplicate_key_maps_to_sequence_error(self, tmp_path):
        # Covers the DB-level primary-key path as well as the seq check.
        with SQLiteProvenanceStore() as s:
            s.append(record_for("A", 1))
            with pytest.raises(SequenceError):
                s.append(record_for("A", 1))

    def test_tail_cache_survives_purge(self):
        # purge_object must invalidate the chain-tail cache, or a purged
        # object could never restart its chain at seq 0.
        with SQLiteProvenanceStore() as s:
            s.append(record_for("A", 0, operation=Operation.INSERT))
            s.append(record_for("A", 1))
            assert s.purge_object("A") == 2
            s.append(record_for("A", 0, operation=Operation.INSERT))
            assert s.latest("A").seq_id == 0

    def test_tail_check_does_not_load_payload(self, monkeypatch):
        # The hot write path must not JSON-decode the latest payload.
        with SQLiteProvenanceStore() as s:
            s.append(record_for("A", 0, operation=Operation.INSERT))

            def boom(row):
                raise AssertionError("append deserialized a payload")

            monkeypatch.setattr(SQLiteProvenanceStore, "_load", staticmethod(boom))
            s.append(record_for("A", 1))
            with pytest.raises(SequenceError):
                s.append(record_for("A", 1))

    def test_tail_cache_loads_from_disk(self, tmp_path):
        # A fresh connection (empty cache) must validate against the
        # persisted chain, not treat every object as new.
        path = str(tmp_path / "prov.db")
        with SQLiteProvenanceStore(path) as s:
            s.append(record_for("A", 0, operation=Operation.INSERT))
            s.append(record_for("A", 1))
        with SQLiteProvenanceStore(path) as s:
            with pytest.raises(SequenceError):
                s.append(record_for("A", 1))
            s.append(record_for("A", 2))
            assert s.latest("A").seq_id == 2

    def test_end_to_end_with_sqlite_provenance(self, ca, participants):
        """The full system runs with a SQLite provenance database."""
        from repro.core.system import TamperEvidentDatabase

        with SQLiteProvenanceStore() as prov:
            db = TamperEvidentDatabase(ca=ca, provenance_store=prov)
            s = db.session(participants["p1"])
            s.insert("x", 1)
            s.update("x", 2)
            assert db.verify("x").ok
