"""Conformance tests for both provenance store implementations."""

import pytest

from repro.exceptions import SequenceError
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord
from repro.provenance.store import (
    InMemoryProvenanceStore,
    ProvenanceStore,
    SQLiteProvenanceStore,
)


def record_for(object_id, seq_id, participant="p1", operation=Operation.UPDATE):
    digest = bytes([seq_id % 256]) * 20
    inputs = (
        ()
        if operation is Operation.INSERT
        else (ObjectState(object_id=object_id, digest=digest),)
    )
    return ProvenanceRecord(
        object_id=object_id,
        seq_id=seq_id,
        participant_id=participant,
        operation=operation,
        inputs=inputs,
        output=ObjectState(object_id=object_id, digest=digest),
        checksum=b"\xcd" * 64,
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield InMemoryProvenanceStore()
    else:
        with SQLiteProvenanceStore() as s:
            yield s


class TestConformance:
    def test_satisfies_protocol(self, store):
        assert isinstance(store, ProvenanceStore)

    def test_append_and_chain(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        chain = store.records_for("A")
        assert [r.seq_id for r in chain] == [0, 1]

    def test_latest(self, store):
        assert store.latest("A") is None
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        assert store.latest("A").seq_id == 1

    def test_get_by_key(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        assert store.get("A", 0).seq_id == 0
        assert store.get("A", 5) is None
        assert store.get("B", 0) is None

    def test_seq_must_increase(self, store):
        store.append(record_for("A", 3))
        with pytest.raises(SequenceError):
            store.append(record_for("A", 3))
        with pytest.raises(SequenceError):
            store.append(record_for("A", 2))

    def test_gaps_allowed(self, store):
        # Aggregates legitimately start chains above 0 and jump seq ids.
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 5))
        assert store.latest("A").seq_id == 5

    def test_independent_objects(self, store):
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("B", 0, operation=Operation.INSERT))
        assert store.object_ids() == ("A", "B")
        assert len(store.records_for("A")) == 1

    def test_all_records_ordering(self, store):
        store.append(record_for("B", 0, operation=Operation.INSERT))
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        keys = [r.key for r in store.all_records()]
        assert keys == [("A", 0), ("A", 1), ("B", 0)]

    def test_len_and_space(self, store):
        assert len(store) == 0
        assert store.space_bytes() == 0
        store.append(record_for("A", 0, operation=Operation.INSERT))
        store.append(record_for("A", 1))
        assert len(store) == 2
        # 12 bytes of ints + 64-byte checksum per record
        assert store.space_bytes() == 2 * (12 + 64)

    def test_record_payload_roundtrips(self, store):
        original = record_for("A", 0, operation=Operation.INSERT)
        store.append(original)
        assert store.records_for("A")[0] == original


class TestSQLiteSpecific:
    def test_persistence(self, tmp_path):
        path = str(tmp_path / "prov.db")
        with SQLiteProvenanceStore(path) as s:
            s.append(record_for("A", 0, operation=Operation.INSERT))
        with SQLiteProvenanceStore(path) as s:
            assert len(s) == 1
            assert s.latest("A").seq_id == 0

    def test_duplicate_key_maps_to_sequence_error(self, tmp_path):
        # Covers the DB-level primary-key path as well as the seq check.
        with SQLiteProvenanceStore() as s:
            s.append(record_for("A", 1))
            with pytest.raises(SequenceError):
                s.append(record_for("A", 1))

    def test_end_to_end_with_sqlite_provenance(self, ca, participants):
        """The full system runs with a SQLite provenance database."""
        from repro.core.system import TamperEvidentDatabase

        with SQLiteProvenanceStore() as prov:
            db = TamperEvidentDatabase(ca=ca, provenance_store=prov)
            s = db.session(participants["p1"])
            s.insert("x", 1)
            s.update("x", 2)
            assert db.verify("x").ok
