"""Unit tests for the provenance DAG (Definition 1, Fig 2)."""

import pytest

from repro.exceptions import BrokenChainError
from repro.provenance.dag import ProvenanceDAG
from repro.provenance.records import ObjectState, Operation, ProvenanceRecord


def rec(object_id, seq, op=Operation.UPDATE, inputs=(), participant="p"):
    digest = bytes([seq % 251]) * 20
    input_states = tuple(
        ObjectState(object_id=i, digest=b"\x11" * 20) for i in inputs
    )
    if op is Operation.UPDATE and not input_states:
        input_states = (ObjectState(object_id=object_id, digest=digest),)
    return ProvenanceRecord(
        object_id=object_id,
        seq_id=seq,
        participant_id=participant,
        operation=op,
        inputs=input_states,
        output=ObjectState(object_id=object_id, digest=digest),
        checksum=b"\x01" * 8,
    )


@pytest.fixture
def fig2_records():
    """The record set of the paper's Fig 2 / Fig 3 (7 records)."""
    return [
        rec("A", 0, Operation.INSERT, participant="p2"),
        rec("B", 0, Operation.INSERT, participant="p2"),
        rec("A", 1, participant="p1"),
        rec("B", 1, participant="p2"),
        rec("A", 2, participant="p2"),
        rec("C", 2, Operation.AGGREGATE, inputs=("A", "B"), participant="p3"),
        rec("D", 3, Operation.AGGREGATE, inputs=("A", "C"), participant="p1"),
    ]


class TestConstruction:
    def test_counts(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert len(dag) == 7
        assert ("A", 1) in dag
        assert ("A", 9) not in dag

    def test_duplicate_keys_rejected(self, fig2_records):
        with pytest.raises(BrokenChainError):
            ProvenanceDAG(fig2_records + [rec("A", 0, Operation.INSERT)])

    def test_record_lookup(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert dag.record(("C", 2)).operation is Operation.AGGREGATE
        with pytest.raises(BrokenChainError):
            dag.record(("Z", 0))


class TestStructure:
    def test_chain(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert [r.seq_id for r in dag.chain("A")] == [0, 1, 2]
        assert dag.chain("nope") == ()

    def test_terminal(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert dag.terminal("A").seq_id == 2
        assert dag.terminal("D").seq_id == 3
        assert dag.terminal("nope") is None

    def test_aggregation_edges_use_latest_before(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        # C (seq 2) aggregated A at A's seq<2 state, i.e. ("A", 1).
        assert (("A", 1), ("C", 2)) in dag.graph.edges
        # D (seq 3) consumed A's seq-2 state.
        assert (("A", 2), ("D", 3)) in dag.graph.edges
        assert (("C", 2), ("D", 3)) in dag.graph.edges

    def test_ancestry_closure(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        ancestry = dag.ancestry("D")
        assert len(ancestry) == 7  # the whole history contributes to D
        # topological: genesis records come before the aggregate of D
        keys = [r.key for r in ancestry]
        assert keys.index(("A", 0)) < keys.index(("C", 2)) < keys.index(("D", 3))

    def test_ancestry_of_simple_object(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert [r.key for r in dag.ancestry("B")] == [("B", 0), ("B", 1)]
        assert dag.ancestry("nope") == ()

    def test_is_linear(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert dag.is_linear("A")
        assert dag.is_linear("B")
        assert not dag.is_linear("C")
        assert not dag.is_linear("D")

    def test_contributing_participants(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert dag.contributing_participants("D") == ("p1", "p2", "p3")
        assert dag.contributing_participants("B") == ("p2",)

    def test_source_objects(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        assert dag.source_objects("D") == ("A", "B")
        assert dag.source_objects("A") == ("A",)

    def test_topological_records(self, fig2_records):
        dag = ProvenanceDAG(fig2_records)
        ordered = dag.topological_records()
        assert len(ordered) == 7
        positions = {r.key: i for i, r in enumerate(ordered)}
        assert positions[("A", 0)] < positions[("A", 1)] < positions[("A", 2)]
        assert positions[("B", 1)] < positions[("C", 2)] < positions[("D", 3)]


class TestLiveSystemDAG:
    def test_dag_from_fig2_world(self, fig2_world):
        dag = fig2_world.dag()
        assert not dag.is_linear("D")
        assert dag.source_objects("D") == ("A", "B")
        assert dag.contributing_participants("D") == ("p1", "p2", "p3")
