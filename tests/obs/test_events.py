"""Structured event log: sinks, correlation ids, determinism, wiring."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.events import (
    EventLog,
    FileSink,
    RingBufferSink,
    current_correlation,
    read_events,
)


@pytest.fixture
def events_enabled():
    log = obs.enable_events()
    yield log
    obs.disable_events()


class TestEventLog:
    def test_emit_assigns_monotonic_seq(self):
        log = EventLog(sinks=(RingBufferSink(),))
        for i in range(5):
            log.emit("test.kind", index=i)
        assert [e.seq for e in log.ring.events()] == [0, 1, 2, 3, 4]

    def test_event_shape(self):
        log = EventLog(sinks=(RingBufferSink(),))
        log.emit("store.batch", records=3, store="memory")
        event = log.ring.events()[0]
        assert event.kind == "store.batch"
        assert event.fields == {"records": 3, "store": "memory"}
        data = event.to_dict()
        assert set(data) == {"seq", "kind", "ts", "corr", "trace_id", "fields"}

    def test_ring_buffer_caps_capacity(self):
        log = EventLog(sinks=(RingBufferSink(capacity=3),))
        for i in range(10):
            log.emit("k", i=i)
        kept = log.ring.events()
        assert len(kept) == 3
        assert [e.fields["i"] for e in kept] == [7, 8, 9]

    def test_of_kind_filters(self):
        log = EventLog(sinks=(RingBufferSink(),))
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert len(log.ring.of_kind("a")) == 2

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=(FileSink(str(path)),))
        log.emit("one", x=1)
        log.emit("two", y=[1, 2])
        log.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "one"
        assert first["fields"] == {"x": 1}

    def test_correlation_scope_threads_id(self):
        log = EventLog(sinks=(RingBufferSink(),))
        with log.correlation():
            log.emit("flush")
            log.emit("store")
        with log.correlation():
            log.emit("flush")
        events = log.ring.events()
        assert events[0].corr == events[1].corr
        assert events[2].corr != events[0].corr

    def test_correlation_ids_deterministic(self):
        log = EventLog(sinks=(RingBufferSink(),))
        assert log.new_correlation_id() == "c0"
        assert log.new_correlation_id() == "c1"

    def test_correlation_restored_after_scope(self):
        log = EventLog(sinks=(RingBufferSink(),))
        assert current_correlation() is None
        with log.correlation("outer"):
            assert current_correlation() == "outer"
            with log.correlation("inner"):
                assert current_correlation() == "inner"
            assert current_correlation() == "outer"
        assert current_correlation() is None

    def test_trace_id_attached_when_tracing(self, obs_enabled):
        log = obs.enable_events()
        try:
            with obs.span("outer"):
                log.emit("inside")
            log.emit("outside")
            inside, outside = log.ring.events()
            assert inside.trace_id is not None
            assert outside.trace_id is None
        finally:
            obs.disable_events()


class TestFileSinkEdgeCases:
    def test_emit_after_sink_close_is_dropped_not_fatal(self, tmp_path):
        # Shutdown race: the monitor closes sinks in a finally-block
        # while a late tick may still emit.
        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=(FileSink(str(path)),))
        log.emit("before", n=1)
        log.close()
        event = log.emit("after", n=2)  # must not raise
        assert event.seq == 1  # the log still numbers it
        recorded = read_events(str(path))
        assert [e["kind"] for e in recorded] == ["before"]

    def test_concurrent_emit_preserves_monotonic_seq(self, tmp_path):
        import threading

        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=(FileSink(str(path)),))
        per_thread = 50

        def emitter(tag):
            for i in range(per_thread):
                log.emit("concurrent", tag=tag, i=i)

        threads = [
            threading.Thread(target=emitter, args=(t,)) for t in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        recorded = read_events(str(path))
        assert len(recorded) == 2 * per_thread
        # Every seq claimed exactly once — no duplicates, no gaps …
        assert sorted(e["seq"] for e in recorded) == list(range(2 * per_thread))
        # … and each thread's own events appear in its emission order.
        for tag in ("a", "b"):
            own = [e["fields"]["i"] for e in sorted(
                recorded, key=lambda e: e["seq"]
            ) if e["fields"]["tag"] == tag]
            assert own == list(range(per_thread))

    def test_read_events_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=(FileSink(str(path)),))
        log.emit("good.one", n=1)
        log.emit("good.two", n=2)
        log.close()
        # A torn line (crash mid-write), junk, a non-object line, and a
        # blank line — all must be skipped, not fatal.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "kind": "torn", "fie')
            fh.write("\nnot json at all\n")
            fh.write("[1, 2, 3]\n")
            fh.write("\n")
        recorded = read_events(str(path))
        assert [e["kind"] for e in recorded] == ["good.one", "good.two"]
        assert recorded[1]["fields"] == {"n": 2}


class TestFileSinkRotation:
    @staticmethod
    def _log(path, max_bytes, keep=3):
        return EventLog(
            sinks=(FileSink(str(path), max_bytes=max_bytes, keep=keep),)
        )

    def test_rotates_before_exceeding_max_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self._log(path, max_bytes=200)
        for i in range(20):
            log.emit("k", i=i)
        log.close()
        assert path.exists()
        assert (tmp_path / "events.jsonl.1").exists()
        # The live segment respects the cap (one event per segment min).
        assert len(path.read_bytes()) <= 200

    def test_keep_bounds_segment_count(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self._log(path, max_bytes=120, keep=2)
        for i in range(60):
            log.emit("k", i=i)
        log.close()
        segments = sorted(p.name for p in tmp_path.iterdir())
        assert segments == ["events.jsonl", "events.jsonl.1", "events.jsonl.2"]

    def test_read_events_merges_segments_oldest_first(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self._log(path, max_bytes=600, keep=10)
        total = 30
        for i in range(total):
            log.emit("k", i=i)
        log.close()
        recorded = read_events(str(path))
        # Nothing dropped (keep is generous) and order is emission order
        # even though the bytes are spread over many rotated segments.
        assert [e["fields"]["i"] for e in recorded] == list(range(total))
        assert [e["seq"] for e in recorded] == list(range(total))

    def test_read_events_survives_pruned_history(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self._log(path, max_bytes=120, keep=1)
        for i in range(40):
            log.emit("k", i=i)
        log.close()
        recorded = read_events(str(path))
        # Old segments were pruned: what remains is a contiguous suffix.
        indices = [e["fields"]["i"] for e in recorded]
        assert indices == list(range(indices[0], 40))

    def test_oversized_single_event_still_written(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self._log(path, max_bytes=64)
        log.emit("big", blob="x" * 500)  # larger than the whole cap
        log.emit("after", n=1)
        log.close()
        recorded = read_events(str(path))
        assert [e["kind"] for e in recorded] == ["big", "after"]

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=(FileSink(str(path)),))
        for i in range(50):
            log.emit("k", i=i)
        log.close()
        assert [p.name for p in tmp_path.iterdir()] == ["events.jsonl"]

    def test_missing_live_file_with_segments_still_reads(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = self._log(path, max_bytes=120)
        for i in range(20):
            log.emit("k", i=i)
        log.close()
        path.unlink()  # crashed between rotate and first write
        recorded = read_events(str(path))
        assert recorded  # rotated history alone is still readable

    def test_missing_everything_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_events(str(tmp_path / "absent.jsonl"))


class TestSwitchboard:
    def test_emit_is_noop_without_event_log(self):
        obs.disable_events()
        obs.emit("anything", x=1)  # must not raise

    def test_enable_disable_roundtrip(self):
        log = obs.enable_events()
        obs.emit("hello")
        assert len(log.ring) == 1
        obs.disable_events()
        assert obs.OBS.events is None

    def test_enable_events_without_ring(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = obs.enable_events(ring=0, path=str(path))
        try:
            assert log.ring is None
            obs.emit("k")
        finally:
            obs.disable_events()
        assert json.loads(path.read_text())["kind"] == "k"

    def test_worker_config_disables_events(self, events_enabled):
        # Events are single-writer: a pool worker adopting the parent's
        # obs config must NOT inherit the event log.
        config = obs.worker_config()
        state = obs.OBS
        try:
            obs.apply_worker_config(config)
            assert state.events is None
        finally:
            obs.disable(reset=True)

    def test_events_orthogonal_to_metrics(self, events_enabled):
        # Event emission works with metrics/tracing disabled entirely.
        assert not obs.OBS.enabled
        obs.emit("standalone", n=1)
        assert events_enabled.ring.events()[-1].fields == {"n": 1}


class TestPipelineEvents:
    def test_flush_store_and_verify_events_share_correlation(
        self, events_enabled, tedb, participants
    ):
        session = tedb.session(participants["p1"])
        session.insert("A", 1)
        session.update("A", 2)
        flushes = events_enabled.ring.of_kind("collector.flush")
        batches = events_enabled.ring.of_kind("store.batch")
        assert len(flushes) == 2
        assert len(batches) == 2
        # collector → store correlation: each flush's batch shares its id
        for flush, batch in zip(flushes, batches):
            assert flush.corr is not None
            assert flush.corr == batch.corr
        tedb.verify("A")
        reports = events_enabled.ring.of_kind("verify.report")
        assert len(reports) == 1
        assert reports[0].fields["ok"] is True

    def test_event_stream_deterministic_modulo_ts(self):
        def run():
            from repro.core.system import TamperEvidentDatabase

            log = obs.enable_events()
            try:
                db = TamperEvidentDatabase(seed=11, key_bits=512)
                session = db.session(db.enroll("p"))
                session.insert("x", 1)
                session.update("x", 2)
                db.verify("x")
                return [
                    {k: v for k, v in e.to_dict().items() if k != "ts"}
                    for e in log.ring.events()
                ]
            finally:
                obs.disable_events()

        assert run() == run()
