"""Cross-boundary plane: traceparent codec, stitching, alert sinks."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.plane import (
    FileAlertSink,
    LogAlertSink,
    WebhookAlertSink,
    encode_traceparent,
    parse_traceparent,
    stitch_traces,
    valid_correlation_id,
)
from repro.obs.tracing import Tracer


class TestTraceparentCodec:
    def test_roundtrip_recovers_native_ids(self):
        context = ("5db5-1", "5db5-2a")
        header = encode_traceparent(context)
        assert header is not None
        assert parse_traceparent(header) == context

    def test_header_is_w3c_shaped(self):
        header = encode_traceparent(("1f-2", "3-4"))
        version, trace, span, flags = header.split("-")
        assert version == "00"
        assert len(trace) == 32
        assert len(span) == 16
        assert flags == "01"

    def test_none_context_encodes_to_none(self):
        assert encode_traceparent(None) is None

    def test_overflowing_ids_refuse_to_encode(self):
        # A counter too wide for the 8-hex span field must not be
        # silently truncated into a *different* id on the far side.
        assert encode_traceparent(("1-1", "1-" + "f" * 9)) is None

    def test_non_native_ids_refuse_to_encode(self):
        assert encode_traceparent(("no dashes here", "1-2")) is None
        assert encode_traceparent(("1-2-3", "1-2")) is None

    @pytest.mark.parametrize("value", [
        None,
        "",
        "garbage",
        "00-zz-11-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",  # unknown version
        "00-" + "1" * 31 + "-" + "2" * 16 + "-01",  # short trace id
        "00-1-2-01\nX-Injected: 1",                 # header injection
    ])
    def test_hostile_headers_parse_to_none(self, value):
        assert parse_traceparent(value) is None

    def test_parse_tolerates_case_and_whitespace(self):
        header = encode_traceparent(("ab-1", "cd-2"))
        assert parse_traceparent("  " + header.upper() + "  ") == ("ab-1", "cd-2")


class TestCorrelationValidation:
    @pytest.mark.parametrize("value", ["c0", "req-1", "a.b:c_d", "X" * 64])
    def test_accepts_conservative_tokens(self, value):
        assert valid_correlation_id(value)

    @pytest.mark.parametrize("value", [
        None, "", "has space", 'quo"te', "new\nline", "tab\there", "X" * 65,
    ])
    def test_rejects_hostile_values(self, value):
        assert not valid_correlation_id(value)


class TestStitchTraces:
    def test_remote_root_reparents_under_named_parent(self):
        client = Tracer()
        with client.span("client.request") as client_span:
            context = client.context()
        server = Tracer()
        with server.span_remote("http.request", context):
            with server.span("store.batch"):
                pass
        roots = stitch_traces(list(client.traces) + list(server.traces))
        assert [r.name for r in roots] == ["client.request"]
        names = [s.name for s in roots[0].iter_spans()]
        assert names == ["client.request", "http.request", "store.batch"]
        assert {s.trace_id for s in roots[0].iter_spans()} == {
            client_span.trace_id
        }

    def test_unrelated_roots_stay_separate(self):
        a, b = Tracer(), Tracer()
        with a.span("one"):
            pass
        with b.span("two"):
            pass
        roots = stitch_traces(list(a.traces) + list(b.traces))
        assert sorted(r.name for r in roots) == ["one", "two"]


class TestLogAlertSink:
    def test_renders_alert_and_health_lines(self):
        stream = io.StringIO()
        sink = LogAlertSink(stream=stream)
        sink.publish({
            "type": "alert", "tenant": "t1", "severity": "critical",
            "rule": "tamper", "message": "R1 failed",
        })
        sink.publish({
            "type": "health", "tenant": "t1",
            "previous": "ok", "health": "tampered",
        })
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[repro-monitor] tenant t1: critical tamper: R1 failed"
        assert lines[1] == "[repro-monitor] tenant t1: health ok -> tampered"
        assert sink.published == 2

    def test_closed_stream_swallowed(self):
        stream = io.StringIO()
        stream.close()
        sink = LogAlertSink(stream=stream)
        sink.publish({"type": "alert", "tenant": "t"})  # must not raise
        assert sink.published == 0


class TestFileAlertSink:
    def test_appends_jsonl(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = FileAlertSink(str(path))
        sink.publish({"type": "alert", "tenant": "a", "rule": "tamper"})
        sink.publish({"type": "health", "tenant": "a", "health": "ok"})
        sink.close()
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["type"] for r in rows] == ["alert", "health"]
        assert sink.published == 2

    def test_publish_after_close_is_dropped(self, tmp_path):
        sink = FileAlertSink(str(tmp_path / "a.jsonl"))
        sink.close()
        sink.publish({"type": "alert"})  # must not raise
        assert sink.published == 0


class TestWebhookAlertSink:
    def test_posts_json_payload(self):
        seen = []

        class _Response:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def opener(request, timeout):
            seen.append((request, timeout))
            return _Response()

        sink = WebhookAlertSink("http://hook.example/alerts", opener=opener)
        sink.publish({"type": "alert", "tenant": "a"})
        assert sink.delivered == 1 and sink.failed == 0
        request, timeout = seen[0]
        assert request.get_method() == "POST"
        assert json.loads(request.data.decode("utf-8"))["tenant"] == "a"
        assert timeout == sink.timeout

    def test_delivery_failure_counted_not_raised(self):
        def opener(request, timeout):
            raise OSError("connection refused")

        sink = WebhookAlertSink("http://down.example", opener=opener)
        sink.publish({"type": "alert"})  # must not raise
        assert sink.failed == 1 and sink.delivered == 0
