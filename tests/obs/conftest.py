"""Observability tests toggle global state; always restore the default."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture
def obs_enabled():
    """Metrics + tracing on, clean registry; off again afterwards."""
    obs.enable(reset=True)
    yield obs.OBS
    obs.disable(reset=True)


@pytest.fixture
def obs_disabled():
    """Explicitly disabled and reset (the process default)."""
    obs.disable(reset=True)
    yield obs.OBS
    obs.disable(reset=True)
