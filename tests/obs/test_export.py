"""Exporter regressions, chiefly Prometheus label-value escaping."""

from __future__ import annotations

from repro.obs.export import _escape_label_value, to_prometheus
from repro.obs.metrics import MetricsRegistry


class TestLabelValueEscaping:
    def test_backslash_quote_and_newline(self):
        assert _escape_label_value('pa\\th "x"\nend') == 'pa\\\\th \\"x\\"\\nend'

    def test_backslash_escaped_before_quotes(self):
        # Order matters: escaping quotes first would double-escape the
        # backslash that the quote escape itself introduces.
        assert _escape_label_value('\\"') == '\\\\\\"'

    def test_plain_values_untouched(self):
        assert _escape_label_value("memory") == "memory"

    def test_prometheus_output_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("store.errors", path='C:\\data\n"prod"').inc()
        text = to_prometheus(registry.snapshot())
        line = next(l for l in text.splitlines() if not l.startswith("#"))
        assert 'path="C:\\\\data\\n\\"prod\\""' in line
        # The raw newline must not survive into the exposition line.
        assert "\n" not in line

    def test_escaped_output_has_one_line_per_sample(self):
        registry = MetricsRegistry()
        registry.counter("c", note="a\nb").inc()
        registry.gauge("g", note="x\\y").set(2)
        text = to_prometheus(registry.snapshot())
        samples = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(samples) == 2
