"""Instrumented hot paths: real workloads must report real numbers.

Three properties matter beyond "the counters move":

- **Determinism** — two identically-seeded runs produce identical metric
  *counts* (timing histograms aside), so metrics are usable as workload
  fingerprints.
- **No-op mode** — with observability disabled (the default), hot loops
  never reach the registry at all (``registry.calls`` stays 0).
- **Parallel equivalence** — worker-process metrics merge back so a
  parallel verification reports the same counts and the same span set as
  a serial one.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.system import TamperEvidentDatabase
from repro.core.verifier import ParallelVerifier, Verifier
from repro.provenance.store import SQLiteProvenanceStore


def _workload(seed: int = 7, objects: int = 4, updates: int = 2):
    """Seeded insert/update/aggregate; returns the database."""
    db = TamperEvidentDatabase(key_bits=512, seed=seed)
    session = db.session(db.enroll("w"))
    for i in range(objects):
        session.insert(f"obj{i}", i)
        for u in range(updates):
            session.update(f"obj{i}", i * 100 + u)
    session.aggregate(["obj0", "obj1"], "agg")
    return db


def _count_snapshot():
    """Counters plus histogram *counts* — everything deterministic."""
    snap = obs.snapshot()
    return (
        snap["counters"],
        snap["gauges"],
        {k: v["count"] for k, v in snap["histograms"].items()},
    )


class TestHotPathsReport:
    def test_workload_populates_every_subsystem(self, obs_enabled):
        db = _workload()
        report = db.verify("obj0")
        assert report.ok
        counters = obs.snapshot()["counters"]
        # crypto
        assert counters["crypto.sign.count{scheme=rsa-pkcs1v15}"] > 0
        assert counters["crypto.verify.count{scheme=rsa-pkcs1v15}"] > 0
        assert counters["hash.digests{algorithm=sha1}"] > 0
        assert counters["hash.bytes{algorithm=sha1}"] > 0
        # merkle + collector
        assert counters["merkle.rehash.nodes{strategy=economical}"] > 0
        assert counters["collector.records.flushed"] > 0
        assert counters["collector.operations{kind=primitive}"] > 0
        assert counters["collector.operations{kind=aggregate}"] == 1
        # store + verifier
        assert counters["store.append.records{store=memory}"] > 0
        assert counters["verify.runs"] == 1
        assert counters["verify.records"] == report.records_checked

    def test_sqlite_store_metrics(self, obs_enabled, tmp_path):
        from repro.bench.experiments import _fig8_style_records

        records = _fig8_style_records(40)
        with SQLiteProvenanceStore(str(tmp_path / "p.db")) as store:
            store.append_many(records[:30])
            for record in records[30:]:
                store.append(record)
        snap = obs.snapshot()
        counters = snap["counters"]
        assert counters["store.append.batches{store=sqlite}"] == 1
        assert counters["store.append.records{store=sqlite}"] == 40
        assert snap["histograms"]["store.batch.size{store=sqlite}"]["count"] == 1
        assert snap["histograms"]["store.txn.seconds"]["count"] == 11

    def test_seed_gauge_surfaces(self, obs_enabled):
        TamperEvidentDatabase(key_bits=512, seed=99)
        assert obs.snapshot()["gauges"]["db.rng.seed"] == 99


class TestDeterminism:
    def test_same_seed_same_counts(self):
        obs.enable(reset=True)
        try:
            db = _workload(seed=13)
            db.verify("obj0")
            first = _count_snapshot()
            obs.enable(reset=True)
            db = _workload(seed=13)
            db.verify("obj0")
            second = _count_snapshot()
        finally:
            obs.disable(reset=True)
        assert first == second

    def test_seeded_databases_are_identical(self):
        db_a = _workload(seed=5, objects=2, updates=1)
        db_b = _workload(seed=5, objects=2, updates=1)
        records_a = list(db_a.provenance_store.all_records())
        records_b = list(db_b.provenance_store.all_records())
        assert [r.checksum for r in records_a] == [r.checksum for r in records_b]


class TestNoopMode:
    def test_disabled_append_loop_never_touches_registry(self, obs_disabled):
        registry = obs.OBS.registry
        _workload(objects=3, updates=2)  # insert/update/aggregate hot loop
        assert registry.calls == 0

    def test_disabled_full_pipeline_never_touches_registry(
        self, obs_disabled, tmp_path
    ):
        from repro.bench.experiments import _fig8_style_records

        registry = obs.OBS.registry
        db = _workload(objects=3, updates=2)
        report = db.verify("obj0", workers=1)
        assert report.ok
        with SQLiteProvenanceStore(str(tmp_path / "p.db")) as store:
            store.append_many(_fig8_style_records(40))
        assert registry.calls == 0
        assert len(registry) == 0
        assert obs.OBS.tracer.traces == []


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def world(self):
        db = _workload(seed=21, objects=6, updates=3)
        return (
            list(db.provenance_store.all_records()),
            db.keystore(),
        )

    def test_parallel_counts_match_serial(self, world):
        records, keystore = world
        obs.enable(reset=True)
        try:
            serial_report = Verifier(keystore).verify_records(records)
            serial = _count_snapshot()
            obs.enable(reset=True)
            parallel_report = ParallelVerifier(keystore, workers=2).verify_records(
                records
            )
            parallel = _count_snapshot()
        finally:
            obs.disable(reset=True)
        assert serial_report == parallel_report
        # Identical modulo worker bookkeeping (chunks/chunk timing exist
        # only in parallel mode).
        strip = lambda d: {
            k: v for k, v in d.items() if not k.startswith("verify.worker")
        }
        assert strip(parallel[0]) == strip(serial[0])
        assert strip(parallel[2]) == strip(serial[2])
        assert parallel[0]["verify.worker.chunks"] > 0

    def test_worker_spans_reparent_into_one_tree(self, world):
        records, keystore = world
        obs.enable(reset=True)
        try:
            Verifier(keystore).verify_records(records)
            serial_root = obs.OBS.tracer.last_trace()
            ParallelVerifier(keystore, workers=2).verify_records(records)
            parallel_root = obs.OBS.tracer.last_trace()
        finally:
            obs.disable(reset=True)

        assert serial_root.name == parallel_root.name == "verify"

        def chain_ids(root):
            return sorted(
                s.attrs["object_id"]
                for s in root.iter_spans()
                if s.name == "verify.chain"
            )

        # Same chain spans, re-rooted under the parent's verify span.
        assert chain_ids(parallel_root) == chain_ids(serial_root)
        workers = [
            s for s in parallel_root.iter_spans() if s.name == "verify.worker"
        ]
        assert workers
        assert all(s.worker_pid is not None for s in workers)
        assert all(s.parent_id == parallel_root.span_id for s in workers)
        # Every chain span sits under a worker span, not the root directly.
        for worker in workers:
            for child in worker.children:
                assert child.name == "verify.chain"


def _tamper_checksum(records):
    """Flip a byte in the first record's stored checksum (R1 must fire)."""
    import dataclasses

    tampered = list(records)
    victim = tampered[0]
    tampered[0] = dataclasses.replace(
        victim,
        checksum=bytes([victim.checksum[0] ^ 0xFF]) + victim.checksum[1:],
    )
    return tampered


class TestReportTallyEquivalence:
    def test_failure_counters_match_report_tally(self, obs_enabled):
        db = _workload(seed=31, objects=3, updates=2)
        tampered = _tamper_checksum(db.ship("obj1").records)
        report = Verifier(db.keystore()).verify_records(tampered)
        assert not report.ok

        tally = report.failure_tally()
        assert tally  # at least one requirement tripped
        counters = obs.snapshot()["counters"]
        for requirement, count in tally.items():
            assert counters[f"verify.failures{{requirement={requirement}}}"] == count

    def test_summary_renders_tallies(self, obs_enabled):
        db = _workload(seed=37, objects=2, updates=1)
        tampered = _tamper_checksum(db.ship("obj0").records)
        report = Verifier(db.keystore()).verify_records(tampered)
        summary = report.summary()
        assert "TAMPERING DETECTED" in summary
        for requirement, count in report.failure_tally().items():
            assert f"{requirement} x{count}" in summary
