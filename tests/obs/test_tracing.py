"""Tracer: span nesting, serialization, remote-context re-parenting."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.tracing import Span, Tracer, render_trace, trace_to_json


@pytest.fixture
def tracer():
    return Tracer()


class TestSpanNesting:
    def test_children_nest_under_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child.a"):
                pass
            with tracer.span("child.b") as b:
                with tracer.span("grandchild"):
                    pass
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert [c.name for c in b.children] == ["grandchild"]
        assert root.parent_id is None
        assert b.parent_id == root.span_id
        assert all(s.trace_id == root.trace_id for s in root.iter_spans())

    def test_finished_root_is_logged(self, tracer):
        with tracer.span("one"):
            pass
        assert tracer.last_trace().name == "one"

    def test_duration_positive_after_finish(self, tracer):
        with tracer.span("t") as s:
            pass
        assert s.duration >= 0.0
        assert s.end is not None

    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom") as s:
                raise ValueError("x")
        assert s.attrs["error"] == "ValueError"
        assert tracer.last_trace() is s

    def test_trace_log_is_bounded(self, tracer):
        for i in range(Tracer.MAX_TRACES + 10):
            with tracer.span(f"t{i}"):
                pass
        assert len(tracer.traces) == Tracer.MAX_TRACES
        assert tracer.traces[-1].name == f"t{Tracer.MAX_TRACES + 9}"


class TestSerialization:
    def test_roundtrip_preserves_structure(self, tracer):
        with tracer.span("root", key="v") as root:
            with tracer.span("child"):
                pass
        clone = Span.from_dict(root.to_dict())
        assert clone.name == "root"
        assert clone.attrs == {"key": "v"}
        assert [c.name for c in clone.children] == ["child"]
        assert clone.duration == pytest.approx(root.duration)

    def test_trace_to_json(self, tracer):
        with tracer.span("root"):
            pass
        data = json.loads(trace_to_json(tracer.last_trace()))
        assert data["name"] == "root"
        assert data["children"] == []


class TestWallStart:
    def test_wall_start_is_epoch_time(self, tracer):
        import time

        before = time.time()
        with tracer.span("t") as s:
            pass
        assert before - 1.0 <= s.wall_start <= time.time() + 1.0

    def test_wall_start_roundtrips_to_dict(self, tracer):
        with tracer.span("t") as s:
            pass
        data = s.to_dict()
        assert data["wall_start"] == s.wall_start
        assert Span.from_dict(data).wall_start == s.wall_start

    def test_from_dict_defaults_missing_wall_start(self, tracer):
        with tracer.span("t") as s:
            pass
        data = s.to_dict()
        del data["wall_start"]  # dumps from before the field existed
        assert Span.from_dict(data).wall_start == 0.0

    def test_wall_start_preserved_through_worker_adoption(self):
        parent = Tracer()
        with parent.span("verify") as verify_span:
            worker = Tracer()
            worker.install_remote_context(parent.context())
            with worker.span("verify.worker") as worker_span:
                pass
            wall = worker_span.wall_start
            adopted = parent.adopt(worker.drain())
        assert adopted[0].wall_start == wall
        assert verify_span.children[0].wall_start == wall


class TestRemoteContext:
    def test_worker_spans_reparent_under_remote_parent(self):
        parent = Tracer()
        with parent.span("verify") as verify_span:
            context = parent.context()

            # Simulate the worker process.
            worker = Tracer()
            worker.install_remote_context(context)
            with worker.span("verify.worker"):
                with worker.span("verify.chain"):
                    pass
            shipped = worker.drain()
            assert worker.traces == []  # drained

            adopted = parent.adopt(shipped)
        assert [s.name for s in adopted] == ["verify.worker"]
        assert adopted[0].parent_id == verify_span.span_id
        assert adopted[0].trace_id == verify_span.trace_id
        names = [s.name for s in verify_span.iter_spans()]
        assert names == ["verify", "verify.worker", "verify.chain"]

    def test_adopt_without_open_span_logs_roots(self, tracer):
        worker = Tracer()
        worker.install_remote_context(("t1", "s1"))
        with worker.span("w"):
            pass
        tracer.adopt(worker.drain())
        assert tracer.last_trace().name == "w"


class TestSpanRemote:
    def test_span_remote_adopts_caller_context(self, tracer):
        client = Tracer()
        with client.span("client.request") as client_span:
            context = client.context()
        with tracer.span_remote("http.request", context) as server_span:
            pass
        assert server_span.trace_id == client_span.trace_id
        assert server_span.parent_id == client_span.span_id
        assert server_span.remote_root is True
        # A remote-rooted span is a loggable trace root on this side.
        assert tracer.last_trace() is server_span

    def test_span_remote_without_context_is_plain_root(self, tracer):
        with tracer.span_remote("http.request", None) as span:
            pass
        assert span.parent_id is None
        assert span.remote_root is False

    def test_children_nest_under_remote_root(self, tracer):
        with tracer.span_remote("http.request", ("t-1", "s-1")) as root:
            with tracer.span("store.batch"):
                pass
        assert [c.name for c in root.children] == ["store.batch"]
        assert root.children[0].trace_id == "t-1"

    def test_concurrent_remote_spans_keep_their_own_parents(self, tracer):
        # Two server threads handling requests from different clients
        # must not cross-parent (the process-global remote context would).
        import threading

        def handle(context, results):
            with tracer.span_remote("http.request", context) as span:
                pass
            results.append(span)

        results = []
        threads = [
            threading.Thread(target=handle, args=((f"t-{i}", f"s-{i}"), results))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert {(s.trace_id, s.parent_id) for s in results} == {
            (f"t-{i}", f"s-{i}") for i in range(4)
        }

    def test_remote_root_not_serialized(self, tracer):
        # remote_root is process-local bookkeeping; dumps stay stable.
        with tracer.span_remote("r", ("t-1", "s-1")) as span:
            pass
        data = span.to_dict()
        assert "remote_root" not in data
        assert Span.from_dict(data).remote_root is False

    def test_module_helper_noop_when_disabled(self, obs_disabled):
        with obs.span_remote("x", ("t-1", "s-1")):
            pass
        assert obs.OBS.tracer.traces == []

    def test_module_helper_records_when_enabled(self, obs_enabled):
        with obs.span_remote("x", ("t-1", "s-1")) as span:
            pass
        assert span.trace_id == "t-1"


class TestRender:
    def test_render_tree_shape(self, tracer):
        with tracer.span("verify", records=3):
            with tracer.span("verify.chain", object_id="A"):
                pass
            with tracer.span("verify.chain", object_id="B"):
                pass
        text = render_trace(tracer.last_trace())
        lines = text.splitlines()
        assert lines[0].startswith("verify (records=3)")
        assert "|-- verify.chain (object_id=A)" in lines[1]
        assert "`-- verify.chain (object_id=B)" in lines[2]
        assert "ms" in lines[0]


class TestModuleHelpers:
    def test_span_is_noop_when_disabled(self, obs_disabled):
        handle = obs.span("anything")
        assert handle is obs.span("other")  # the shared no-op instance
        with handle:
            pass
        assert obs.OBS.tracer.traces == []

    def test_span_records_when_enabled(self, obs_enabled):
        with obs.span("x", a=1):
            pass
        assert obs.OBS.tracer.last_trace().name == "x"

    def test_worker_config_none_when_disabled(self, obs_disabled):
        assert obs.worker_config() is None

    def test_apply_worker_config_installs_fresh_state(self, obs_enabled):
        obs.OBS.registry.counter("inherited").inc()
        config = obs.worker_config()
        old_registry = obs.OBS.registry
        obs.apply_worker_config(config)
        assert obs.OBS.registry is not old_registry
        assert len(obs.OBS.registry) == 0
        assert obs.OBS.enabled and obs.OBS.tracing
