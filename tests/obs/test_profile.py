"""Phase-attributed profiler: attribution, sampling, merge, cost model."""

from __future__ import annotations

import pickle
import time

import pytest

from repro import obs
from repro.obs.export import to_json, to_prometheus
from repro.obs.profile import PHASES, CostModel, PhaseProfiler


@pytest.fixture
def profiler():
    """A profiler attached to OBS; detached again afterwards."""
    prof = obs.enable_profile(reset=True)
    yield prof
    obs.disable_profile()


class TestPhaseProfiler:
    def test_phase_counts_calls_and_time(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("hash"):
                pass
        snap = prof.snapshot()
        assert snap["hash"]["calls"] == 3
        assert snap["hash"]["timed_calls"] == 3
        assert snap["hash"]["total_s"] >= 0.0

    def test_self_time_excludes_nested_children(self):
        prof = PhaseProfiler()
        with prof.phase("proof.build"):
            with prof.phase("rsa.sign"):
                time.sleep(0.02)
        snap = prof.snapshot()
        # The parent's total includes the child; its self time does not.
        assert snap["proof.build"]["total_s"] >= snap["rsa.sign"]["total_s"]
        assert snap["proof.build"]["self_s"] < snap["rsa.sign"]["total_s"]
        assert snap["rsa.sign"]["self_s"] == pytest.approx(
            snap["rsa.sign"]["total_s"]
        )

    def test_total_self_seconds_partitions_wall_time(self):
        prof = PhaseProfiler()
        with prof.phase("verify.chain"):
            with prof.phase("hash"):
                time.sleep(0.01)
            with prof.phase("rsa.verify"):
                time.sleep(0.01)
        snap = prof.snapshot()
        # Self times sum to (approximately) the outermost total.
        self_sum = sum(s["self_s"] for s in snap.values())
        assert self_sum == pytest.approx(
            snap["verify.chain"]["total_s"], rel=0.05
        )

    def test_reentrant_same_phase_not_double_counted(self):
        prof = PhaseProfiler()
        with prof.phase("hash"):
            with prof.phase("hash"):
                time.sleep(0.01)
        snap = prof.snapshot()
        assert snap["hash"]["calls"] == 2
        # Total is inclusive per entry, but self-time still partitions:
        # the inner entry's elapsed is subtracted from the outer's self.
        assert snap["hash"]["self_s"] <= snap["hash"]["total_s"]

    def test_sampling_counts_all_calls_times_some(self):
        prof = PhaseProfiler(sample_every=4)
        for _ in range(10):
            with prof.phase("store.io"):
                pass
        snap = prof.snapshot()
        assert snap["store.io"]["calls"] == 10
        assert snap["store.io"]["timed_calls"] == 3  # calls 1, 5, 9

    def test_sampling_scales_timed_seconds(self):
        prof = PhaseProfiler(sample_every=2)
        for _ in range(4):
            with prof.phase("journal"):
                time.sleep(0.005)
        sampled = prof.snapshot()["journal"]["total_s"]
        # 2 timed calls of ~5ms, scaled x2 ≈ the true ~20ms total.
        assert sampled == pytest.approx(0.02, rel=0.5)

    def test_dump_merge_roundtrip(self):
        a = PhaseProfiler()
        b = PhaseProfiler()
        with a.phase("hash"):
            pass
        with b.phase("hash"):
            pass
        with b.phase("rsa.sign"):
            pass
        dump = b.dump()
        pickle.dumps(dump)  # must survive a pool result queue
        a.merge(dump)
        snap = a.snapshot()
        assert snap["hash"]["calls"] == 2
        assert snap["rsa.sign"]["calls"] == 1

    def test_reset_clears_stats(self):
        prof = PhaseProfiler()
        with prof.phase("hash"):
            pass
        prof.reset()
        assert prof.snapshot() == {}
        assert prof.total_calls() == 0

    def test_render_mentions_every_phase(self):
        prof = PhaseProfiler()
        with prof.phase("hash"):
            pass
        with prof.phase("rsa.sign"):
            pass
        text = prof.render()
        assert "hash" in text and "rsa.sign" in text

    def test_threads_keep_separate_stacks(self):
        import threading

        prof = PhaseProfiler()

        def work():
            for _ in range(20):
                with prof.phase("hash"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert prof.snapshot()["hash"]["calls"] == 40

    def test_emit_spans_opens_tracer_spans(self, obs_enabled):
        prof = obs.enable_profile(reset=True, emit_spans=True)
        try:
            with obs.span("outer"):
                with prof.phase("hash"):
                    pass
            root = obs.OBS.tracer.last_trace()
            names = [child.name for child in root.children]
            assert "phase.hash" in names
        finally:
            obs.disable_profile()


class TestInstrumentationSites:
    """The instrumented layers report into an attached profiler."""

    def test_workload_attributes_known_phases(self, profiler):
        from repro.core.system import TamperEvidentDatabase

        db = TamperEvidentDatabase(seed=7, key_bits=512)
        session = db.session(db.enroll("p"))
        session.insert("x", 1)
        session.update("x", 2)
        db.verify("x")
        snap = profiler.snapshot()
        for phase in ("hash", "rsa.sign", "rsa.verify", "store.io",
                      "collector.flush", "verify.chain"):
            assert phase in snap, f"phase {phase} never fired"
            assert snap[phase]["calls"] > 0
        # Every observed phase is part of the documented taxonomy.
        assert set(snap) <= set(PHASES)

    def test_merkle_batch_scheme_attributes_proof_phases(self, profiler):
        from repro.core.system import TamperEvidentDatabase

        db = TamperEvidentDatabase(
            seed=7, key_bits=512, signature_scheme="merkle-batch"
        )
        session = db.session(db.enroll("p"))
        with session.complex_operation():
            for i in range(4):
                session.insert(f"x{i}", i)
        db.verify("x0")
        snap = profiler.snapshot()
        for phase in ("proof.build", "proof.check", "merkle.leaf",
                      "merkle.root", "merkle.path"):
            assert phase in snap, f"phase {phase} never fired"

    def test_disabled_profiler_attributes_nothing(self):
        from repro.core.system import TamperEvidentDatabase

        obs.disable_profile()
        db = TamperEvidentDatabase(seed=7, key_bits=512)
        session = db.session(db.enroll("p"))
        session.insert("x", 1)
        assert obs.OBS.profiler is None


class TestSerialParallelAgreement:
    def test_parallel_verify_merges_worker_phase_counts(self):
        from repro.core.system import TamperEvidentDatabase
        from repro.core.verifier import ParallelVerifier, Verifier

        db = TamperEvidentDatabase(seed=13, key_bits=512)
        session = db.session(db.enroll("p"))
        for i in range(6):
            session.insert(f"obj{i}", i)
            session.update(f"obj{i}", i + 100)
        records = list(db.provenance_store.all_records())
        keystore = db.keystore()

        prof = obs.enable_profile(reset=True)
        try:
            Verifier(keystore).verify_records(records)
            serial = prof.snapshot()

            obs.enable_profile(reset=True)
            prof = obs.OBS.profiler
            ParallelVerifier(keystore, workers=2).verify_records(records)
            parallel = prof.snapshot()
        finally:
            obs.disable_profile()

        # Same work, same attribution: the verification phases agree on
        # call counts exactly (wall times cannot, so they are not
        # compared).  Parent-side phases (store reads, dispatch) differ
        # by design, so compare the per-record verification phases.
        for phase in ("verify.chain", "rsa.verify", "hash"):
            assert phase in serial and phase in parallel
            assert serial[phase]["calls"] == parallel[phase]["calls"], phase


class TestCostModel:
    def _profiler_with_work(self):
        prof = PhaseProfiler()
        for _ in range(4):
            with prof.phase("rsa.sign"):
                time.sleep(0.002)
        return prof

    def test_per_record_and_per_batch_attribution(self):
        prof = self._profiler_with_work()
        cost = CostModel.from_profiler(prof, records=8, batches=2)
        per_record = cost.per_record()
        per_batch = cost.per_batch()
        total = prof.snapshot()["rsa.sign"]["self_s"]
        assert per_record["rsa.sign"] == pytest.approx(total / 8)
        assert per_batch["rsa.sign"] == pytest.approx(total / 2)

    def test_to_dict_shape(self):
        cost = CostModel.from_profiler(self._profiler_with_work(), records=8)
        data = cost.to_dict()
        assert data["records"] == 8
        assert "rsa.sign" in data["phases"]
        assert "rsa.sign" in data["per_record_s"]
        assert data["total_self_s"] > 0

    def test_snapshot_feeds_existing_exporters(self):
        cost = CostModel.from_profiler(self._profiler_with_work(), records=8)
        snap = cost.snapshot()
        prom = to_prometheus(snap)
        assert 'repro_profile_phase_calls_total{phase="rsa.sign"} 4' in prom
        assert 'repro_cost_per_record_seconds{phase="rsa.sign"}' in prom
        assert "rsa.sign" in to_json(snap)

    def test_zero_records_yields_no_per_record_costs(self):
        cost = CostModel.from_profiler(self._profiler_with_work())
        assert cost.per_record() == {}
        assert cost.per_batch() == {}


class TestSwitchboard:
    def test_enable_profile_reuses_unless_reset(self):
        first = obs.enable_profile()
        second = obs.enable_profile()
        assert second is first
        third = obs.enable_profile(reset=True)
        assert third is not first
        obs.disable_profile()

    def test_enable_profile_new_sample_rate_replaces(self):
        first = obs.enable_profile(reset=True)
        second = obs.enable_profile(sample_every=8)
        assert second is not first
        assert second.sample_every == 8
        obs.disable_profile()

    def test_disable_profile_detaches_and_returns(self):
        prof = obs.enable_profile(reset=True)
        assert obs.disable_profile() is prof
        assert obs.OBS.profiler is None
        assert obs.disable_profile() is None

    def test_worker_config_carries_profiler(self):
        obs.enable_profile(reset=True, sample_every=4)
        try:
            config = obs.worker_config()
            assert config is not None
            assert config["profile"] == {"sample_every": 4}
        finally:
            obs.disable_profile()
        # Without any observability, there is nothing to ship.
        assert obs.worker_config() is None

    def test_apply_worker_config_installs_fresh_profiler(self):
        obs.enable_profile(reset=True, sample_every=4)
        config = obs.worker_config()
        parent = obs.OBS.profiler
        try:
            obs.apply_worker_config(config)
            worker_prof = obs.OBS.profiler
            assert worker_prof is not None
            assert worker_prof is not parent
            assert worker_prof.sample_every == 4
        finally:
            obs.disable(reset=True)
            obs.disable_profile()
