"""MetricsRegistry: counters, gauges, histograms, dump/merge, exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import to_json, to_prometheus, render_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_metric,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_inc_and_default_amount(self, registry):
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter("x").value == 5

    def test_labels_key_distinct_series(self, registry):
        registry.counter("ops", kind="a").inc()
        registry.counter("ops", kind="b").inc(2)
        snap = registry.snapshot()["counters"]
        assert snap["ops{kind=a}"] == 1
        assert snap["ops{kind=b}"] == 2

    def test_label_order_is_canonical(self, registry):
        registry.counter("x", b="2", a="1").inc()
        registry.counter("x", a="1", b="2").inc()
        assert registry.counter("x", b="2", a="1").value == 2
        assert format_metric("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"

    def test_calls_meta_counter(self, registry):
        assert registry.calls == 0
        registry.counter("x").inc()
        registry.gauge("y").set(1)
        registry.histogram("z").observe(1.0)
        # +1 per accessor use above, including the assert-time lookups
        assert registry.calls == 3


class TestGauges:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc()
        g.dec(3)
        assert registry.snapshot()["gauges"]["depth"] == 8


class TestHistograms:
    def test_summary_fields(self, registry):
        h = registry.histogram("lat")
        for v in (0.001, 0.002, 0.003, 0.004):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(0.004)
        assert s["mean"] == pytest.approx(0.0025)
        assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_percentiles_clamped_to_observed_range(self):
        h = Histogram("x", ())
        h.observe(5.0)
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == 5.0

    def test_empty_histogram(self):
        h = Histogram("x", ())
        assert h.percentile(95) == 0.0
        assert h.summary()["count"] == 0

    def test_default_buckets_span_latencies_and_batch_sizes(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 1e5  # batch sizes fit too

    def test_out_of_range_value_lands_in_inf_bucket(self):
        h = Histogram("x", buckets=(1.0, 2.0), labels=())
        h.observe(100.0)
        assert h.bucket_counts[-1] == 1


class TestReset:
    def test_reset_clears_everything(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1)
        registry.reset()
        assert len(registry) == 0
        assert registry.calls == 0


class TestDumpMerge:
    def test_merge_adds_counters_and_histograms(self, registry):
        worker = MetricsRegistry()
        worker.counter("n", k="v").inc(3)
        worker.histogram("h").observe(0.5)
        worker.gauge("g").set(7)

        registry.counter("n", k="v").inc(1)
        registry.histogram("h").observe(1.5)
        registry.merge(worker.dump())

        snap = registry.snapshot()
        assert snap["counters"]["n{k=v}"] == 4
        assert snap["gauges"]["g"] == 7
        h = snap["histograms"]["h"]
        assert h["count"] == 2
        assert h["min"] == pytest.approx(0.5)
        assert h["max"] == pytest.approx(1.5)

    def test_dump_is_picklable(self, registry):
        import pickle

        registry.counter("a").inc()
        registry.histogram("b").observe(2.0)
        rt = pickle.loads(pickle.dumps(registry.dump()))
        fresh = MetricsRegistry()
        fresh.merge(rt)
        assert fresh.snapshot()["counters"]["a"] == 1

    def test_merge_mismatched_buckets_preserves_count_and_sum(self, registry):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        registry.histogram("h").observe(3.0)  # default buckets
        registry.merge(worker.dump())
        s = registry.snapshot()["histograms"]["h"]
        assert s["count"] == 3


class TestExporters:
    def test_prometheus_text(self, registry):
        registry.counter("hash.digests", algorithm="sha1").inc(5)
        registry.gauge("db.rng.seed").set(42)
        registry.histogram("crypto.sign.seconds").observe(0.01)
        text = to_prometheus(registry.snapshot())
        assert 'repro_hash_digests_total{algorithm="sha1"} 5' in text
        assert "repro_db_rng_seed 42" in text
        assert 'repro_crypto_sign_seconds{quantile="0.5"}' in text
        assert "repro_crypto_sign_seconds_count 1" in text

    def test_json_roundtrip(self, registry):
        registry.counter("a").inc(2)
        data = json.loads(to_json(registry.snapshot()))
        assert data["counters"]["a"] == 2

    def test_render_text_contains_tables(self, registry):
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        text = render_text(registry.snapshot())
        assert "counters" in text
        assert "histograms" in text
        assert "p95" in text
