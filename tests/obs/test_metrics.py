"""MetricsRegistry: counters, gauges, histograms, dump/merge, exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import to_json, to_prometheus, render_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_metric,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_inc_and_default_amount(self, registry):
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter("x").value == 5

    def test_labels_key_distinct_series(self, registry):
        registry.counter("ops", kind="a").inc()
        registry.counter("ops", kind="b").inc(2)
        snap = registry.snapshot()["counters"]
        assert snap["ops{kind=a}"] == 1
        assert snap["ops{kind=b}"] == 2

    def test_label_order_is_canonical(self, registry):
        registry.counter("x", b="2", a="1").inc()
        registry.counter("x", a="1", b="2").inc()
        assert registry.counter("x", b="2", a="1").value == 2
        assert format_metric("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"

    def test_calls_meta_counter(self, registry):
        assert registry.calls == 0
        registry.counter("x").inc()
        registry.gauge("y").set(1)
        registry.histogram("z").observe(1.0)
        # +1 per accessor use above, including the assert-time lookups
        assert registry.calls == 3


class TestGauges:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc()
        g.dec(3)
        assert registry.snapshot()["gauges"]["depth"] == 8


class TestHistograms:
    def test_summary_fields(self, registry):
        h = registry.histogram("lat")
        for v in (0.001, 0.002, 0.003, 0.004):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(0.004)
        assert s["mean"] == pytest.approx(0.0025)
        assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_percentiles_clamped_to_observed_range(self):
        h = Histogram("x", ())
        h.observe(5.0)
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == 5.0

    def test_empty_histogram(self):
        h = Histogram("x", ())
        assert h.percentile(95) == 0.0
        assert h.summary()["count"] == 0

    def test_default_buckets_span_latencies_and_batch_sizes(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 1e5  # batch sizes fit too

    def test_out_of_range_value_lands_in_inf_bucket(self):
        h = Histogram("x", buckets=(1.0, 2.0), labels=())
        h.observe(100.0)
        assert h.bucket_counts[-1] == 1


class TestReset:
    def test_reset_clears_everything(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1)
        registry.reset()
        assert len(registry) == 0
        assert registry.calls == 0


class TestDumpMerge:
    def test_merge_adds_counters_and_histograms(self, registry):
        worker = MetricsRegistry()
        worker.counter("n", k="v").inc(3)
        worker.histogram("h").observe(0.5)
        worker.gauge("g").set(7)

        registry.counter("n", k="v").inc(1)
        registry.histogram("h").observe(1.5)
        registry.merge(worker.dump())

        snap = registry.snapshot()
        assert snap["counters"]["n{k=v}"] == 4
        assert snap["gauges"]["g"] == 7
        h = snap["histograms"]["h"]
        assert h["count"] == 2
        assert h["min"] == pytest.approx(0.5)
        assert h["max"] == pytest.approx(1.5)

    def test_dump_is_picklable(self, registry):
        import pickle

        registry.counter("a").inc()
        registry.histogram("b").observe(2.0)
        rt = pickle.loads(pickle.dumps(registry.dump()))
        fresh = MetricsRegistry()
        fresh.merge(rt)
        assert fresh.snapshot()["counters"]["a"] == 1

    def test_merge_mismatched_buckets_preserves_count_and_sum(self, registry):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        registry.histogram("h").observe(3.0)  # default buckets
        registry.merge(worker.dump())
        s = registry.snapshot()["histograms"]["h"]
        assert s["count"] == 3


class TestMergeEdgeCases:
    def test_merge_disjoint_label_sets(self, registry):
        worker = MetricsRegistry()
        worker.counter("ops", kind="a").inc(2)
        worker.counter("ops", kind="b", store="memory").inc(3)
        registry.counter("ops").inc(1)  # unlabelled series, same name
        registry.merge(worker.dump())
        snap = registry.snapshot()["counters"]
        assert snap["ops"] == 1
        assert snap["ops{kind=a}"] == 2
        assert snap["ops{kind=b,store=memory}"] == 3

    def test_merge_empty_source_is_noop(self, registry):
        registry.counter("a").inc(5)
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        registry.merge(MetricsRegistry().dump())
        assert registry.snapshot() == before

    def test_merge_into_empty_registry(self, registry):
        worker = MetricsRegistry()
        worker.gauge("depth", pool="x").set(4)
        worker.histogram("h").observe(0.25)
        registry.merge(worker.dump())
        snap = registry.snapshot()
        assert snap["gauges"]["depth{pool=x}"] == 4
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_preserves_percentiles_within_bucket_resolution(self, registry):
        # Two shards each observe half the distribution; the merged
        # histogram's percentile estimates must match a single histogram
        # that saw everything — both answer from the same bucket counts.
        values = [0.0001 * (i + 1) for i in range(200)]  # 0.1ms .. 20ms
        combined = MetricsRegistry()
        a, b = MetricsRegistry(), MetricsRegistry()
        for i, v in enumerate(values):
            combined.histogram("lat").observe(v)
            (a if i % 2 == 0 else b).histogram("lat").observe(v)
        merged = MetricsRegistry()
        merged.merge(a.dump())
        merged.merge(b.dump())
        want = combined.snapshot()["histograms"]["lat"]
        got = merged.snapshot()["histograms"]["lat"]
        for q in ("p50", "p95", "p99"):
            assert got[q] == pytest.approx(want[q])
        assert got["count"] == want["count"]
        assert got["sum"] == pytest.approx(want["sum"])

    def test_merge_repeated_accumulates(self, registry):
        worker = MetricsRegistry()
        worker.counter("n").inc(2)
        dump = worker.dump()
        registry.merge(dump)
        registry.merge(dump)
        assert registry.snapshot()["counters"]["n"] == 4


class TestExemplars:
    def test_exemplar_kept_for_largest_observation(self):
        h = Histogram("x", ())
        h.observe(0.5, exemplar="trace-small")
        h.observe(2.0, exemplar="trace-big")
        h.observe(1.0, exemplar="trace-mid")
        assert h.exemplar == (2.0, "trace-big")

    def test_observation_without_exemplar_keeps_existing(self):
        h = Histogram("x", ())
        h.observe(1.0, exemplar="t1")
        h.observe(99.0)  # larger, but carries no exemplar
        assert h.exemplar == (1.0, "t1")

    def test_summary_omits_exemplar_when_absent(self):
        h = Histogram("x", ())
        h.observe(1.0)
        assert "exemplar" not in h.summary()

    def test_summary_includes_exemplar(self):
        h = Histogram("x", ())
        h.observe(1.0, exemplar="tr-9")
        assert h.summary()["exemplar"] == {"value": 1.0, "trace_id": "tr-9"}

    def test_exemplar_survives_dump_merge(self, registry):
        worker = MetricsRegistry()
        worker.histogram("h").observe(3.0, exemplar="worker-trace")
        registry.histogram("h").observe(1.0, exemplar="parent-trace")
        registry.merge(worker.dump())
        assert registry.histogram("h").exemplar == (3.0, "worker-trace")

    def test_merge_tolerates_dumps_without_exemplars(self, registry):
        # Old-format dumps (8-tuples, pre-exemplar) must still merge.
        worker = MetricsRegistry()
        worker.histogram("h").observe(1.0)
        dump = worker.dump()
        dump["histograms"] = [item[:8] for item in dump["histograms"]]
        registry.merge(dump)
        assert registry.snapshot()["histograms"]["h"]["count"] == 1


class TestFindPeeks:
    def test_find_returns_existing_series(self, registry):
        registry.counter("c", k="v").inc(2)
        found = registry.find_counter("c", k="v")
        assert found is not None and found.value == 2

    def test_find_does_not_create_or_count(self, registry):
        assert registry.find_counter("nope") is None
        assert registry.find_gauge("nope") is None
        assert registry.find_histogram("nope") is None
        assert registry.calls == 0
        assert len(registry) == 0


class TestExporters:
    def test_prometheus_text(self, registry):
        registry.counter("hash.digests", algorithm="sha1").inc(5)
        registry.gauge("db.rng.seed").set(42)
        registry.histogram("crypto.sign.seconds").observe(0.01)
        text = to_prometheus(registry.snapshot())
        assert 'repro_hash_digests_total{algorithm="sha1"} 5' in text
        assert "repro_db_rng_seed 42" in text
        assert 'repro_crypto_sign_seconds{quantile="0.5"}' in text
        assert "repro_crypto_sign_seconds_count 1" in text

    def test_json_roundtrip(self, registry):
        registry.counter("a").inc(2)
        data = json.loads(to_json(registry.snapshot()))
        assert data["counters"]["a"] == 2

    def test_render_text_contains_tables(self, registry):
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        text = render_text(registry.snapshot())
        assert "counters" in text
        assert "histograms" in text
        assert "p95" in text
