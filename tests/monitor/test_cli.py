"""`repro monitor` CLI: exit codes, JSON snapshot, events file, watch mode."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main


def run_monitor(*argv):
    return main(["monitor", "--synthetic", "--key-bits", "512", *argv])


class TestMonitorOnce:
    def test_clean_store_exits_zero(self, capsys):
        assert run_monitor("--once") == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["health"] == "ok"
        assert snap["alerts"] == []
        assert snap["last_tick"]["mode"] == "full"

    def test_r1_tamper_exits_nonzero_with_r1_alert(self, capsys):
        assert run_monitor("--once", "--tamper", "R1") == 1
        snap = json.loads(capsys.readouterr().out)
        assert snap["health"] == "tampered"
        rules = {a["rule"] for a in snap["alerts"]}
        assert "tamper" in rules
        assert any(
            a["fields"].get("requirement") == "R1"
            for a in snap["alerts"]
            if a["rule"] == "tamper"
        )

    def test_r2_tamper_is_watermark_regression(self, capsys):
        assert run_monitor("--once", "--tamper", "R2") == 1
        snap = json.loads(capsys.readouterr().out)
        assert snap["health"] == "tampered"
        assert any(
            a["rule"] == "watermark-regression" for a in snap["alerts"]
        )
        assert snap["regressions"]

    def test_output_file(self, tmp_path):
        out = tmp_path / "health.json"
        assert run_monitor("--once", "-o", str(out)) == 0
        snap = json.loads(out.read_text())
        assert snap["health"] == "ok"

    def test_events_file_written(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert run_monitor("--once", "--events", str(events_path)) == 0
        capsys.readouterr()
        lines = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
            if line
        ]
        kinds = {e["kind"] for e in lines}
        assert "collector.flush" in kinds
        assert "store.batch" in kinds
        assert "verify.report" in kinds
        assert "monitor.tick" in kinds
        # Correlation ids thread collector -> store within one flush.
        flushes = [e for e in lines if e["kind"] == "collector.flush"]
        batches = [e for e in lines if e["kind"] == "store.batch"]
        assert flushes and batches
        assert {e["corr"] for e in batches} <= {e["corr"] for e in flushes}

    def test_tamper_alert_lands_in_events(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert run_monitor(
            "--once", "--tamper", "R1", "--events", str(events_path)
        ) == 1
        capsys.readouterr()
        lines = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
            if line
        ]
        alerts = [e for e in lines if e["kind"] == "alert"]
        assert any(e["fields"]["rule"] == "tamper" for e in alerts)


class TestMonitorWatch:
    def test_watch_mode_exits_nonzero_on_tamper(self, capsys):
        code = run_monitor(
            "--ticks", "2", "--interval", "0", "--tamper", "R1"
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "tampered" in out

    def test_watch_mode_clean(self, capsys):
        assert run_monitor("--ticks", "2", "--interval", "0") == 0
        out = capsys.readouterr().out
        assert "health: ok" in out


class TestMonitorWorkspace:
    def test_monitor_against_workspace(self, tmp_path, capsys):
        lab = str(tmp_path / "lab")
        assert main(["init", "--path", lab, "--key-bits", "512"]) == 0
        assert main(["-w", lab, "enroll", "alice"]) == 0
        assert main(["-w", lab, "insert", "doc", "v1", "--as", "alice"]) == 0
        capsys.readouterr()
        assert main(["-w", lab, "monitor", "--once"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["health"] == "ok"
        assert snap["records"] == 1
