"""ProvenanceMonitor: watermarks, tick modes, alert rules, sticky regressions."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ProvenanceError
from repro.monitor import (
    Alert,
    DegradedChunksRule,
    ProvenanceMonitor,
    StoreLatencyRule,
    TamperRule,
    TickContext,
    WatermarkLagRule,
    WatermarkRegressionRule,
    default_rules,
)
from repro.provenance.store import InMemoryProvenanceStore, VerifiedWatermark


def _grow(tedb, participants, objects=3, updates=2):
    session = tedb.session(participants["p1"])
    for i in range(objects):
        session.insert(f"obj{i}", i)
        for u in range(updates):
            session.update(f"obj{i}", i * 100 + u)
    return session


def _forge_tail(store, object_id):
    """In-place tail checksum rewrite (attacker with raw store access)."""
    chain = store._chains[object_id]
    victim = chain[-1]
    chain[-1] = dataclasses.replace(
        victim, checksum=b"\x00" * max(1, len(victim.checksum))
    )


@pytest.fixture
def monitored(tedb, participants):
    session = _grow(tedb, participants)
    monitor = ProvenanceMonitor(tedb.provenance_store, tedb.keystore())
    return tedb, session, monitor


class TestTickModes:
    def test_cold_then_idle(self, monitored):
        tedb, _, monitor = monitored
        first = monitor.tick()
        assert first.mode == "cold"
        assert first.health == "ok"
        assert first.records_verified == len(tedb.provenance_store)
        assert first.lag_records == 0
        second = monitor.tick()
        assert second.mode == "idle"
        assert second.records_verified == 0
        assert second.records_skipped == len(tedb.provenance_store)

    def test_incremental_verifies_only_suffix(self, monitored):
        tedb, session, monitor = monitored
        monitor.tick()
        session.update("obj0", 999)
        session.insert("obj9", 9)
        result = monitor.tick()
        assert result.mode == "incremental"
        assert result.records_verified == 2  # one update + one new chain
        assert result.records_skipped == len(tedb.provenance_store) - 2
        assert result.lag_records == 0

    def test_full_flag_ignores_watermarks(self, monitored):
        tedb, _, monitor = monitored
        monitor.tick()
        result = monitor.tick(full=True)
        assert result.mode == "full"
        assert result.records_verified == len(tedb.provenance_store)

    def test_full_scan_every_forces_cadence(self, tedb, participants):
        _grow(tedb, participants, objects=1, updates=1)
        monitor = ProvenanceMonitor(
            tedb.provenance_store, tedb.keystore(), full_scan_every=2
        )
        assert monitor.tick().mode == "cold"
        assert monitor.tick().mode == "full"  # tick 2: cadence hit
        assert monitor.tick().mode == "idle"
        assert monitor.tick().mode == "full"

    def test_watermarks_persist_in_store(self, monitored):
        tedb, _, monitor = monitored
        result = monitor.tick()
        assert set(result.advanced) == {"obj0", "obj1", "obj2"}
        wm = tedb.provenance_store.get_watermark("obj0")
        chain = tedb.provenance_store.records_for("obj0")
        assert wm.index == len(chain)
        assert wm.seq_id == chain[-1].seq_id
        assert wm.checksum == chain[-1].checksum

    def test_fresh_monitor_resumes_from_persisted_watermarks(self, monitored):
        tedb, session, monitor = monitored
        monitor.tick()
        session.update("obj1", 7)
        resumed = ProvenanceMonitor(tedb.provenance_store, tedb.keystore())
        result = resumed.tick()
        assert result.mode == "incremental"
        assert result.records_verified == 1

    def test_requires_watermark_surface(self, keystore):
        class Bare:
            pass

        with pytest.raises(ProvenanceError, match="watermark"):
            ProvenanceMonitor(Bare(), keystore)


class TestTamperDetection:
    def test_forged_tail_fires_tamper_alert(self, monitored):
        tedb, _, monitor = monitored
        monitor.tick()
        _forge_tail(tedb.provenance_store, "obj1")
        result = monitor.tick()
        assert result.health == "tampered"
        assert monitor.has_tamper_alerts
        rules = {a.rule for a in result.alerts}
        assert "tamper" in rules
        assert monitor.accumulated_tally().get("R1", 0) >= 1

    def test_tamper_persists_across_ticks(self, monitored):
        tedb, _, monitor = monitored
        monitor.tick()
        _forge_tail(tedb.provenance_store, "obj1")
        monitor.tick()
        again = monitor.tick()
        assert again.health == "tampered"
        assert monitor.accumulated_tally().get("R1", 0) >= 1

    def test_clean_chain_clears_accumulated_failures(self, monitored):
        tedb, _, monitor = monitored
        monitor.tick()
        store = tedb.provenance_store
        original = store._chains["obj1"][-1]
        _forge_tail(store, "obj1")
        assert monitor.tick().health == "tampered"
        store._chains["obj1"][-1] = original  # tamper undone
        monitor.acknowledge_regression("obj1")
        result = monitor.tick()
        assert result.health == "ok"
        assert monitor.accumulated_failures() == ()

    def test_tail_removal_is_sticky_regression(self, monitored):
        tedb, _, monitor = monitored
        monitor.tick()
        store = tedb.provenance_store
        chain = store.records_for("obj2")
        store.discard("obj2", chain[-1].seq_id)
        result = monitor.tick()
        assert result.health == "tampered"
        assert any(a.rule == "watermark-regression" for a in result.alerts)
        # The truncated-but-valid chain must NOT be silently re-watermarked:
        # the stale watermark is the evidence.
        assert store.get_watermark("obj2").index == len(chain)
        later = monitor.tick()
        assert later.health == "tampered"
        assert monitor.acknowledge_regression("obj2") is True
        assert monitor.tick().health == "ok"

    def test_watermark_never_masks_removal(self, monitored):
        # The anchor is positional: removing a *middle* record shifts the
        # anchor position, so the skip is never trusted.
        tedb, _, monitor = monitored
        monitor.tick()
        store = tedb.provenance_store
        del store._chains["obj0"][1]
        store._count -= 1
        result = monitor.tick()
        assert result.health == "tampered"

    def test_full_tick_still_detects_removal(self, monitored):
        # A full scan verifies content but cannot see removal (a
        # truncated chain is shorter yet internally valid) — anchor
        # validation must run even when watermark skips are ignored.
        tedb, _, monitor = monitored
        monitor.tick()
        store = tedb.provenance_store
        chain = store.records_for("obj2")
        store.discard("obj2", chain[-1].seq_id)
        result = monitor.tick(full=True)
        assert result.mode == "full"
        assert result.health == "tampered"
        assert any(a.rule == "watermark-regression" for a in result.alerts)
        # The stale watermark survives as evidence, even on a full pass.
        assert store.get_watermark("obj2").index == len(chain)

    def test_behind_anchor_tamper_does_not_self_heal(self, monitored):
        # Regression: once a full scan finds a tamper *behind* the anchor
        # (watermark already at the chain tail), the next incremental
        # tick used to trust the still-valid anchor, skip the whole
        # chain, find no failures for it, and pop the accumulated
        # evidence — health flapped tampered -> ok one tick after
        # detection.  A chain with accumulated failures must never be
        # skipped.
        from repro.core.verifier import Verifier

        tedb, _, monitor = monitored
        monitor.tick()
        store = tedb.provenance_store
        chain = store._chains["obj1"]
        victim = chain[-1]
        chain[-1] = dataclasses.replace(
            victim,
            output=dataclasses.replace(
                victim.output, digest=b"\x00" * len(victim.output.digest)
            ),
        )
        assert monitor.tick(full=True).health == "tampered"
        full = Verifier(tedb.keystore()).verify_records(list(store.all_records()))
        assert not full.ok
        after = monitor.tick()  # incremental: evidence must survive
        assert after.health == "tampered"
        assert monitor.accumulated_failures() == tuple(full.failures)
        assert monitor.tick().health == "tampered"

    def test_zero_index_watermark_is_regression(self, monitored):
        # A hand-edited watermark with index 0 used to anchor-validate
        # against chain[-1] (Python's negative indexing) and pass
        # silently; it must be flagged as malformed instead.
        tedb, _, monitor = monitored
        store = tedb.provenance_store
        tail = store.records_for("obj0")[-1]
        store.set_watermark(
            VerifiedWatermark("obj0", 0, tail.seq_id, tail.checksum)
        )
        result = monitor.tick()
        assert result.health == "tampered"
        assert any(
            "malformed watermark" in reason for _, reason in result.regressions
        )

    def test_covered_payload_forgery_needs_full_scan(self, monitored):
        # The documented watermark blind spot: an in-place edit of a
        # *covered* record that preserves the checksum bytes is invisible
        # to an incremental tick (the anchor binds (seq, checksum), not
        # the payload) — and exactly what tick(full=True) exists to catch.
        tedb, _, monitor = monitored
        monitor.tick()
        store = tedb.provenance_store
        chain = store._chains["obj1"]
        victim = chain[-1]
        chain[-1] = dataclasses.replace(
            victim,
            output=dataclasses.replace(
                victim.output, digest=b"\x00" * len(victim.output.digest)
            ),
        )
        assert monitor.tick().health == "ok"  # idle: tail checksum intact
        full = monitor.tick(full=True)
        assert full.health == "tampered"
        assert monitor.accumulated_tally()


class TestObservation:
    def test_suspect_rewalk_is_one_logical_pass(self, monitored):
        # The authoritative re-walk of a failing suffix is the diagnosis
        # half of the same verification pass: it must not emit a second
        # verify.report event or double-count the verify.* counters.
        from repro import obs

        tedb, session, monitor = monitored
        monitor.tick()
        session.update("obj0", 999)
        _forge_tail(tedb.provenance_store, "obj0")
        obs.enable(reset=True)
        log = obs.enable_events()
        try:
            result = monitor.tick()
            assert result.health == "tampered"
            runs = obs.OBS.registry.find_counter("verify.runs")
            assert runs is not None and runs.value == 1
            reports = [
                e for e in log.ring.dicts() if e["kind"] == "verify.report"
            ]
            assert len(reports) == 1
        finally:
            obs.disable_events()
            obs.disable(reset=True)


class TestAlertRules:
    def _ctx(self, **overrides):
        base = dict(
            tick=1, tally={}, regressions=(), lag_records=0,
            degraded_chunks=0, store_p99=None,
        )
        base.update(overrides)
        return TickContext(**base)

    def test_tamper_rule_one_alert_per_requirement(self):
        alerts = TamperRule().evaluate(self._ctx(tally={"R1": 2, "R3": 1}))
        assert [a.fields["requirement"] for a in alerts] == ["R1", "R3"]
        assert all(a.tampering and a.severity == "critical" for a in alerts)

    def test_regression_rule(self):
        alerts = WatermarkRegressionRule().evaluate(
            self._ctx(regressions=(("objX", "anchor changed"),))
        )
        assert len(alerts) == 1
        assert alerts[0].tampering
        assert alerts[0].fields["object_id"] == "objX"

    def test_lag_rule_thresholded(self):
        rule = WatermarkLagRule(threshold=10)
        assert rule.evaluate(self._ctx(lag_records=10)) == []
        fired = rule.evaluate(self._ctx(lag_records=11))
        assert fired and not fired[0].tampering

    def test_latency_rule(self):
        rule = StoreLatencyRule(threshold_seconds=0.1)
        assert rule.evaluate(self._ctx(store_p99=None)) == []
        assert rule.evaluate(self._ctx(store_p99=0.05)) == []
        assert rule.evaluate(self._ctx(store_p99=0.5))

    def test_degraded_chunks_rule(self):
        rule = DegradedChunksRule()
        assert rule.evaluate(self._ctx(degraded_chunks=0)) == []
        assert rule.evaluate(self._ctx(degraded_chunks=2))

    def test_default_rules_cover_all_conditions(self):
        names = {r.name for r in default_rules()}
        assert names == {
            "tamper", "watermark-regression", "witness-mismatch",
            "watermark-lag", "store-latency", "degraded-chunks",
            "phase-latency-slo",
        }

    def test_phase_latency_slo_rule(self):
        from repro.monitor import PhaseLatencySLORule

        rule = PhaseLatencySLORule({"rsa.sign": 0.01})
        # Inert without observations, below the SLO, or without SLOs.
        assert rule.evaluate(self._ctx()) == []
        assert rule.evaluate(
            self._ctx(phase_latencies={"rsa.sign": 0.005})
        ) == []
        assert PhaseLatencySLORule().evaluate(
            self._ctx(phase_latencies={"rsa.sign": 99.0})
        ) == []
        fired = rule.evaluate(self._ctx(phase_latencies={"rsa.sign": 0.02}))
        assert len(fired) == 1
        assert not fired[0].tampering
        assert fired[0].severity == "warning"
        assert fired[0].fields == {
            "phase": "rsa.sign", "mean_s": 0.02, "slo_s": 0.01,
        }

    def test_phase_slo_alert_fires_from_profiled_tick(
        self, tedb, participants
    ):
        from repro import obs

        _grow(tedb, participants, objects=2, updates=1)
        obs.enable_profile(reset=True)
        try:
            monitor = ProvenanceMonitor(
                tedb.provenance_store, tedb.keystore(),
                phase_slos={"verify.chain": 0.0},  # impossible SLO
            )
            result = monitor.tick()
            slo_alerts = [
                a for a in result.alerts if a.rule == "phase-latency-slo"
            ]
            assert len(slo_alerts) == 1
            assert slo_alerts[0].fields["phase"] == "verify.chain"
            assert result.health == "degraded"
        finally:
            obs.disable_profile()

    def test_phase_slo_inert_without_profiler(self, tedb, participants):
        _grow(tedb, participants, objects=2, updates=1)
        monitor = ProvenanceMonitor(
            tedb.provenance_store, tedb.keystore(),
            phase_slos={"verify.chain": 0.0},
        )
        assert monitor.tick().health == "ok"

    def test_alert_to_dict_roundtrip(self):
        alert = Alert(rule="tamper", severity="critical", message="m",
                      tampering=True, fields={"requirement": "R1"})
        data = alert.to_dict()
        assert data["tampering"] is True
        assert data["fields"] == {"requirement": "R1"}

    def test_lag_alert_degrades_health(self, tedb, participants):
        session = _grow(tedb, participants, objects=2, updates=2)
        monitor = ProvenanceMonitor(
            tedb.provenance_store, tedb.keystore(),
            rules=(WatermarkLagRule(threshold=0),),
        )
        # With only a lag rule and a threshold of 0, a tick that leaves
        # nothing uncovered stays ok...
        assert monitor.tick().health == "ok"
        # ...but appending a record that fails verification pins the
        # watermark behind the tail, so lag accrues and health degrades —
        # without tampering=True (that is the tamper rule's job,
        # deliberately excluded here).
        session.update("obj0", 999)
        _forge_tail(tedb.provenance_store, "obj0")
        result = monitor.tick()
        assert result.health == "degraded"
        assert result.lag_records == 1
        assert not monitor.has_tamper_alerts


class TestSnapshot:
    def test_snapshot_shape(self, monitored):
        tedb, _, monitor = monitored
        monitor.tick()
        snap = monitor.snapshot()
        assert snap["health"] == "ok"
        assert snap["tick"] == 1
        assert snap["records"] == len(tedb.provenance_store)
        assert len(snap["watermarks"]) == 3
        assert snap["failure_tally"] == {}
        assert snap["alerts"] == []

    def test_snapshot_is_json_able(self, monitored):
        import json

        tedb, _, monitor = monitored
        monitor.tick()
        _forge_tail(tedb.provenance_store, "obj0")
        monitor.tick()
        json.dumps(monitor.snapshot())  # must not raise

    def test_snapshot_has_no_phase_costs_without_profiler(self, monitored):
        _, _, monitor = monitored
        monitor.tick()
        assert "phase_costs" not in monitor.snapshot()

    def test_snapshot_phase_costs_with_profiler(self, monitored):
        import json

        from repro import obs

        tedb, _, monitor = monitored
        obs.enable_profile(reset=True)
        try:
            monitor.tick()
            snap = monitor.snapshot()
            costs = snap["phase_costs"]
            assert costs["records"] == len(tedb.provenance_store)
            assert "verify.chain" in costs["phases"]
            assert costs["per_record_s"]["verify.chain"] > 0
            json.dumps(snap)  # still JSON-able with the costs attached
        finally:
            obs.disable_profile()


class TestEmptyStore:
    def test_empty_store_ticks_clean(self, keystore):
        monitor = ProvenanceMonitor(InMemoryProvenanceStore(), keystore)
        result = monitor.tick()
        assert result.health == "ok"
        assert result.records_total == 0

    def test_stale_watermark_without_chain_is_regression(self, keystore):
        store = InMemoryProvenanceStore()
        store.set_watermark(VerifiedWatermark("ghost", 3, 2, b"\x01"))
        monitor = ProvenanceMonitor(store, keystore)
        result = monitor.tick()
        assert result.health == "tampered"
        assert any(a.rule == "watermark-regression" for a in result.alerts)
