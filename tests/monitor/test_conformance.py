"""Monitor/verifier conformance: incremental == full, byte for byte.

The acceptance bar for watermark-based incremental verification is that
it is an *optimization*, not an approximation: across {memory, sqlite} x
{serial, parallel}, the failures a monitor accumulates over many
incremental ticks must be byte-identical to a one-shot full
``VerificationReport`` over the same records — including after a torn
batch is recovered and the recovery rewinds the watermark.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.cli.main import _monitor_tamper
from repro.core.system import TamperEvidentDatabase
from repro.core.verifier import ParallelVerifier, Verifier
from repro.exceptions import CrashError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.monitor import ProvenanceMonitor
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore

from tests.conftest import TEST_KEY_BITS

#: append_many call index torn by the fault plan (see _build_history).
TORN_OP = 6

pytestmark = pytest.mark.parametrize(
    "store_kind,workers",
    [
        ("memory", 1),
        ("memory", 2),
        ("sqlite", 1),
        ("sqlite", 2),
    ],
    ids=("memory-serial", "memory-parallel", "sqlite-serial", "sqlite-parallel"),
)


def _full_report(inner, keystore, workers):
    verifier = (
        ParallelVerifier(keystore, workers=workers)
        if workers > 1
        else Verifier(keystore)
    )
    return verifier.verify_records(list(inner.all_records()))


def _make_db(ca, store_kind, tmp_path):
    inner = (
        SQLiteProvenanceStore(str(tmp_path / "prov.db"))
        if store_kind == "sqlite"
        else InMemoryProvenanceStore()
    )
    plan = FaultPlan(
        seed=1,
        rules=(
            FaultRule(
                "store.append_many",
                FaultKind.TORN,
                indices=frozenset({TORN_OP}),
                torn_keep=1,
            ),
        ),
    )
    store = FaultyStore(inner, plan)
    db = TamperEvidentDatabase(
        ca=ca, key_bits=TEST_KEY_BITS, provenance_store=store
    )
    db.collector.faults = plan
    db.collector.retry_backoff = 0.0
    return db, store, inner


def _build_history(session):
    """Ops 0-4: a small forest with nested objects (multi-record batches)."""
    session.insert("root", "r0")                  # op 0
    session.insert("child", "c0", parent="root")  # op 1
    session.update("root", "r1")                  # op 2
    session.insert("leaf", "l0")                  # op 3
    session.update("child", "c1")                 # op 4: [child, root] batch


class TestTornBatchConformance:
    def test_monitor_matches_full_verify_through_crash_and_tamper(
        self, ca, participants, store_kind, workers, tmp_path
    ):
        db, store, inner = _make_db(ca, store_kind, tmp_path)
        keystore = db.keystore()
        session = db.session(participants["p1"])
        monitor = ProvenanceMonitor(store, keystore, workers=workers)

        _build_history(session)
        cold = monitor.tick()
        assert cold.mode == "cold" and cold.health == "ok"

        session.update("leaf", "l1")              # op 5
        # Op 6 tears: the child record commits, the inherited root record
        # is lost, and the process "dies" mid-batch.
        with pytest.raises(CrashError):
            session.update("child", "c2")
        torn_len = len(inner.records_for("child"))

        # A tick before recovery runs is allowed to advance the watermark
        # over the torn record: it is a validly signed prefix, exactly
        # what a power cut leaves behind.
        pre = monitor.tick()
        assert pre.health == "ok"
        assert store.get_watermark("child").index == torn_len

        report = RecoveryScanner(store).recover()
        assert report.truncated
        # ...which is why recovery must rewind the watermark it covered.
        assert "child" in report.rewound_watermarks
        assert store.get_watermark("child") is None

        # Post-recovery tick: re-walks the rewound chain, no false alarm,
        # and the accumulated state matches a from-scratch full verify.
        clean = monitor.tick()
        assert clean.health == "ok"
        assert clean.alerts == ()
        full = _full_report(inner, keystore, workers)
        assert full.ok
        assert monitor.accumulated_failures() == tuple(full.failures)
        assert monitor.accumulated_tally() == full.failure_tally()

        # Now actual tampering: forge a tail checksum in the raw store.
        _monitor_tamper(inner, "R1")
        tampered = monitor.tick()
        assert tampered.health == "tampered"
        assert monitor.has_tamper_alerts

        full = _full_report(inner, keystore, workers)
        assert not full.ok
        assert monitor.accumulated_failures() == tuple(full.failures)
        assert monitor.accumulated_tally() == full.failure_tally()

        # Conformance is stable: further ticks re-confirm, never drift.
        monitor.tick()
        assert monitor.accumulated_failures() == tuple(full.failures)

        inner.close() if hasattr(inner, "close") else None

    def test_event_stream_deterministic_modulo_ts(
        self, ca, participants, store_kind, workers, tmp_path
    ):
        """Same seed, same ops, same faults => identical monitor events
        (sequence, kinds, correlation ids, fields) modulo timestamps."""

        def run(subdir):
            obs.enable(reset=True)
            obs.enable_events()
            try:
                db, store, inner = _make_db(
                    ca, store_kind, tmp_path / subdir
                )
                session = db.session(participants["p1"])
                monitor = ProvenanceMonitor(
                    store, db.keystore(), workers=workers
                )
                _build_history(session)
                monitor.tick()
                session.update("leaf", "l1")
                with pytest.raises(CrashError):
                    session.update("child", "c2")
                monitor.tick()
                RecoveryScanner(store).recover()
                monitor.tick()
                _monitor_tamper(inner, "R1")
                monitor.tick()
                events = [
                    {k: v for k, v in e.items() if k != "ts"}
                    for e in obs.OBS.events.ring.dicts()
                ]
                if hasattr(inner, "close"):
                    inner.close()
                return events
            finally:
                obs.disable_events()
                obs.disable()

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        assert run("a") == run("b")
