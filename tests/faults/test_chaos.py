"""The chaos harness: determinism and the two invariants, across seeds.

Three fixed seeds per store backend (CI runs the same ones), plus the
pinned contract that two runs of one seed yield byte-identical reports.
"""

import json

import pytest

from repro.faults import ChaosConfig, run_chaos

SEEDS = (0, 1, 7)


@pytest.mark.parametrize("store", ("memory", "sqlite"))
@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_hold_under_chaos(seed, store):
    report = run_chaos(ChaosConfig(seed=seed, ops=30, store=store))
    assert report["invariants"]["no_false_positives"], report["verification"]
    assert report["invariants"]["no_false_negatives"], report["tamper"]
    # The workload must actually have been stressed, not idle.
    assert report["faults_injected"], "no faults fired — rates too low"
    assert report["workload"]["crashes"] == len(report["recoveries"])


@pytest.mark.parametrize("seed", SEEDS)
def test_identical_seeds_identical_reports(seed):
    config = ChaosConfig(seed=seed, ops=25)
    first = json.dumps(run_chaos(config), sort_keys=True)
    second = json.dumps(run_chaos(ChaosConfig(seed=seed, ops=25)), sort_keys=True)
    assert first == second


def test_different_seeds_differ():
    a = run_chaos(ChaosConfig(seed=0, ops=25))
    b = run_chaos(ChaosConfig(seed=1, ops=25))
    assert a["fault_events"] != b["fault_events"]


def test_fault_free_config_applies_every_op():
    report = run_chaos(
        ChaosConfig(
            seed=3, ops=15, torn_rate=0.0, error_rate=0.0, flush_crash_rate=0.0
        )
    )
    assert report["workload"]["applied"] == 15
    assert report["workload"]["crashes"] == 0
    assert report["faults_injected"] == {}
    assert report["invariants"]["ok"]


def test_tamper_families_detected():
    for family in ("R1", "R2", "R4"):
        report = run_chaos(ChaosConfig(seed=2, ops=25, tamper=family))
        tamper = report["tamper"]
        assert tamper is not None and tamper["requirement"] == family
        assert tamper["detected"], family
        assert tamper["tally"], family


def test_tamper_none_skips_phase():
    report = run_chaos(ChaosConfig(seed=0, ops=15, tamper="none"))
    assert report["tamper"] is None
    assert report["invariants"]["no_false_negatives"]


def test_worker_kills_degrade_without_breaking_invariants():
    report = run_chaos(
        ChaosConfig(seed=5, ops=30, workers=2, worker_kill_chunks=(0, 1))
    )
    assert report["invariants"]["ok"]
    killed = [
        e for e in report["fault_events"] if e["site"] == "verify.worker"
    ]
    assert killed, "worker kills never engaged — no multi-chain shipment?"


def test_report_is_json_serializable():
    report = run_chaos(ChaosConfig(seed=0, ops=10))
    parsed = json.loads(json.dumps(report))
    assert parsed["invariants"]["ok"] is True
