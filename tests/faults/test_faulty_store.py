"""FaultyStore: protocol conformance and the exact crash states it leaves.

A TORN fault must leave precisely what a power cut mid-commit leaves: a
prefix of the batch present, the batch's journal entry uncommitted.  An
ERROR must leave the inner store untouched so a retry can succeed.
"""

import sqlite3

import pytest

from repro.exceptions import CrashError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.store import FaultyStore
from repro.provenance.store import (
    InMemoryProvenanceStore,
    ProvenanceStore,
    SQLiteProvenanceStore,
)

from tests.provenance.test_append_many_property import _record, _state

STORES = (InMemoryProvenanceStore, SQLiteProvenanceStore)


def empty_plan(seed=0):
    return FaultPlan(seed=seed)


@pytest.fixture(params=STORES, ids=("memory", "sqlite"))
def inner(request):
    store = request.param()
    yield store
    if isinstance(store, SQLiteProvenanceStore):
        store.close()


def test_satisfies_store_protocol(inner):
    assert isinstance(FaultyStore(inner, empty_plan()), ProvenanceStore)


def test_validates_plan_at_construction(inner):
    bad = FaultPlan(seed=0, rules=(FaultRule("store.read", FaultKind.TORN),))
    with pytest.raises(Exception, match="not valid at site"):
        FaultyStore(inner, bad)


def test_empty_plan_is_transparent(inner):
    faulty = FaultyStore(inner, empty_plan())
    faulty.append(_record("A", 0))
    faulty.append_many([_record("A", 1), _record("B", 0)])
    assert faulty.latest("A").seq_id == 1
    assert faulty.get("B", 0) is not None
    assert len(faulty) == 3
    assert _state(faulty) == _state(inner)


def test_torn_batch_leaves_prefix_and_uncommitted_journal(inner):
    plan = FaultPlan(
        seed=0,
        rules=(
            FaultRule(
                "store.append_many",
                FaultKind.TORN,
                indices=frozenset({0}),
                torn_keep=2,
            ),
        ),
    )
    faulty = FaultyStore(inner, plan)
    batch = [_record("A", 0), _record("A", 1), _record("B", 0)]
    with pytest.raises(CrashError, match="2/3 records committed"):
        faulty.append_many(batch)
    # Exactly the prefix survived...
    assert inner.get("A", 0) is not None
    assert inner.get("A", 1) is not None
    assert inner.get("B", 0) is None
    # ...and the batch is journalled as never-acknowledged.
    torn = [entry for entry in inner.journal() if not entry.committed]
    assert len(torn) == 1
    assert torn[0].keys == (("A", 0), ("A", 1), ("B", 0))


def test_error_leaves_inner_untouched_and_retry_succeeds(inner):
    plan = FaultPlan(
        seed=0,
        rules=(
            FaultRule(
                "store.append_many", FaultKind.ERROR, indices=frozenset({0})
            ),
        ),
    )
    faulty = FaultyStore(inner, plan)
    batch = [_record("A", 0), _record("A", 1)]
    with pytest.raises(sqlite3.OperationalError, match="disk I/O"):
        faulty.append_many(batch)
    assert len(inner) == 0
    assert not [e for e in inner.journal() if not e.committed]
    faulty.append_many(batch)  # index 1: no fault
    assert len(inner) == 2


def test_append_site_injects(inner):
    plan = FaultPlan(
        seed=0,
        rules=(FaultRule("store.append", FaultKind.ERROR, indices=frozenset({0})),),
    )
    faulty = FaultyStore(inner, plan)
    with pytest.raises(sqlite3.OperationalError):
        faulty.append(_record("A", 0))
    assert len(inner) == 0
    faulty.append(_record("A", 0))
    assert len(inner) == 1


def test_read_sites_inject(inner):
    inner.append(_record("A", 0))
    plan = FaultPlan(
        seed=0, rules=(FaultRule("store.read", FaultKind.ERROR, rate=1.0),)
    )
    faulty = FaultyStore(inner, plan)
    for read in (
        lambda: faulty.latest("A"),
        lambda: faulty.records_for("A"),
        lambda: faulty.get("A", 0),
        lambda: faulty.all_records(),
    ):
        with pytest.raises(sqlite3.OperationalError):
            read()


def test_recovery_surface_never_injects(inner):
    """journal/discard/resolve_torn reflect true state even under a plan
    that fails every read — recovery must not trip injected faults."""
    plan = FaultPlan(
        seed=0, rules=(FaultRule("store.read", FaultKind.ERROR, rate=1.0),)
    )
    faulty = FaultyStore(inner, plan)
    batch_id = faulty.begin_torn_batch([_record("A", 0), _record("A", 1)], keep=1)
    assert [e.batch_id for e in faulty.journal() if not e.committed] == [batch_id]
    assert faulty.discard("A", 0) is True
    faulty.resolve_torn(batch_id)
    assert not [e for e in faulty.journal() if not e.committed]
    assert len(faulty) == 0


def test_context_manager_closes_inner():
    closed = []

    class Inner(InMemoryProvenanceStore):
        def close(self):
            closed.append(True)

    with FaultyStore(Inner(), empty_plan()) as faulty:
        faulty.append(_record("A", 0))
    assert closed == [True]
