"""``repro chaos``: exit codes, determinism, and seed plumbing."""

import json

import pytest

from repro.cli.main import main


def run_cli(*argv):
    return main(list(argv))


def test_chaos_exits_zero_and_summarizes(capsys):
    assert run_cli("chaos", "--seed", "3", "--ops", "20") == 0
    out = capsys.readouterr().out
    assert "chaos seed 3" in out
    assert "no_false_positives=True" in out
    assert "no_false_negatives=True" in out


def test_chaos_json_report(capsys):
    assert run_cli("chaos", "--seed", "1", "--ops", "15", "--json") == 0
    report = json.loads(capsys.readouterr().out)
    assert report["seed"] == 1
    assert report["invariants"]["ok"] is True


def test_same_seed_identical_report_files(tmp_path, capsys):
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    for path in (first, second):
        assert run_cli(
            "chaos", "--seed", "9", "--ops", "20", "--json", "-o", str(path)
        ) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()


def test_sqlite_store_and_tamper_family(capsys):
    assert (
        run_cli(
            "chaos", "--seed", "4", "--ops", "15", "--store", "sqlite",
            "--tamper", "R4",
        )
        == 0
    )
    assert "tamper R4" in capsys.readouterr().out


def test_seed_from_env(monkeypatch, capsys):
    monkeypatch.setenv("CHAOS_SEED", "11")
    assert run_cli("chaos", "--seed-from-env", "CHAOS_SEED", "--ops", "15") == 0
    assert "chaos seed 11" in capsys.readouterr().out


@pytest.mark.parametrize("value", (None, "", "not-a-number"))
def test_seed_from_env_rejects_bad_values(monkeypatch, capsys, value):
    if value is None:
        monkeypatch.delenv("CHAOS_SEED", raising=False)
    else:
        monkeypatch.setenv("CHAOS_SEED", value)
    assert run_cli("chaos", "--seed-from-env", "CHAOS_SEED", "--ops", "5") == 2
    assert "not an integer" in capsys.readouterr().err


def test_parallel_worker_kill_flags(capsys):
    assert (
        run_cli(
            "chaos", "--seed", "5", "--ops", "25", "--workers", "2",
            "--kill-chunk", "0",
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "verify.worker" in out
