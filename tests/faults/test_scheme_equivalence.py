"""Property tests: Merkle-batch detection ≡ per-record RSA detection.

Hypothesis drives randomized tamper sites through both signature
schemes and asserts the *verification reports* are byte-identical —
the tentpole contract of the batch-signature scheme.  A second family
mutates the inclusion proof itself (path, signature, epoch, index,
or stripping it entirely) and asserts the record fails R1 at exactly
the tampered site, the way a bad per-record signature would.  A third
family tears a flush at a hypothesis-chosen keep point and checks that
crash-recovery behaves identically under both schemes.
"""

import dataclasses
import functools
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.attacks import tampering
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import CrashError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.provenance.store import InMemoryProvenanceStore

SCHEMES = ("rsa-per-record", "merkle-batch")
N_OBJECTS = 4  # each flush stages one record per object => 4-leaf batches


@functools.lru_cache(maxsize=None)
def base_world(scheme):
    """A small world whose flushes are real multi-record batches.

    Three complex operations over ``N_OBJECTS`` flat objects: every
    object's chain has seq 0..2, and under Merkle-batch every record
    carries a 4-leaf inclusion proof (non-trivial audit path).
    """
    rng = random.Random(0xBEE)
    db = TamperEvidentDatabase(key_bits=512, rng=rng, signature_scheme=scheme)
    alice = db.enroll("alice")
    mallory = db.enroll("mallory")
    a, m = db.session(alice), db.session(mallory)
    with a.complex_operation():
        for i in range(N_OBJECTS):
            a.insert(f"obj{i}", i)
    with m.complex_operation():
        for i in range(N_OBJECTS):
            m.update(f"obj{i}", i + 10)
    with a.complex_operation():
        for i in range(N_OBJECTS):
            a.update(f"obj{i}", i + 20)
    return db, alice, mallory


def _flip(data: bytes, offset: int = 0) -> bytes:
    index = offset % len(data)
    return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1 :]


@given(
    obj=st.integers(0, N_OBJECTS - 1),
    seq=st.integers(0, 2),
    mode=st.sampled_from(("output", "input", "remove", "forge", "attribution")),
)
@settings(max_examples=25, deadline=None)
def test_tampered_reports_identical_across_schemes(obj, seq, mode):
    """Whatever the tamper site, both schemes report the same failures."""
    assume(not (mode == "input" and seq == 0))  # inserts have no inputs
    object_id = f"obj{obj}"
    reports = []
    for scheme in SCHEMES:
        db, alice, mallory = base_world(scheme)
        shipment = db.ship(object_id)
        if mode == "output":
            tampered = tampering.modify_record_output(shipment, object_id, seq, 7777)
        elif mode == "input":
            tampered = tampering.modify_record_input(shipment, object_id, seq, 7777)
        elif mode == "remove":
            tampered = tampering.remove_record(shipment, object_id, seq)
        elif mode == "forge":
            tampered = tampering.insert_forged_record(
                shipment, mallory, object_id, seq, 4242
            )
        else:
            tampered = tampering.forge_attribution(shipment, object_id, seq, "alice")
        reports.append(tampered.verify(db.keystore()))
    rsa_report, mb_report = reports
    assert rsa_report.failures == mb_report.failures
    assert rsa_report.ok == mb_report.ok
    assert rsa_report.records_checked == mb_report.records_checked


@given(
    obj=st.integers(0, N_OBJECTS - 1),
    seq=st.integers(0, 2),
    mutation=st.sampled_from(
        ("strip", "path", "signature", "epoch", "index", "count")
    ),
    offset=st.integers(0, 63),
)
@settings(max_examples=25, deadline=None)
def test_proof_mutation_fails_r1_at_the_tampered_site(obj, seq, mutation, offset):
    """Breaking any part of the inclusion proof fails exactly where a bad
    per-record signature fails: one R1 at the mutated record."""
    object_id = f"obj{obj}"
    db, _, _ = base_world("merkle-batch")
    shipment = db.ship(object_id)
    victim = tampering.find_record(shipment, object_id, seq)
    proof = victim.proof
    assert proof is not None and len(proof.path) == 2  # 4-leaf batches
    if mutation == "strip":
        mutated = None
    elif mutation == "path":
        new_path = (_flip(proof.path[0], offset),) + proof.path[1:]
        mutated = dataclasses.replace(proof, path=new_path)
    elif mutation == "signature":
        mutated = dataclasses.replace(
            proof, root_signature=_flip(proof.root_signature, offset)
        )
    elif mutation == "epoch":
        mutated = dataclasses.replace(proof, epoch=proof.epoch + 1)
    elif mutation == "index":
        mutated = dataclasses.replace(proof, index=(proof.index + 1) % proof.count)
    else:  # count: the signed tree shape no longer matches the path
        mutated = dataclasses.replace(proof, count=proof.count + 1)
    tampered = tampering.replace_record(shipment, victim, victim.with_proof(mutated))
    report = tampered.verify(db.keystore())
    assert not report.ok
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.requirement == "R1"
    assert failure.object_id == object_id
    assert failure.seq_id == seq


@given(keep=st.integers(0, N_OBJECTS - 1), tamper_obj=st.integers(0, N_OBJECTS - 1))
@settings(max_examples=8, deadline=None)
def test_torn_batch_recovery_equivalent(keep, tamper_obj):
    """A flush torn at any keep point recovers identically under both
    schemes: the retried history verifies clean, and a post-recovery
    tamper produces byte-identical reports."""
    reports = []
    for scheme in SCHEMES:
        plan = FaultPlan(
            seed=0,
            rules=(
                FaultRule(
                    "store.append_many",
                    FaultKind.TORN,
                    indices=frozenset({1}),
                    torn_keep=keep,
                ),
            ),
        )
        inner = InMemoryProvenanceStore()
        db = TamperEvidentDatabase(
            provenance_store=FaultyStore(inner, plan),
            key_bits=512,
            rng=random.Random(0xFA11),
            signature_scheme=scheme,
        )
        session = db.session(db.enroll("writer"))
        with session.complex_operation():            # flush 0: intact
            for i in range(N_OBJECTS):
                session.insert(f"o{i}", i)
        with pytest.raises(CrashError):
            with session.complex_operation():        # flush 1: torn at `keep`
                for i in range(N_OBJECTS):
                    session.update(f"o{i}", i + 10)
        RecoveryScanner(inner).recover()  # keep=0 tears off the whole batch
        assert RecoveryScanner(inner).recover().clean
        with session.complex_operation():            # the retried flush
            for i in range(N_OBJECTS):
                session.update(f"o{i}", i + 10)
        clean = db.verify(f"o{tamper_obj}")
        assert clean.ok, f"{scheme}: {clean.summary()}"
        shipment = db.ship(f"o{tamper_obj}")
        tampered = tampering.modify_record_output(
            shipment, f"o{tamper_obj}", 1, 31337
        )
        reports.append(tampered.verify(db.keystore()))
    rsa_report, mb_report = reports
    assert rsa_report.failures == mb_report.failures
    assert not rsa_report.ok and not mb_report.ok
