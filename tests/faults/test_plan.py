"""FaultPlan: schedules are pure functions of the seed.

The whole fault layer rests on one property: a plan's fire/no-fire
decisions depend only on ``(seed, site, index, rule)`` — never on call
history, threads, or processes.  These tests pin that property and the
spec round-trip the parallel verifier uses to ship plans to workers.
"""

import copy
import sqlite3

import pytest

from repro.exceptions import CrashError, ProvenanceError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultRule
from repro.faults.store import SITE_KINDS


def plan_with(*rules, seed=7):
    return FaultPlan(seed=seed, rules=tuple(rules))


class TestDeterminism:
    def test_same_spec_same_schedule(self):
        rule = FaultRule("store.append_many", FaultKind.ERROR, rate=0.3)
        a = plan_with(rule)
        b = plan_with(rule)
        assert a.schedule_preview("store.append_many", 200) == b.schedule_preview(
            "store.append_many", 200
        )

    def test_different_seeds_differ(self):
        rule = FaultRule("store.append_many", FaultKind.ERROR, rate=0.3)
        a = plan_with(rule, seed=1)
        b = plan_with(rule, seed=2)
        assert a.schedule_preview("store.append_many", 200) != b.schedule_preview(
            "store.append_many", 200
        )

    def test_decide_is_stateless(self):
        plan = plan_with(FaultRule("store.read", FaultKind.ERROR, rate=0.5))
        first = [plan.decide("store.read", i) for i in range(50)]
        # consuming indices via draw() must not change decide()'s answers
        for _ in range(10):
            plan.draw("store.read")
        assert [plan.decide("store.read", i) for i in range(50)] == first

    def test_rate_bounds(self):
        never = plan_with(FaultRule("store.read", FaultKind.ERROR, rate=0.0))
        always = plan_with(FaultRule("store.read", FaultKind.ERROR, rate=1.0))
        assert never.schedule_preview("store.read", 100) == ()
        assert always.schedule_preview("store.read", 100) == tuple(range(100))

    def test_explicit_indices_override_rate(self):
        plan = plan_with(
            FaultRule(
                "store.read", FaultKind.ERROR, rate=0.0, indices=frozenset({3, 5})
            )
        )
        assert plan.schedule_preview("store.read", 10) == (3, 5)

    def test_first_matching_rule_wins(self):
        plan = plan_with(
            FaultRule("store.read", FaultKind.LATENCY, indices=frozenset({0})),
            FaultRule("store.read", FaultKind.ERROR, rate=1.0),
        )
        assert plan.decide("store.read", 0).kind is FaultKind.LATENCY
        assert plan.decide("store.read", 1).kind is FaultKind.ERROR

    def test_torn_keep_deterministic_and_bounded(self):
        rule = FaultRule("store.append_many", FaultKind.TORN)
        plan = plan_with(rule)
        for index in range(20):
            keep = plan.torn_keep(rule, index, batch_size=6)
            assert 0 <= keep < 6
            assert keep == plan.torn_keep(rule, index, batch_size=6)

    def test_torn_keep_explicit_clamped(self):
        rule = FaultRule("store.append_many", FaultKind.TORN, torn_keep=99)
        plan = plan_with(rule)
        assert plan.torn_keep(rule, 0, batch_size=4) == 4
        rule = FaultRule("store.append_many", FaultKind.TORN, torn_keep=-1)
        assert plan.torn_keep(rule, 0, batch_size=4) == 0


class TestCounters:
    def test_draw_claims_indices_in_order(self):
        plan = plan_with(FaultRule("store.read", FaultKind.ERROR, rate=0.0))
        assert plan.next_index("store.read") == 0
        assert plan.next_index("store.read") == 1
        assert plan.next_index("store.append") == 0  # per-site counters

    def test_draw_logs_fired_events(self):
        plan = plan_with(
            FaultRule("store.read", FaultKind.ERROR, indices=frozenset({1}))
        )
        assert plan.draw("store.read") is None
        fired = plan.draw("store.read")
        assert fired is not None and fired[1] == 1
        assert plan.events == [FaultEvent("store.read", 1, FaultKind.ERROR)]

    def test_deepcopy_shares_spec_fresh_state(self):
        plan = plan_with(FaultRule("store.read", FaultKind.ERROR, rate=1.0))
        plan.draw("store.read")
        clone = copy.deepcopy(plan)
        assert clone.rules == plan.rules
        assert clone.events == []
        assert clone.next_index("store.read") == 0


class TestEffects:
    def test_error_raises_transient_operational_error(self):
        plan = plan_with(FaultRule("store.read", FaultKind.ERROR, rate=1.0))
        with pytest.raises(sqlite3.OperationalError, match="injected"):
            plan.maybe_raise("store.read")

    def test_crash_raises_crash_error(self):
        plan = plan_with(FaultRule("collector.flush", FaultKind.CRASH, rate=1.0))
        with pytest.raises(CrashError):
            plan.maybe_raise("collector.flush")

    def test_crash_error_escapes_except_exception(self):
        """CrashError models process death: ordinary ``except Exception``
        handlers must not be able to absorb it."""
        assert not issubclass(CrashError, Exception)
        plan = plan_with(FaultRule("collector.flush", FaultKind.CRASH, rate=1.0))
        with pytest.raises(CrashError):
            try:
                plan.maybe_raise("collector.flush")
            except Exception:  # pragma: no cover - must not trigger
                pytest.fail("CrashError was absorbed by `except Exception`")

    def test_latency_returns_normally(self):
        plan = plan_with(
            FaultRule("store.read", FaultKind.LATENCY, rate=1.0, latency=0.0)
        )
        plan.maybe_raise("store.read")  # no exception
        assert plan.events[0].kind is FaultKind.LATENCY


class TestSpec:
    def test_round_trip_preserves_decisions(self):
        plan = plan_with(
            FaultRule("store.append_many", FaultKind.TORN, rate=0.4, torn_keep=2),
            FaultRule("verify.worker", FaultKind.KILL, indices=frozenset({0, 2})),
            seed=99,
        )
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored.rules == plan.rules
        for site in ("store.append_many", "verify.worker"):
            assert restored.schedule_preview(site, 64) == plan.schedule_preview(
                site, 64
            )

    def test_from_dict_none_is_none(self):
        assert FaultPlan.from_dict(None) is None

    def test_validate_rejects_meaningless_kinds(self):
        plan = plan_with(FaultRule("store.read", FaultKind.TORN))
        with pytest.raises(ProvenanceError, match="not valid at site"):
            plan.validate(SITE_KINDS)

    def test_validate_accepts_unknown_sites(self):
        # Unknown sites pass through: user-defined instrumentation points.
        plan = plan_with(FaultRule("my.custom.site", FaultKind.ERROR))
        plan.validate(SITE_KINDS)
