"""Collector resilience: transient store errors are retried, crashes are not.

A transient ``sqlite3.OperationalError`` (or :class:`TransientStoreError`)
from the provenance store is retried with backoff — the signed records
are already staged, so the retry stores byte-identical state.  A
:class:`CrashError` models process death and must tear straight through:
no retry, engine compensated, store unchanged.
"""

import sqlite3

import pytest

from repro import obs
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import CrashError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.store import FaultyStore
from repro.provenance.store import InMemoryProvenanceStore

from tests.conftest import TEST_KEY_BITS


def make_db(ca, plan):
    inner = InMemoryProvenanceStore()
    db = TamperEvidentDatabase(
        ca=ca, key_bits=TEST_KEY_BITS, provenance_store=FaultyStore(inner, plan)
    )
    db.collector.faults = plan
    db.collector.retry_backoff = 0.0
    return db, inner


def error_plan(*indices):
    return FaultPlan(
        seed=0,
        rules=(
            FaultRule(
                "store.append_many", FaultKind.ERROR, indices=frozenset(indices)
            ),
        ),
    )


def test_transient_error_is_retried_transparently(ca, participants):
    db, inner = make_db(ca, error_plan(0))
    session = db.session(participants["p1"])
    records = session.insert("doc", "draft")  # first attempt fails, retry lands
    assert len(records) == 1
    assert inner.latest("doc").seq_id == 0
    assert db.verify("doc").ok


def test_retried_batch_chains_correctly(ca, participants):
    """After a fail-then-retry the chain must verify end to end — the
    retry reads true tails, not remnants of the failed attempt."""
    db, _ = make_db(ca, error_plan(1, 3))
    session = db.session(participants["p1"])
    session.insert("doc", "draft")   # attempt 0: ok
    session.update("doc", "v2")      # attempt 1 fails, attempt 2 lands
    session.update("doc", "v3")      # attempt 3 fails, attempt 4 lands
    report = db.verify("doc")
    assert report.ok
    assert report.records_checked == 3


def test_exhausted_retries_raise_and_compensate(ca, participants):
    db, inner = make_db(ca, error_plan(0, 1, 2))  # all 1 + 2 retries fail
    session = db.session(participants["p1"])
    with pytest.raises(sqlite3.OperationalError, match="disk I/O"):
        session.insert("doc", "draft")
    assert "doc" not in db.store       # engine compensated
    assert len(inner) == 0             # nothing stored


def test_retry_budget_is_configurable(ca, participants):
    db, inner = make_db(ca, error_plan(0, 1, 2))
    db.collector.store_retries = 3     # 4 attempts: index 3 succeeds
    session = db.session(participants["p1"])
    session.insert("doc", "draft")
    assert inner.latest("doc").seq_id == 0


def test_crash_is_never_retried(ca, participants):
    plan = FaultPlan(
        seed=0,
        rules=(
            FaultRule("collector.flush", FaultKind.CRASH, indices=frozenset({0})),
        ),
    )
    db, inner = make_db(ca, plan)
    session = db.session(participants["p1"])
    with pytest.raises(CrashError):
        session.insert("doc", "draft")
    # One flush attempt only — a crash is process death, not an error.
    assert [e.kind for e in plan.events] == [FaultKind.CRASH]
    assert "doc" not in db.store
    assert len(inner) == 0
    # The restarted writer proceeds normally (flush index 1 is clean).
    session.insert("doc", "draft")
    assert db.verify("doc").ok


def test_retries_are_counted(ca, participants):
    obs.enable(reset=True)
    try:
        db, _ = make_db(ca, error_plan(0))
        db.session(participants["p1"]).insert("doc", "draft")
        assert obs.OBS.registry.counter("store.retries").value == 1
        assert (
            obs.OBS.registry.counter(
                "faults.injected", site="store.append_many", kind="error"
            ).value
            == 1
        )
    finally:
        obs.disable()
