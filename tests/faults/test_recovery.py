"""RecoveryScanner: torn suffixes truncated, committed history untouched.

Includes the regression test for the SQLite chain-tail cache: a failed
or torn ``append_many`` must invalidate cached tails so a retried batch
chains off the last *committed* checksum, never an uncommitted one.
"""

import pytest

from repro.exceptions import ProvenanceError, SequenceError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore

from tests.provenance.test_append_many_property import _record, _state

STORES = (InMemoryProvenanceStore, SQLiteProvenanceStore)


@pytest.fixture(params=STORES, ids=("memory", "sqlite"))
def store(request):
    s = request.param()
    yield s
    if isinstance(s, SQLiteProvenanceStore):
        s.close()


def test_clean_store_scans_clean(store):
    store.append_many([_record("A", 0), _record("A", 1)])
    report = RecoveryScanner(store).scan()
    assert report.clean
    assert report.torn_batches == ()


def test_recover_truncates_torn_suffix_to_committed_state(store):
    store.append_many([_record("A", 0), _record("B", 0)])
    committed = _state(store)
    batch = [_record("A", 1), _record("A", 2), _record("B", 1)]
    batch_id = store.begin_torn_batch(batch, keep=2)

    scanner = RecoveryScanner(store)
    preview = scanner.scan()
    assert preview.torn_batches == (batch_id,)
    # scan() is a dry run: the torn rows are still present
    assert store.get("A", 1) is not None

    report = scanner.recover()
    assert report.torn_batches == (batch_id,)
    # newest-first truncation: (A,2) came off before (A,1)
    assert report.truncated == (("A", 2), ("A", 1))
    assert _state(store) == committed
    assert not [e for e in store.journal() if not e.committed]


def test_recover_is_idempotent(store):
    store.begin_torn_batch([_record("A", 0)], keep=1)
    scanner = RecoveryScanner(store)
    assert not scanner.recover().clean
    assert scanner.recover().clean


def test_recovered_store_accepts_the_retried_batch(store):
    """The crash-retry round trip: tear a batch, recover, append the same
    batch again — it must land exactly as a fault-free run would."""
    store.append_many([_record("A", 0)])
    batch = [_record("A", 1), _record("A", 2)]
    store.begin_torn_batch(batch, keep=1)
    RecoveryScanner(store).recover()
    store.append_many(batch)

    reference = InMemoryProvenanceStore()
    reference.append_many([_record("A", 0)] + batch)
    assert _state(store) == _state(reference)


def test_missing_committed_records_reported_as_anomalies(store):
    store.append_many([_record("A", 0), _record("B", 0)])
    store.purge_object("A")  # committed journal entry now points nowhere
    report = RecoveryScanner(store).scan()
    assert report.anomalies == (("A", 0),)
    assert not report.clean
    assert report.torn_batches == ()


def test_scanner_unwraps_faulty_store():
    inner = InMemoryProvenanceStore()
    plan = FaultPlan(
        seed=0, rules=(FaultRule("store.read", FaultKind.ERROR, rate=1.0),)
    )
    faulty = FaultyStore(inner, plan)
    faulty.begin_torn_batch([_record("A", 0)], keep=1)
    # Despite every wrapped read failing, recovery sees true state.
    report = RecoveryScanner(faulty).recover()
    assert report.truncated == (("A", 0),)
    assert len(inner) == 0


def test_scanner_rejects_stores_without_crash_surface():
    class Bare:
        pass

    with pytest.raises(ProvenanceError, match="journal"):
        RecoveryScanner(Bare())


class TestTailCacheInvalidation:
    """Regression: SQLite cached tails must not survive a failed batch."""

    def test_failed_batch_does_not_poison_tail_cache(self):
        with SQLiteProvenanceStore() as store:
            store.append_many([_record("A", 0)])
            # Duplicate key inside the batch: the transaction rolls back.
            with pytest.raises(SequenceError):
                store.append_many([_record("A", 1), _record("A", 1)])
            # Pre-fix, the cache claimed (A, 1) was the tail and the retry
            # below was rejected as a regression / chained off an
            # uncommitted checksum.  The true tail is still (A, 0).
            assert store._tail("A")[0] == 0
            store.append_many([_record("A", 1)])
            assert store.latest("A").seq_id == 1

    def test_torn_batch_tail_restored_after_recovery(self):
        with SQLiteProvenanceStore() as store:
            store.append_many([_record("A", 0)])
            store.begin_torn_batch([_record("A", 1), _record("A", 2)], keep=2)
            # A crashed-then-restarted writer would see the torn tail...
            assert store._tail("A")[0] == 2
            RecoveryScanner(store).recover()
            # ...and recovery must roll the cache back with the rows.
            assert store._tail("A")[0] == 0
            store.append_many([_record("A", 1)])
            assert store.latest("A").seq_id == 1
