"""Conformance matrix: {memory, sqlite} × {serial, parallel} × R1–R8.

Each attack scenario from :mod:`repro.attacks.scenarios` is replayed
against a world whose history crashed mid-write and was recovered.  The
contract: crash-recovery is *invisible* to verification — every attack
is detected (or, for the documented R7 boundary case, not detected)
exactly as in the fault-free world, with the same ``failure_tally()``.

Both worlds are built from the same RNG seed, so their key material and
records are identical; any report difference is recovery's fault.
"""

import random

import pytest

from repro.attacks.scenarios import AttackWorld, all_scenarios, build_world
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import CrashError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore

WORKER_MODES = (1, 4)  # serial / parallel verifier


def build_crashed_world(store_factory, seed: int = 0x5EC) -> AttackWorld:
    """``build_world``'s history, except mallory's write crashes mid-batch
    and is retried after recovery.  Same RNG seed as the reference world,
    so the surviving records are identical."""
    plan = FaultPlan(
        seed=0,
        rules=(
            FaultRule(
                "store.append_many",
                FaultKind.TORN,
                indices=frozenset({2}),
                torn_keep=1,
            ),
        ),
    )
    inner = store_factory()
    rng = random.Random(seed)
    db = TamperEvidentDatabase(
        provenance_store=FaultyStore(inner, plan), key_bits=512, rng=rng
    )
    alice = db.enroll("alice")
    mallory = db.enroll("mallory")
    eve = db.enroll("eve")
    a, m, e = db.session(alice), db.session(mallory), db.session(eve)

    a.insert("x", 10)            # flush 0
    a.update("x", 11)            # flush 1
    with pytest.raises(CrashError):
        m.update("x", 12)        # flush 2: torn batch, then "power cut"
    report = RecoveryScanner(inner).recover()
    assert report.truncated, "the torn suffix must have been rolled back"
    m.update("x", 12)            # the restarted writer retries
    a.update("x", 13)
    e.update("x", 14)

    a.insert("y", 99)
    a.update("y", 100)

    return AttackWorld(
        db=db,
        alice=alice,
        mallory=mallory,
        eve=eve,
        shipment=db.ship("x"),
        other_shipment=db.ship("y"),
    )


@pytest.fixture(scope="module")
def worlds():
    """(crashed world, fault-free reference) per store backend."""
    return {
        "memory": (build_crashed_world(InMemoryProvenanceStore), build_world()),
        "sqlite": (build_crashed_world(SQLiteProvenanceStore), build_world()),
    }


@pytest.mark.parametrize("store_kind", ("memory", "sqlite"))
def test_recovered_history_matches_reference(worlds, store_kind):
    """Before any attack: the recovered store's records are identical to
    the fault-free world's (same seed, same keys, same chains)."""
    crashed, reference = worlds[store_kind]
    assert [r.to_dict() for r in crashed.shipment.records] == [
        r.to_dict() for r in reference.shipment.records
    ]


@pytest.mark.parametrize("workers", WORKER_MODES, ids=("serial", "parallel"))
@pytest.mark.parametrize("store_kind", ("memory", "sqlite"))
def test_clean_recovered_world_verifies(worlds, store_kind, workers):
    crashed, _ = worlds[store_kind]
    report = crashed.shipment.verify_with_ca(
        crashed.db.ca.public_key, crashed.db.ca.name, workers=workers
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("workers", WORKER_MODES, ids=("serial", "parallel"))
@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
@pytest.mark.parametrize("store_kind", ("memory", "sqlite"))
def test_attack_detection_survives_crash_recovery(
    worlds, store_kind, scenario, workers
):
    crashed, reference = worlds[store_kind]
    tampered = scenario.run(crashed)
    report = tampered.verify_with_ca(
        crashed.db.ca.public_key, crashed.db.ca.name, workers=workers
    )
    assert (not report.ok) == scenario.expect_detected, (
        f"{scenario.requirement} ({scenario.name}) after crash-recovery: "
        f"expected detected={scenario.expect_detected}, got {report.summary()}"
    )
    # Identical tally to the fault-free world: recovery neither hides
    # failures nor manufactures new ones.
    ref_report = scenario.run(reference).verify_with_ca(
        reference.db.ca.public_key, reference.db.ca.name
    )
    assert report.failure_tally() == ref_report.failure_tally()
    if scenario.expect_detected:
        assert report.failure_tally(), scenario.name
