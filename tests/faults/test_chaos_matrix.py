"""Conformance matrix: {memory, sqlite} × {serial, parallel} × {scheme} × R1–R8.

Each attack scenario from :mod:`repro.attacks.scenarios` is replayed
against a world whose history crashed mid-write and was recovered.  The
contract: crash-recovery is *invisible* to verification — every attack
is detected (or, for the documented R7 boundary case, not detected)
exactly as in the fault-free world, with the same ``failure_tally()``.

Both worlds are built from the same RNG seed, so their key material and
records are identical; any report difference is recovery's fault.

The scheme axis runs the whole matrix under per-record RSA signing and
under Merkle-batch signing (one root signature per flush, per-record
inclusion proofs).  A final cross-scheme check pins the tentpole
guarantee: the *verification reports* for every tampered workload are
byte-identical between the two schemes.
"""

import random

import pytest

from repro.attacks.scenarios import AttackWorld, all_scenarios, build_world
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import CrashError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore

WORKER_MODES = (1, 4)  # serial / parallel verifier
SCHEMES = ("rsa-per-record", "merkle-batch")


def build_crashed_world(
    store_factory, seed: int = 0x5EC, scheme: str = "rsa-per-record"
) -> AttackWorld:
    """``build_world``'s history, except mallory's write crashes mid-batch
    and is retried after recovery.  Same RNG seed as the reference world,
    so the surviving records are identical."""
    plan = FaultPlan(
        seed=0,
        rules=(
            FaultRule(
                "store.append_many",
                FaultKind.TORN,
                indices=frozenset({2}),
                torn_keep=1,
            ),
        ),
    )
    inner = store_factory()
    rng = random.Random(seed)
    db = TamperEvidentDatabase(
        provenance_store=FaultyStore(inner, plan),
        key_bits=512,
        rng=rng,
        signature_scheme=scheme,
    )
    alice = db.enroll("alice")
    mallory = db.enroll("mallory")
    eve = db.enroll("eve")
    a, m, e = db.session(alice), db.session(mallory), db.session(eve)

    a.insert("x", 10)            # flush 0
    a.update("x", 11)            # flush 1
    with pytest.raises(CrashError):
        m.update("x", 12)        # flush 2: torn batch, then "power cut"
    report = RecoveryScanner(inner).recover()
    assert report.truncated, "the torn suffix must have been rolled back"
    m.update("x", 12)            # the restarted writer retries
    a.update("x", 13)
    e.update("x", 14)

    a.insert("y", 99)
    a.update("y", 100)

    return AttackWorld(
        db=db,
        alice=alice,
        mallory=mallory,
        eve=eve,
        shipment=db.ship("x"),
        other_shipment=db.ship("y"),
    )


@pytest.fixture(scope="module")
def worlds():
    """(crashed world, fault-free reference) per (store backend, scheme)."""
    out = {}
    for scheme in SCHEMES:
        out["memory", scheme] = (
            build_crashed_world(InMemoryProvenanceStore, scheme=scheme),
            build_world(scheme=scheme),
        )
        out["sqlite", scheme] = (
            build_crashed_world(SQLiteProvenanceStore, scheme=scheme),
            build_world(scheme=scheme),
        )
    return out


def _comparable(record, scheme):
    """A record's dict, minus fields a crash legitimately perturbs.

    Merkle-batch epochs are monotone but not contiguous: the crashed
    flush consumed an epoch whose batch was then rolled back, so the
    recovered world's later epochs differ from the fault-free world's.
    The checksums (deterministic leaf digests) and everything the
    verifier reports still match exactly.
    """
    data = record.to_dict()
    if scheme == "merkle-batch":
        data.pop("proof", None)
    return data


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("store_kind", ("memory", "sqlite"))
def test_recovered_history_matches_reference(worlds, store_kind, scheme):
    """Before any attack: the recovered store's records are identical to
    the fault-free world's (same seed, same keys, same chains)."""
    crashed, reference = worlds[store_kind, scheme]
    assert [_comparable(r, scheme) for r in crashed.shipment.records] == [
        _comparable(r, scheme) for r in reference.shipment.records
    ]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("workers", WORKER_MODES, ids=("serial", "parallel"))
@pytest.mark.parametrize("store_kind", ("memory", "sqlite"))
def test_clean_recovered_world_verifies(worlds, store_kind, workers, scheme):
    crashed, _ = worlds[store_kind, scheme]
    report = crashed.shipment.verify_with_ca(
        crashed.db.ca.public_key, crashed.db.ca.name, workers=workers
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("workers", WORKER_MODES, ids=("serial", "parallel"))
@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
@pytest.mark.parametrize("store_kind", ("memory", "sqlite"))
def test_attack_detection_survives_crash_recovery(
    worlds, store_kind, scenario, workers, scheme
):
    crashed, reference = worlds[store_kind, scheme]
    tampered = scenario.run(crashed)
    report = tampered.verify_with_ca(
        crashed.db.ca.public_key, crashed.db.ca.name, workers=workers
    )
    assert (not report.ok) == scenario.expect_detected, (
        f"{scenario.requirement} ({scenario.name}) after crash-recovery: "
        f"expected detected={scenario.expect_detected}, got {report.summary()}"
    )
    # Identical tally to the fault-free world: recovery neither hides
    # failures nor manufactures new ones.
    ref_report = scenario.run(reference).verify_with_ca(
        reference.db.ca.public_key, reference.db.ca.name
    )
    assert report.failure_tally() == ref_report.failure_tally()
    if scenario.expect_detected:
        assert report.failure_tally(), scenario.name


@pytest.mark.parametrize("workers", WORKER_MODES, ids=("serial", "parallel"))
@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
@pytest.mark.parametrize("store_kind", ("memory", "sqlite"))
def test_reports_byte_identical_across_schemes(worlds, store_kind, scenario, workers):
    """The tentpole contract: for every attack, the verification report
    under Merkle-batch signing is byte-identical to per-record RSA —
    same failures, same ordering, same messages, same counts — for every
    store backend and verifier mode.  The crashed-and-recovered worlds
    are used, so the identity holds even across non-contiguous epochs."""
    rsa_world, _ = worlds[store_kind, "rsa-per-record"]
    mb_world, _ = worlds[store_kind, "merkle-batch"]
    rsa_report = scenario.run(rsa_world).verify_with_ca(
        rsa_world.db.ca.public_key, rsa_world.db.ca.name, workers=workers
    )
    mb_report = scenario.run(mb_world).verify_with_ca(
        mb_world.db.ca.public_key, mb_world.db.ca.name, workers=workers
    )
    assert rsa_report.failures == mb_report.failures
    assert rsa_report.ok == mb_report.ok
    assert rsa_report.records_checked == mb_report.records_checked
    assert rsa_report.objects_checked == mb_report.objects_checked
