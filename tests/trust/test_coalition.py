"""k-party collusion: the detection theorem, both halves.

Detection holds for any coalition excluding at least one honest
participant in the rewritten suffix; a full-coalition rewrite is
(documentedly) undetectable by signature checks alone.
"""

import pytest

from repro.exceptions import ProvenanceError
from repro.trust.coalition import (
    coalition_rewrite,
    honest_blocker,
    rewrite_store_suffix,
    seeded_coalition,
)
from repro.trust.custody import transfer_custody


def _verdict(world, shipment):
    return shipment.verify_with_ca(world.db.ca.public_key, world.db.ca.name)


def test_seeded_coalition_is_deterministic(world):
    people = list(world.participants.values())
    first = seeded_coalition(9, people, 2)
    second = seeded_coalition(9, list(reversed(people)), 2)
    assert [p.participant_id for p in first] == [
        p.participant_id for p in second
    ]
    different = seeded_coalition(10, people, 2)
    assert len(different) == 2


def test_seeded_coalition_rejects_bad_sizes(world):
    people = list(world.participants.values())
    with pytest.raises(ProvenanceError, match="out of range"):
        seeded_coalition(0, people, 0)
    with pytest.raises(ProvenanceError, match="out of range"):
        seeded_coalition(0, people, 4)


def test_honest_blocker_finds_the_first_honest_record(world):
    shipment = world.shipment
    # Suffix from seq 2 (mallory): alice's seq-3 record blocks.
    blocker = honest_blocker(shipment, "x", 2, [world.mallory, world.eve])
    assert blocker is not None and blocker.participant_id == "alice"
    assert blocker.seq_id == 3
    # Suffix from seq 3 owned entirely by {alice, eve}: nothing blocks.
    assert honest_blocker(shipment, "x", 3, [world.alice, world.eve]) is None


def test_honest_outgoing_custodian_blocks_even_when_incoming_colludes(world):
    store = world.db.provenance_store
    tail = store.latest("x")
    outgoing = world.participants[tail.participant_id]  # honest
    incoming = next(
        p for pid, p in sorted(world.participants.items())
        if pid != tail.participant_id
    )
    record = transfer_custody(store, "x", outgoing, incoming)
    shipment = world.db.ship("x")
    coalition = [
        p for p in world.participants.values()
        if p.participant_id != outgoing.participant_id
    ]
    blocker = honest_blocker(shipment, "x", record.seq_id, coalition)
    assert blocker is not None
    assert blocker.seq_id == record.seq_id  # the transfer itself


def test_partial_coalition_rewrite_is_detected(world):
    tampered = coalition_rewrite(
        world.shipment, "x", 2, [world.mallory, world.eve], new_value=4242
    )
    report = _verdict(world, tampered)
    assert not report.ok
    assert "R1" in report.failure_tally()


def test_full_coalition_rewrite_is_documentedly_undetected(world):
    """The concession the paper makes: a coalition owning the entire
    suffix produces an internally consistent forgery.  This test pins
    the gap the witness (test_witness.py) closes."""
    tampered = coalition_rewrite(
        world.shipment, "x", 3, [world.alice, world.eve], new_value=4343
    )
    report = _verdict(world, tampered)
    assert report.ok, report.summary()
    # ...and history really was rewritten: seq 3 now claims 4343 and
    # seq 4 was re-signed to chain onto the forged record.
    by_seq = {r.seq_id: r for r in tampered.records if r.object_id == "x"}
    assert by_seq[3].output.value == 4343
    assert by_seq[4].inputs[0].digest == by_seq[3].output.digest
    original = {r.seq_id: r for r in world.shipment.records if r.object_id == "x"}
    assert by_seq[4].checksum != original[4].checksum


def test_rewrite_requires_member_owned_start(world):
    with pytest.raises(ProvenanceError, match="not in the coalition"):
        coalition_rewrite(world.shipment, "x", 3, [world.mallory], 7)


def test_store_rewrite_requires_full_suffix_ownership(world):
    store = world.db.provenance_store
    with pytest.raises(ProvenanceError, match="entire"):
        rewrite_store_suffix(store, "x", 2, [world.mallory, world.eve], 7)


def test_store_rewrite_is_internally_consistent(world):
    """Insiders rewrite the suffix in place; the monitor's chain checks
    (which see only the store, not the live data) stay green — the gap
    only a witness anchor closes."""
    from repro.monitor.monitor import ProvenanceMonitor

    store = world.db.provenance_store
    tail = store.latest("x")
    forged = rewrite_store_suffix(
        store, "x", tail.seq_id, list(world.participants.values()), 986543
    )
    assert forged and store.latest("x").checksum == forged[-1].checksum
    result = ProvenanceMonitor(store, world.db.keystore()).tick()
    assert result.health == "ok", result.alerts
