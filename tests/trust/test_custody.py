"""Custody hand-offs: dual-signed TRANSFER records and their forgeries."""

import pytest

from repro.exceptions import ProvenanceError
from repro.provenance.records import CustodyTransfer, Operation, ProvenanceRecord
from repro.trust.custody import (
    build_transfer_record,
    fabricate_handoff,
    reattribute_handoff,
    strip_handoff,
    transfer_custody,
)
from tests.trust.conftest import verify


def _handoff(world):
    """Alice (tail author is eve at seq 4) — hand custody eve -> mallory."""
    tail = world.db.provenance_store.latest("x")
    outgoing = world.participants[tail.participant_id]
    incoming = next(
        p for pid, p in sorted(world.participants.items())
        if pid != tail.participant_id
    )
    record = transfer_custody(
        world.db.provenance_store, "x", outgoing, incoming
    )
    return record, outgoing, incoming


def test_honest_handoff_verifies_clean(world):
    record, outgoing, incoming = _handoff(world)
    assert record.operation is Operation.TRANSFER
    assert record.transfer.from_participant == outgoing.participant_id
    assert record.transfer.to_participant == incoming.participant_id
    assert record.participant_id == incoming.participant_id
    # Custody moves; the value does not.
    assert record.output.digest == record.inputs[0].digest
    report = verify(world)
    assert report.ok, report.summary()


def test_chained_handoffs_verify_clean(world):
    for _ in range(3):
        _handoff(world)
    report = verify(world)
    assert report.ok, report.summary()


def test_only_the_tail_author_can_hand_off(world):
    tail = world.db.provenance_store.latest("x")
    non_holder = next(
        p for pid, p in sorted(world.participants.items())
        if pid != tail.participant_id
    )
    other = next(
        p for pid, p in sorted(world.participants.items())
        if pid not in (tail.participant_id, non_holder.participant_id)
    )
    with pytest.raises(ProvenanceError, match="chain-tail author"):
        build_transfer_record(tail, non_holder, other)


def test_self_transfer_is_rejected(world):
    tail = world.db.provenance_store.latest("x")
    holder = world.participants[tail.participant_id]
    with pytest.raises(ProvenanceError, match="themselves"):
        build_transfer_record(tail, holder, holder)


def test_transfer_record_serialization_roundtrip(world):
    record, _, _ = _handoff(world)
    clone = ProvenanceRecord.from_dict(record.to_dict())
    assert clone == record
    assert clone.transfer == record.transfer
    assert CustodyTransfer.from_dict(record.transfer.to_dict()) == record.transfer


def test_fabricated_handoff_is_custody_tampering(world):
    shipment = world.db.ship("x")
    tampered = fabricate_handoff(shipment, "x", world.mallory)
    report = tampered.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
    assert not report.ok
    assert "CUSTODY" in report.failure_tally()


def test_reattributed_handoff_is_custody_tampering(world):
    record, _, incoming = _handoff(world)
    new_from = next(
        pid for pid in sorted(world.participants)
        if pid not in (record.transfer.from_participant, record.participant_id)
    )
    shipment = world.db.ship("x")
    tampered = reattribute_handoff(shipment, "x", record.seq_id, incoming, new_from)
    report = tampered.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
    assert not report.ok
    assert "CUSTODY" in report.failure_tally()


def test_stripped_handoff_is_structural_tampering(world):
    record, _, incoming = _handoff(world)
    shipment = world.db.ship("x")
    tampered = strip_handoff(shipment, "x", record.seq_id, incoming)
    report = tampered.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
    assert not report.ok
    assert "STRUCT" in report.failure_tally()
