"""Shared fixtures for the multi-participant trust suite.

Every test here runs under BOTH signature schemes (per-record RSA and
Merkle-batch) — the trust layer's guarantees are scheme-independent.
"""

import pytest

from repro.attacks.scenarios import build_world

SCHEMES = ("rsa-pkcs1v15", "merkle-batch")


@pytest.fixture(params=SCHEMES)
def scheme(request):
    return request.param


@pytest.fixture
def world(scheme):
    """A fresh attack world per test — trust drills mutate the store."""
    return build_world(seed=0x5EC, scheme=scheme)


def verify(world):
    """Verify a fresh shipment of ``x`` as the data recipient would."""
    shipment = world.db.ship("x")
    return shipment.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
