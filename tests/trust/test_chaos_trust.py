"""The chaos adversary axis: every trust mode holds under faults.

CI runs the extended matrix ({memory,sqlite} × {serial,parallel} ×
{schemes} × {trust modes} × several seeds); this in-tree slice keeps the
conformance claim under test on every run.
"""

import json

import pytest

from repro.faults import ChaosConfig, run_chaos

MODES = ("solo", "hand-off", "k-collusion", "witnessed")


@pytest.mark.parametrize("trust", MODES)
@pytest.mark.parametrize("scheme", ("rsa-per-record", "merkle-batch"))
def test_trust_modes_hold_under_faults(trust, scheme):
    report = run_chaos(
        ChaosConfig(seed=11, ops=25, trust=trust, scheme=scheme)
    )
    assert report["invariants"]["trust_holds"], report["trust"]
    assert report["invariants"]["ok"], report["invariants"]
    if trust == "witnessed":
        assert report["trust"]["plain_monitor_health"] == "ok"
        assert report["trust"]["witnessed_monitor_health"] == "tampered"


def test_trust_reports_are_seed_deterministic():
    config = dict(seed=23, ops=25, trust="k-collusion", coalition_size=2)
    first = json.dumps(run_chaos(ChaosConfig(**config)), sort_keys=True)
    second = json.dumps(run_chaos(ChaosConfig(**config)), sort_keys=True)
    assert first == second


@pytest.mark.parametrize("scheme", ("rsa-per-record", "merkle-batch"))
def test_trust_verdicts_identical_serial_vs_parallel(scheme):
    """Acceptance criterion: the verification-bearing report sections are
    byte-identical across {serial, parallel} × both schemes (the config
    echo necessarily differs on ``workers``)."""
    sections = ("workload", "tamper", "trust", "invariants")
    reports = [
        run_chaos(
            ChaosConfig(
                seed=31, ops=25, trust="hand-off", scheme=scheme,
                workers=workers,
            )
        )
        for workers in (1, 2)
    ]
    serial = {k: reports[0][k] for k in sections}
    parallel = {k: reports[1][k] for k in sections}
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )


def test_unknown_trust_mode_is_rejected():
    from repro.exceptions import ProvenanceError

    with pytest.raises(ProvenanceError, match="trust"):
        run_chaos(ChaosConfig(seed=1, ops=5, trust="quorum"))


def test_solo_reports_unchanged_by_the_trust_axis():
    """The new axis must not shift historical solo schedules: a solo run
    is byte-identical to the same config from before the axis existed
    (same rng streams, handoffs pinned at zero)."""
    report = run_chaos(ChaosConfig(seed=2, ops=25))
    assert report["workload"]["handoffs"] == 0
    assert report["trust"] is None  # no drill ran, nothing to report
    assert report["invariants"]["trust_holds"]
    assert report["invariants"]["ok"]
