"""Witness anchoring: the anchor log, check_anchors, and the monitor rule.

The headline theorem: a full-coalition store rewrite passes every chain
check (see test_coalition.py) but contradicts the witness anchor log —
the witnessed monitor flags it as ``witness-mismatch`` tampering.
"""

import dataclasses

import pytest

from repro.exceptions import ProvenanceError, VerificationError
from repro.monitor.monitor import ProvenanceMonitor
from repro.trust.coalition import rewrite_store_suffix
from repro.trust.witness import AnchorLog, Witness, WitnessAnchor, check_anchors


@pytest.fixture
def witness():
    return Witness.generate(key_bits=512, seed=0x517)


def test_tick_anchors_every_tail_once(world, witness):
    store = world.db.provenance_store
    fresh = witness.tick(store)
    assert [a.object_id for a in fresh] == ["x", "y"]
    assert all(
        a.seq_id == store.latest(a.object_id).seq_id for a in fresh
    )
    # Idle store → nothing new; one update → exactly one new anchor.
    assert witness.tick(store) == ()
    world.db.session(world.alice).update("y", 101)
    again = witness.tick(store)
    assert [a.object_id for a in again] == ["y"]
    assert len(witness.log) == 3


def test_log_rejects_gaps_and_broken_links(world, witness):
    witness.tick(world.db.provenance_store)
    good = witness.log.entries[-1]
    with pytest.raises(VerificationError, match="does not continue"):
        witness.log.append(dataclasses.replace(good, index=good.index + 2))
    with pytest.raises(VerificationError, match="hash-link"):
        witness.log.append(
            dataclasses.replace(good, index=len(witness.log), prev_digest=b"xx")
        )


def test_log_audit_catches_insider_edits(world, witness):
    witness.tick(world.db.provenance_store)
    assert witness.log.audit(witness.verifier()) == ()
    # An insider swaps an anchored checksum: the witness signature no
    # longer covers the payload, and the next entry's link breaks.
    original = witness.log.entries[0]
    witness.log.entries[0] = dataclasses.replace(original, checksum=b"\x00" * 20)
    problems = witness.log.audit(witness.verifier())
    reasons = [reason for _, reason in problems]
    assert any("signature" in reason for reason in reasons)
    assert any("hash link" in reason for reason in reasons)


def test_log_save_load_roundtrip(world, witness, tmp_path):
    witness.tick(world.db.provenance_store)
    path = str(tmp_path / "anchors.jsonl")
    witness.log.save(path)
    loaded = AnchorLog.load(path)
    assert loaded.entries == witness.log.entries
    assert loaded.audit(witness.verifier()) == ()
    assert AnchorLog.load(str(tmp_path / "missing.jsonl")).entries == []


def test_anchor_serialization_roundtrip(world, witness):
    anchor = witness.tick(world.db.provenance_store)[0]
    assert WitnessAnchor.from_dict(anchor.to_dict()) == anchor
    with pytest.raises(VerificationError, match="malformed"):
        WitnessAnchor.from_dict({"index": "nope"})


def test_check_anchors_flags_rewrite_and_truncation(world, witness):
    store = world.db.provenance_store
    witness.tick(store)
    assert check_anchors(store, witness.log, witness.verifier()) == ()
    # Full-coalition rewrite of x's tail: chain checks pass, anchors don't.
    tail = store.latest("x")
    rewrite_store_suffix(
        store, "x", tail.seq_id, list(world.participants.values()), 31337
    )
    mismatches = check_anchors(store, witness.log, witness.verifier())
    assert [(m[0], m[1]) for m in mismatches] == [("x", tail.seq_id)]
    assert "rewritten" in mismatches[0][2]
    # Truncating y past its anchor is a second, distinct mismatch class.
    y_tail = store.latest("y")
    store.discard("y", y_tail.seq_id)
    mismatches = check_anchors(store, witness.log, witness.verifier())
    assert any("missing" in reason for _, _, reason in mismatches)


def test_witnessed_monitor_closes_the_full_coalition_gap(world, witness):
    """The acceptance criterion: undetectable without the witness,
    ``witness-mismatch`` tampering with it."""
    store = world.db.provenance_store
    witness.tick(store)
    tail = store.latest("x")
    rewrite_store_suffix(
        store, "x", tail.seq_id, list(world.participants.values()), 986543
    )
    plain = ProvenanceMonitor(store, world.db.keystore())
    assert plain.tick().health == "ok"

    watched = ProvenanceMonitor(
        store,
        world.db.keystore(),
        witness_log=witness.log,
        witness_verifier=witness.verifier(),
    )
    result = watched.tick()
    assert result.health == "tampered"
    alerts = [a for a in result.alerts if a.rule == "witness-mismatch"]
    assert alerts and all(a.tampering for a in alerts)
    assert alerts[0].fields["object_id"] == "x"
    # The mismatch persists on the idle fast path: nothing new to
    # verify, but the anchors still contradict the store.
    assert watched.tick().health == "tampered"


def test_clean_witnessed_monitor_stays_ok(world, witness):
    store = world.db.provenance_store
    witness.tick(store)
    watched = ProvenanceMonitor(
        store,
        world.db.keystore(),
        witness_log=witness.log,
        witness_verifier=witness.verifier(),
    )
    assert watched.tick().health == "ok"
    world.db.session(world.alice).update("x", 15)
    witness.tick(store)
    assert watched.tick().health == "ok"


def test_monitor_rejects_half_a_witness(world, witness):
    store = world.db.provenance_store
    with pytest.raises(ProvenanceError, match="together"):
        ProvenanceMonitor(store, world.db.keystore(), witness_log=witness.log)
    with pytest.raises(ProvenanceError, match="together"):
        ProvenanceMonitor(
            store, world.db.keystore(), witness_verifier=witness.verifier()
        )
