"""Property tests: custody/coalition verdicts are scheme- and
worker-independent.

Hypothesis draws random chains (author sequences), transfer points, and
coalition subsets; for every drawn scenario the verification report must
be byte-identical serial vs parallel AND across the per-record RSA and
Merkle-batch signature schemes, and tampering at/around the hand-off
must fail exactly the expected requirement.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import tampering
from repro.core.system import TamperEvidentDatabase
from repro.trust.coalition import coalition_rewrite, honest_blocker
from repro.trust.custody import (
    fabricate_handoff,
    reattribute_handoff,
    strip_handoff,
    transfer_custody,
)

SCHEMES = ("rsa-per-record", "merkle-batch")
CAST = ("p0", "p1", "p2")

#: A drawn chain plan: per-update author indices.  The insert is always
#: p0's; a transfer is woven in after the last update.
authors_strategy = st.lists(
    st.integers(min_value=0, max_value=2), min_size=2, max_size=5
)

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(scheme, authors, transfer_to):
    """Replay one drawn plan under ``scheme``; returns (db, people, xfer)."""
    db = TamperEvidentDatabase(
        key_bits=512, rng=random.Random(0xFEED), signature_scheme=scheme
    )
    people = {name: db.enroll(name) for name in CAST}
    sessions = {name: db.session(p) for name, p in people.items()}
    sessions["p0"].insert("x", 0)
    for step, author in enumerate(authors):
        sessions[CAST[author]].update("x", step + 1)
    tail = db.provenance_store.latest("x")
    outgoing = people[tail.participant_id]
    others = [n for n in CAST if n != tail.participant_id]
    incoming = people[others[transfer_to % len(others)]]
    record = transfer_custody(db.provenance_store, "x", outgoing, incoming)
    return db, people, record


def _report_bytes(db, shipment, workers):
    report = shipment.verify(db.keystore(), workers=workers)
    return (
        report.ok,
        tuple(str(f) for f in report.failures),
        tuple(sorted(report.failure_tally().items())),
    )


@SETTINGS
@given(
    authors=authors_strategy,
    transfer_to=st.integers(min_value=0, max_value=1),
    attack=st.sampled_from(("none", "fabricate", "reattribute", "strip", "r1")),
)
def test_reports_identical_across_schemes_and_workers(
    authors, transfer_to, attack
):
    outcomes = []
    for scheme in SCHEMES:
        db, people, record = _build(scheme, authors, transfer_to)
        shipment = db.ship("x")
        incoming = people[record.participant_id]
        if attack == "fabricate":
            attacker = next(
                p for n, p in sorted(people.items())
                if n != record.participant_id
            )
            shipment = fabricate_handoff(shipment, "x", attacker)
        elif attack == "reattribute":
            new_from = next(
                n for n in CAST
                if n not in (record.transfer.from_participant,
                             record.participant_id)
            )
            shipment = reattribute_handoff(
                shipment, "x", record.seq_id, incoming, new_from
            )
        elif attack == "strip":
            shipment = strip_handoff(shipment, "x", record.seq_id, incoming)
        elif attack == "r1":
            # Tamper with the record just BEFORE the hand-off.
            shipment = tampering.modify_record_output(
                shipment, "x", record.seq_id - 1, fake_value=777_000
            )
        serial = _report_bytes(db, shipment, workers=1)
        parallel = _report_bytes(db, shipment, workers=2)
        assert serial == parallel, (scheme, attack)
        outcomes.append(serial)

        ok, _, tally = serial
        codes = dict(tally)
        if attack == "none":
            assert ok
        elif attack in ("fabricate", "reattribute"):
            assert not ok and "CUSTODY" in codes, (scheme, attack, tally)
        elif attack == "strip":
            assert not ok and "STRUCT" in codes, (scheme, tally)
        else:  # r1
            assert not ok and "R1" in codes, (scheme, tally)
    assert outcomes[0] == outcomes[1], "schemes disagree"


@SETTINGS
@given(
    authors=authors_strategy,
    transfer_to=st.integers(min_value=0, max_value=1),
    members=st.sets(
        st.integers(min_value=0, max_value=2), min_size=1, max_size=3
    ),
    data=st.data(),
)
def test_coalition_detection_matches_honest_blocker(
    authors, transfer_to, members, data
):
    """For every drawn coalition/suffix: detected iff an honest
    participant (author or outgoing custodian) sits in the suffix —
    identically under both schemes."""
    outcomes = []
    start_pick = None  # drawn ONCE; the plan is identical across schemes
    for scheme in SCHEMES:
        db, people, record = _build(scheme, authors, transfer_to)
        shipment = db.ship("x")
        coalition = [people[CAST[i]] for i in sorted(members)]
        member_ids = {p.participant_id for p in coalition}
        chain = sorted(
            (r for r in shipment.records if r.object_id == "x"),
            key=lambda r: r.seq_id,
        )
        starts = [
            r.seq_id for r in chain
            if r.seq_id >= 1 and r.participant_id in member_ids
        ]
        if not starts:
            return  # drawn coalition owns nothing rewriteable
        if start_pick is None:
            start_pick = data.draw(
                st.integers(0, len(starts) - 1), label="start"
            )
        start = starts[start_pick]
        blocker = honest_blocker(shipment, "x", start, coalition)
        forged = coalition_rewrite(shipment, "x", start, coalition, 424_242)
        report = forged.verify(db.keystore())
        detected = not report.ok
        assert detected == (blocker is not None), (
            scheme, start, sorted(member_ids), report.summary()
        )
        outcomes.append(
            (detected, tuple(str(f) for f in report.failures))
        )
    assert outcomes[0] == outcomes[1], "schemes disagree"
