"""Shared fixtures.

Key generation is the slowest thing the test suite does, so key pairs, the
certificate authority, and enrolled participants are session-scoped and
derived from a fixed seed: every run exercises identical key material.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.pki import CertificateAuthority, KeyStore, Participant
from repro.crypto.rsa import generate_keypair

#: Small keys keep the suite fast; RSA math is identical at any size.
TEST_KEY_BITS = 512


@pytest.fixture(scope="session")
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def keypair(rng):
    return generate_keypair(TEST_KEY_BITS, rng=rng)


@pytest.fixture(scope="session")
def other_keypair(rng):
    return generate_keypair(TEST_KEY_BITS, rng=rng)


@pytest.fixture(scope="session")
def ca(rng):
    return CertificateAuthority(key_bits=TEST_KEY_BITS, rng=rng)


@pytest.fixture(scope="session")
def participants(ca, rng):
    """Three enrolled participants: p1, p2, p3 (as in the paper's Fig 3)."""
    return {
        name: Participant.enroll(name, ca, key_bits=TEST_KEY_BITS, rng=rng)
        for name in ("p1", "p2", "p3")
    }


@pytest.fixture(scope="session")
def keystore(ca, participants):
    store = KeyStore.trusting(ca)
    store.add_certificates(p.certificate for p in participants.values())
    return store


@pytest.fixture
def tedb(ca):
    """A fresh tamper-evident database sharing the session CA."""
    from repro.core.system import TamperEvidentDatabase

    return TamperEvidentDatabase(ca=ca, key_bits=TEST_KEY_BITS)


@pytest.fixture
def fig2_world(tedb, participants):
    """The paper's running example (Fig 2 / Fig 3).

    p2 inserts A and B; A is updated twice, B once; A's *original* value
    cannot be re-aggregated after updates in a state-based system, so —
    as in the figure — C aggregates A (at value a1... by the time of the
    aggregation in the figure A had moved on; here we aggregate current
    states, which preserves the DAG shape) and a later aggregation forms
    D from A and C.
    """
    p1, p2, p3 = participants["p1"], participants["p2"], participants["p3"]
    s1, s2, s3 = tedb.session(p1), tedb.session(p2), tedb.session(p3)

    s2.insert("A", "a1")      # seq 0, p2
    s2.insert("B", "b1")      # seq 0, p2
    s1.update("A", "a2")      # seq 1, p1
    s2.update("B", "b2")      # seq 1, p2
    s3.aggregate(["A", "B"], "C")   # seq 2, p3
    s2.update("A", "a3")      # seq 2, p2
    s1.aggregate(["A", "C"], "D")   # seq 3, p1
    return tedb
