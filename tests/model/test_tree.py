"""Unit tests for the in-memory forest."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    DuplicateObjectError,
    NotALeafError,
    UnknownObjectError,
)
from repro.model.tree import Forest


@pytest.fixture
def small_forest():
    """The compound object of the paper's Fig 4: A -> {B -> {D}, C}."""
    f = Forest()
    f.insert("A", "a")
    f.insert("B", "b", parent="A")
    f.insert("C", "c", parent="A")
    f.insert("D", "d", parent="B")
    return f


class TestPrimitives:
    def test_insert_and_get(self, small_forest):
        node = small_forest.get("B")
        assert node.value == "b"
        assert node.parent == "A"
        assert node.children == ("D",)

    def test_duplicate_insert_rejected(self, small_forest):
        with pytest.raises(DuplicateObjectError):
            small_forest.insert("A", "again")

    def test_insert_missing_parent_rejected(self):
        f = Forest()
        with pytest.raises(UnknownObjectError):
            f.insert("X", 1, parent="nope")

    def test_update_returns_old_value(self, small_forest):
        assert small_forest.update("D", "d2") == "d"
        assert small_forest.value("D") == "d2"

    def test_update_unknown_rejected(self, small_forest):
        with pytest.raises(UnknownObjectError):
            small_forest.update("Z", 1)

    def test_delete_leaf(self, small_forest):
        assert small_forest.delete("D") == "d"
        assert "D" not in small_forest
        assert small_forest.children("B") == ()

    def test_delete_interior_rejected(self, small_forest):
        with pytest.raises(NotALeafError):
            small_forest.delete("B")

    def test_delete_root_leaf(self):
        f = Forest()
        f.insert("solo", 1)
        f.delete("solo")
        assert len(f) == 0
        assert f.roots() == ()


class TestStructureQueries:
    def test_len_and_contains(self, small_forest):
        assert len(small_forest) == 4
        assert "A" in small_forest
        assert "Z" not in small_forest

    def test_roots(self, small_forest):
        small_forest.insert("E", "e")
        assert small_forest.roots() == ("A", "E")

    def test_children_sorted_by_global_order(self):
        f = Forest()
        f.insert("p", None)
        for child in ("p/r10", "p/r2", "p/r1"):
            f.insert(child, 0, parent="p")
        assert f.children("p") == ("p/r1", "p/r2", "p/r10")

    def test_ancestors_bottom_up(self, small_forest):
        assert small_forest.ancestors("D") == ["B", "A"]
        assert small_forest.ancestors("A") == []

    def test_root_of(self, small_forest):
        assert small_forest.root_of("D") == "A"
        assert small_forest.root_of("A") == "A"

    def test_depth(self, small_forest):
        assert small_forest.depth("A") == 0
        assert small_forest.depth("D") == 2

    def test_iter_subtree_preorder(self, small_forest):
        assert list(small_forest.iter_subtree("A")) == ["A", "B", "D", "C"]
        assert list(small_forest.iter_subtree("B")) == ["B", "D"]

    def test_subtree_size(self, small_forest):
        assert small_forest.subtree_size("A") == 4
        assert small_forest.subtree_size("C") == 1

    def test_is_leaf(self, small_forest):
        assert small_forest.is_leaf("D")
        assert not small_forest.is_leaf("A")


class TestBulkHelpers:
    def test_delete_subtree(self, small_forest):
        deleted = small_forest.delete_subtree("B")
        assert deleted == ["D", "B"]  # children before parents
        assert len(small_forest) == 2

    def test_copy_subtree_into(self, small_forest):
        target = Forest()
        target.insert("agg", None)
        created = target.copy_subtree_into(small_forest, "A", "agg/A", new_parent="agg")
        assert created[0] == "agg/A"
        assert target.subtree_size("agg") == 5
        assert target.value("agg/A/B/D") == "d"
        # source untouched
        assert small_forest.subtree_size("A") == 4


@st.composite
def op_sequences(draw):
    """Random valid primitive sequences over a bounded id space."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    return [draw(st.integers(min_value=0, max_value=999)) for _ in range(n_ops)]


class TestPropertyInvariants:
    @settings(max_examples=50)
    @given(op_sequences())
    def test_structure_invariants_hold(self, seeds):
        """After any primitive sequence: parents exist, children agree,
        roots are exactly parentless nodes, and sizes are consistent."""
        import random

        rng = random.Random(1234)
        f = Forest()
        alive = []
        for serial, seed in enumerate(seeds):
            choice = seed % 3
            if choice == 0 or not alive:  # insert
                new_id = f"n{serial}"
                parent = rng.choice(alive) if alive and seed % 2 else None
                f.insert(new_id, seed, parent)
                alive.append(new_id)
            elif choice == 1:  # update
                f.update(rng.choice(alive), seed)
            else:  # delete a leaf if any
                leaves = [x for x in alive if f.is_leaf(x)]
                if leaves:
                    victim = rng.choice(leaves)
                    f.delete(victim)
                    alive.remove(victim)

        assert len(f) == len(alive)
        for object_id in alive:
            node = f.get(object_id)
            if node.parent is None:
                assert object_id in f.roots()
            else:
                assert object_id in f.children(node.parent)
            for child in node.children:
                assert f.parent(child) == object_id
        total = sum(f.subtree_size(r) for r in f.roots())
        assert total == len(f)
