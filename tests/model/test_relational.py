"""Direct unit tests for the relational façade (engine-backed)."""

import pytest

from repro.backend.engine import DatabaseEngine
from repro.backend.memory import InMemoryStore
from repro.exceptions import (
    DuplicateObjectError,
    UnknownObjectError,
    WorkloadError,
)
from repro.model.relational import PrimitiveExecutor, RelationalView


@pytest.fixture
def view():
    return RelationalView(DatabaseEngine(InMemoryStore()))


class TestIds:
    def test_id_scheme(self, view):
        assert view.table_id("t") == "db/t"
        assert view.row_id("t", 7) == "db/t/r7"
        assert view.cell_id("t", 7, "age") == "db/t/r7/age"

    def test_custom_root(self):
        v = RelationalView(DatabaseEngine(InMemoryStore()), root_id="warehouse")
        assert v.table_id("t") == "warehouse/t"
        assert "warehouse" in v.store

    def test_executor_satisfies_protocol(self, view):
        assert isinstance(view.executor, PrimitiveExecutor)


class TestDDL:
    def test_create_table_stores_columns(self, view):
        view.create_table("t", ["a", "b"])
        assert view.columns("t") == ("a", "b")
        assert view.tables() == ("t",)

    def test_duplicate_table_rejected(self, view):
        view.create_table("t", ["a"])
        with pytest.raises(DuplicateObjectError):
            view.create_table("t", ["a"])

    def test_empty_columns_rejected(self, view):
        with pytest.raises(WorkloadError):
            view.create_table("t", [])

    def test_duplicate_columns_rejected(self, view):
        with pytest.raises(WorkloadError):
            view.create_table("t", ["a", "a"])

    def test_columns_of_missing_table(self, view):
        with pytest.raises(UnknownObjectError):
            view.columns("ghost")

    def test_multiple_tables_sorted(self, view):
        view.create_table("zeta", ["a"])
        view.create_table("alpha", ["a"])
        assert view.tables() == ("alpha", "zeta")


class TestDML:
    @pytest.fixture
    def t(self, view):
        view.create_table("t", ["a", "b"])
        return view

    def test_partial_insert_defaults_none(self, t):
        key = t.insert_row("t", {"a": 1})
        assert t.get_row("t", key) == {"a": 1, "b": None}

    def test_get_cell_and_update(self, t):
        key = t.insert_row("t", {"a": 1, "b": 2})
        t.update_cell("t", key, "b", 20)
        assert t.get_cell("t", key, "b") == 20

    def test_row_keys_sorted_numerically(self, t):
        for i in range(12):
            t.insert_row("t", {"a": i})
        assert t.row_keys("t") == list(range(12))

    def test_delete_row_removes_cells(self, t):
        key = t.insert_row("t", {"a": 1, "b": 2})
        t.delete_row("t", key)
        assert t.cell_id("t", key, "a") not in t.store
        with pytest.raises(UnknownObjectError):
            t.get_row("t", key)

    def test_delete_missing_row(self, t):
        with pytest.raises(UnknownObjectError):
            t.delete_row("t", 99)

    def test_get_missing_row(self, t):
        with pytest.raises(UnknownObjectError):
            t.get_row("t", 99)

    def test_repr(self, t):
        assert "t" in repr(t)


class TestEvents:
    def test_event_kind_property(self):
        from repro.backend.events import (
            AggregateEvent,
            ComplexOperationEvent,
            DeleteEvent,
            InsertEvent,
            UpdateEvent,
        )

        assert InsertEvent("x").kind == "insert"
        assert UpdateEvent("x").kind == "update"
        assert DeleteEvent("x").kind == "delete"
        assert AggregateEvent("x").kind == "aggregate"
        assert ComplexOperationEvent(events=()).kind == "complex"

    def test_events_frozen(self):
        from repro.backend.events import InsertEvent

        event = InsertEvent("x", value=1)
        with pytest.raises(Exception):
            event.value = 2


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        import inspect

        from repro import exceptions

        for name, obj in vars(exceptions).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, exceptions.ReproError), name

    def test_unknown_object_is_keyerror_with_clean_message(self):
        from repro.exceptions import UnknownObjectError

        error = UnknownObjectError("object 'x' does not exist")
        assert isinstance(error, KeyError)
        assert str(error) == "object 'x' does not exist"  # no KeyError quoting

    def test_domain_errors_catchable_at_base(self):
        from repro.exceptions import ReproError
        from repro.sql.parser import SQLSyntaxError, parse

        with pytest.raises(ReproError):
            parse("DROP TABLE t")
        assert issubclass(SQLSyntaxError, ReproError)
