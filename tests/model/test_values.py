"""Unit tests for canonical value/node encoding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidValueError
from repro.model.values import (
    decode_value,
    encode_child_link,
    encode_node,
    encode_value,
)

SUPPORTED_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.floats(allow_nan=False),
    st.text(max_size=64),
    st.binary(max_size=64),
)


class TestEncodeValue:
    def test_deterministic(self):
        assert encode_value(42) == encode_value(42)

    @pytest.mark.parametrize("a,b", [
        (1, 1.0),          # int vs float
        (1, True),         # int vs bool
        (0, False),
        (1, "1"),          # int vs str
        ("1", b"1"),       # str vs bytes
        (None, ""),        # none vs empty string
        (None, b""),
        (0, None),
    ])
    def test_cross_type_injectivity(self, a, b):
        assert encode_value(a) != encode_value(b)

    def test_negative_integers(self):
        assert encode_value(-1) != encode_value(1)
        assert decode_value(encode_value(-(2**64))) == -(2**64)

    def test_unsupported_type_rejected(self):
        with pytest.raises(InvalidValueError):
            encode_value([1, 2])
        with pytest.raises(InvalidValueError):
            encode_value({"a": 1})

    @given(SUPPORTED_VALUES)
    def test_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        if isinstance(value, float):
            assert decoded == value or (math.isnan(value) and math.isnan(decoded))
        else:
            assert decoded == value
            assert type(decoded) is type(value) or isinstance(value, (bytearray, memoryview))

    @given(SUPPORTED_VALUES, SUPPORTED_VALUES)
    def test_injective(self, a, b):
        if a != b or type(a) is not type(b):
            assert encode_value(a) != encode_value(b)

    def test_decode_garbage_rejected(self):
        with pytest.raises(InvalidValueError):
            decode_value(b"")
        with pytest.raises(InvalidValueError):
            decode_value(b"I\x00\x00\x00\x05ab")  # truncated payload
        with pytest.raises(InvalidValueError):
            decode_value(b"Z\x00\x00\x00\x00")  # unknown tag

    def test_decode_trailing_bytes_rejected(self):
        with pytest.raises(InvalidValueError):
            decode_value(encode_value(1) + b"x")


class TestEncodeNode:
    def test_binds_id_and_value(self):
        # Same value, different ids -> different encodings (basis of R5).
        assert encode_node("A", 7) != encode_node("B", 7)
        assert encode_node("A", 7) != encode_node("A", 8)

    def test_no_concatenation_ambiguity(self):
        # ("AB", "C...") must differ from ("A", "BC...")-style splits.
        assert encode_node("AB", "C") != encode_node("A", "BC")

    def test_empty_id_rejected(self):
        with pytest.raises(InvalidValueError):
            encode_node("", 1)

    def test_non_string_id_rejected(self):
        with pytest.raises(InvalidValueError):
            encode_node(17, 1)


class TestEncodeChildLink:
    def test_binds_id_and_digest(self):
        d = b"\x01" * 20
        assert encode_child_link("B", d) != encode_child_link("C", d)
        assert encode_child_link("B", d) != encode_child_link("B", b"\x02" * 20)

    def test_sequence_unambiguous(self):
        # One child "BC" vs two children "B","C": the concatenated link
        # sequences must differ (length-prefixed ids + framed digests).
        d = b"\x00" * 20
        one = encode_child_link("BC", d)
        two = encode_child_link("B", d) + encode_child_link("C", d)
        assert one != two
        assert not two.startswith(one)

    def test_deterministic(self):
        d = b"\x07" * 20
        assert encode_child_link("x", d) == encode_child_link("x", d)
