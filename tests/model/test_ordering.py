"""Unit tests for the global total order."""

from hypothesis import given
from hypothesis import strategies as st

from repro.model.ordering import ordering_key, sort_ids

ids = st.text(min_size=1, max_size=20)


class TestOrderingKey:
    def test_numeric_runs_compare_numerically(self):
        assert sort_ids(["r10", "r2", "r1"]) == ["r1", "r2", "r10"]

    def test_mixed_structure(self):
        assert sort_ids(["db/t1/r10", "db/t1/r9", "db/t1/r100"]) == [
            "db/t1/r9",
            "db/t1/r10",
            "db/t1/r100",
        ]

    def test_leading_zeros_still_total(self):
        # "a01" and "a1" numerically tie; the raw-id tiebreaker decides.
        assert ordering_key("a01") != ordering_key("a1")
        assert len(set(sort_ids(["a01", "a1"]))) == 2

    def test_pure_text(self):
        assert sort_ids(["beta", "alpha", "gamma"]) == ["alpha", "beta", "gamma"]

    @given(st.lists(ids, min_size=1, max_size=30))
    def test_sort_is_deterministic_permutation(self, values):
        import random

        shuffled = list(values)
        random.Random(7).shuffle(shuffled)
        assert sort_ids(shuffled) == sort_ids(values)
        assert sorted(sort_ids(values)) == sorted(values)

    @given(ids, ids)
    def test_total_order(self, a, b):
        ka, kb = ordering_key(a), ordering_key(b)
        if a == b:
            assert ka == kb
        else:
            assert ka != kb
        # comparability (no TypeError): keys are tuples of uniform shape
        assert (ka < kb) or (ka > kb) or (ka == kb)
