"""Unit tests for the Hasan-style linear-chain baseline."""

import dataclasses

import pytest

from repro.baseline.linear_chain import LinearChainProvenance
from repro.exceptions import (
    DuplicateObjectError,
    InvalidSignature,
    UnknownObjectError,
)


@pytest.fixture
def chain(participants):
    provenance = LinearChainProvenance()
    p1, p2 = participants["p1"], participants["p2"]
    provenance.insert(p1, "file", "v1")
    provenance.update(p2, "file", "v2")
    provenance.update(p1, "file", "v3")
    return provenance


class TestOperations:
    def test_linear_history(self, chain):
        records = chain.chain("file")
        assert [r.seq_id for r in records] == [0, 1, 2]
        assert chain.value("file") == "v3"
        assert chain.history_length("file") == 3

    def test_duplicate_insert_rejected(self, chain, participants):
        with pytest.raises(DuplicateObjectError):
            chain.insert(participants["p1"], "file", "again")

    def test_update_unknown_rejected(self, chain, participants):
        with pytest.raises(UnknownObjectError):
            chain.update(participants["p1"], "ghost", 1)

    def test_value_unknown_rejected(self, chain):
        with pytest.raises(UnknownObjectError):
            chain.value("ghost")


class TestVerification:
    def test_clean_chain_verifies(self, chain, keystore):
        assert chain.verify("file", "v3", chain.chain("file"), keystore)

    def test_wrong_value_rejected(self, chain, keystore):
        with pytest.raises(InvalidSignature):
            chain.verify("file", "forged", chain.chain("file"), keystore)

    def test_tampered_record_rejected(self, chain, keystore):
        records = list(chain.chain("file"))
        records[1] = dataclasses.replace(records[1], output_value="evil")
        with pytest.raises(InvalidSignature):
            chain.verify("file", "v3", records, keystore)

    def test_removed_record_rejected(self, chain, keystore):
        records = [chain.chain("file")[0], chain.chain("file")[2]]
        with pytest.raises(InvalidSignature):
            chain.verify("file", "v3", records, keystore)

    def test_missing_genesis_rejected(self, chain, keystore):
        with pytest.raises(InvalidSignature):
            chain.verify("file", "v3", chain.chain("file")[1:], keystore)

    def test_empty_chain_rejected(self, chain, keystore):
        with pytest.raises(InvalidSignature):
            chain.verify("file", "v3", (), keystore)

    def test_foreign_record_rejected(self, chain, keystore, participants):
        chain.insert(participants["p1"], "other", 1)
        mixed = chain.chain("file")[:1] + chain.chain("other")
        with pytest.raises(InvalidSignature):
            chain.verify("file", "v3", mixed, keystore)


class TestAggregationGap:
    """§1.1's motivation: the baseline discards history on aggregation."""

    def test_combine_discards_history(self, chain, participants):
        chain.insert(participants["p2"], "other", "o1")
        chain.combine(participants["p3"], ["file", "other"], "merged", "m1")
        # The merged object has exactly ONE record: its own genesis.
        assert chain.history_length("merged") == 1

    def test_dag_scheme_preserves_history(self, tedb, participants):
        """Side-by-side: the paper's scheme keeps the full closure."""
        s = tedb.session(participants["p1"])
        s.insert("file", "v1")
        s.update("file", "v2")
        s.insert("other", "o1")
        s.aggregate(["file", "other"], "merged")
        closure = tedb.provenance_object("merged")
        assert len(closure) == 4  # 2 for file, 1 for other, 1 aggregate
        assert {r.object_id for r in closure} == {"file", "other", "merged"}

    def test_combine_checks_inputs_exist(self, chain, participants):
        with pytest.raises(UnknownObjectError):
            chain.combine(participants["p1"], ["ghost"], "m", 1)
