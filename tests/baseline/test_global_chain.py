"""Unit tests for the global-chain baseline (§3.2's rejected design)."""

import threading

import pytest

from repro.baseline.global_chain import GlobalChainProvenance
from repro.exceptions import UnknownObjectError


@pytest.fixture
def chain(participants):
    provenance = GlobalChainProvenance()
    p1, p2 = participants["p1"], participants["p2"]
    provenance.record(p1, "a", 1)
    provenance.record(p2, "b", 10)
    provenance.record(p1, "a", 2)
    provenance.record(p2, "b", 20)
    return provenance


class TestChain:
    def test_global_sequence(self, chain):
        assert [r.global_seq for r in chain.records()] == [0, 1, 2, 3]
        assert len(chain) == 4

    def test_values(self, chain):
        assert chain.value("a") == 2
        assert chain.value("b") == 20
        with pytest.raises(UnknownObjectError):
            chain.value("ghost")

    def test_lock_acquisitions_counted(self, chain):
        assert chain.lock_acquisitions == 4

    def test_interleaved_objects_share_one_chain(self, chain):
        # a's second record chains to b's first — the global coupling.
        objects_in_order = [r.object_id for r in chain.records()]
        assert objects_in_order == ["a", "b", "a", "b"]


class TestVerification:
    def test_clean_chain_all_verifiable(self, chain, keystore):
        assert chain.verifiable_objects(keystore) == {"a", "b"}

    def test_corruption_poisons_everything_after(self, chain, keystore):
        chain.corrupt(1)  # b's first record
        survivors = chain.verifiable_objects(keystore)
        # b is corrupt; a's second record follows the corruption => a also lost.
        assert survivors == set()

    def test_corruption_at_tail_spares_prior_objects(self, participants, keystore):
        chain = GlobalChainProvenance()
        chain.record(participants["p1"], "a", 1)
        chain.record(participants["p1"], "b", 1)
        chain.corrupt(1)
        assert chain.verifiable_objects(keystore) == {"a"}

    def test_failure_isolation_contrast_with_local(self, tedb, participants, keystore):
        """The §3.2 argument, head to head: corrupt one object's record;
        local chains keep every other object verifiable."""
        from repro.core.verifier import Verifier

        session = tedb.session(participants["p1"])
        for i in range(5):
            session.insert(f"obj{i}", i)
            session.update(f"obj{i}", i * 10)
        verifier = Verifier(keystore)
        # Corrupt obj0's chain (simulate storage corruption).
        records = list(tedb.provenance_of("obj0"))
        records[1] = records[1].with_checksum(b"\x00" * len(records[1].checksum))
        assert not verifier.verify_records(records).ok
        for i in range(1, 5):
            assert verifier.verify_records(tedb.provenance_of(f"obj{i}")).ok


class TestConcurrency:
    def test_parallel_appends_serialise_correctly(self, participants, keystore):
        """Appends from many threads must still form one valid chain."""
        chain = GlobalChainProvenance()
        p1 = participants["p1"]
        errors = []

        def worker(worker_id):
            try:
                for i in range(10):
                    chain.record(p1, f"w{worker_id}", i)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(chain) == 40
        assert [r.global_seq for r in chain.records()] == list(range(40))
        assert chain.verifiable_objects(keystore) == {f"w{i}" for i in range(4)}
