"""Smoke + shape tests for every paper experiment (tiny scale).

These assert the qualitative claims — the *shapes* the paper reports —
hold in this implementation, not the absolute numbers.
"""

import pytest

from repro.bench.experiments import (
    PAPER_TABLE1B_COUNTS,
    bench_participant,
    run_ablation_chaining,
    run_ablation_grouping,
    run_ablation_signature,
    run_fig6,
    run_fig7,
    run_fig8_fig9,
    run_fig10_fig11,
    run_streaming,
    run_table1b,
)
from repro.exceptions import WorkloadError

SCALE = 0.02
RUNS = 2
KEY_BITS = 512


class TestBenchParticipant:
    def test_schemes(self):
        assert bench_participant(scheme="rsa", key_bits=512).signature_size == 64
        assert bench_participant(scheme="hmac").signature_size == 20
        assert bench_participant(scheme="null").signature_size == 20

    def test_paper_checksum_size(self):
        assert bench_participant(scheme="rsa", key_bits=1024).signature_size == 128

    def test_unknown_scheme(self):
        with pytest.raises(WorkloadError):
            bench_participant(scheme="quantum")


class TestTable1b:
    def test_exact_single_table_count(self):
        result = run_table1b()
        first = result.rows[0]
        assert first[1] == first[2] == 36002

    def test_all_combinations_present(self):
        result = run_table1b(verify_build=False)
        assert len(result.rows) == len(PAPER_TABLE1B_COUNTS)
        for row in result.rows:
            assert abs(row[3]) <= 3  # computed vs printed delta


class TestFig6Shape:
    def test_linear_in_nodes(self):
        result = run_fig6(scale=SCALE, runs=RUNS)
        nodes = [row[1] for row in result.rows]
        assert nodes == sorted(nodes)
        assert nodes[-1] > 3 * nodes[0]

    def test_chart_attached(self):
        result = run_fig6(scale=SCALE, runs=1)
        assert result.charts
        title, labels, values, unit = result.charts[0]
        assert len(labels) == len(values) == len(result.rows)
        assert unit == "ms"
        assert "█" in result.render()


class TestFig7Shape:
    def test_economical_beats_basic_for_small_updates(self):
        result = run_fig7(scale=SCALE, runs=RUNS, max_points=3)
        # columns: workload, basic, economical, basic nodes, econ nodes
        for row in result.rows:
            basic_nodes, econ_nodes = row[3], row[4]
            assert econ_nodes < basic_nodes

    def test_economical_cost_grows_with_updates(self):
        result = run_fig7(scale=SCALE, runs=RUNS, max_points=6)
        econ_nodes = [row[4] for row in result.rows]
        assert econ_nodes[0] < econ_nodes[-1]

    def test_basic_cost_constant(self):
        result = run_fig7(scale=SCALE, runs=RUNS, max_points=6)
        basic_nodes = [row[3] for row in result.rows]
        assert len(set(basic_nodes)) == 1


class TestFig8Fig9Shape:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig8_fig9(scale=SCALE, runs=RUNS, key_bits=KEY_BITS)

    def test_deletes_store_least(self, results):
        _, space = results
        by_key = {row[0]: row[1] for row in space.rows}
        assert by_key["all-deletes"] < by_key["all-inserts"]
        assert by_key["all-deletes"] < by_key["updates-500-rows"]
        assert by_key["all-deletes"] <= 2  # table + root only

    def test_inserts_similar_to_updates(self, results):
        _, space = results
        by_key = {row[0]: row[1] for row in space.rows}
        assert by_key["all-inserts"] == by_key["updates-500-rows"]

    def test_spread_updates_cost_more(self, results):
        _, space = results
        by_key = {row[0]: row[1] for row in space.rows}
        assert by_key["updates-4000-rows"] > by_key["updates-500-rows"]

    def test_time_rows_complete(self, results):
        time_result, _ = results
        assert len(time_result.rows) == 4


class TestFig10Fig11Shape:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig10_fig11(scale=SCALE, runs=RUNS, key_bits=KEY_BITS)

    def test_space_falls_with_delete_share(self, results):
        _, space = results
        byte_counts = [row[2] for row in space.rows]
        assert byte_counts == sorted(byte_counts, reverse=True)

    def test_records_fall_with_delete_share(self, results):
        _, space = results
        record_counts = [row[1] for row in space.rows]
        assert record_counts == sorted(record_counts, reverse=True)


class TestStreaming:
    def test_per_node_metric(self):
        result = run_streaming(rows=2000)
        values = dict(zip((r[0] for r in result.rows), (r[1] for r in result.rows)))
        assert values["rows"] == 2000
        assert values["nodes hashed"] == 2000 * 3 + 2
        assert len(values["digest"]) == 40

    def test_digest_independent_of_run(self):
        a = dict(run_streaming(rows=500).rows)["digest"]
        b = dict(run_streaming(rows=500).rows)["digest"]
        assert a == b


class TestAblations:
    def test_chaining_isolation(self):
        result = run_ablation_chaining(n_objects=6, updates_per_object=3)
        local_row, global_row = result.rows
        assert local_row[2] == 1            # exactly the corrupted object
        assert global_row[2] > local_row[2]  # global poisons more
        assert global_row[3] > 0             # lock acquisitions observed

    def test_signature_costs_ordered(self):
        result = run_ablation_signature(scale=SCALE, runs=RUNS, key_bits=KEY_BITS)
        schemes = [row[0] for row in result.rows]
        assert schemes == ["rsa", "hmac", "null"]
        sizes = {row[0]: row[3] for row in result.rows}
        assert sizes["rsa"] == KEY_BITS // 8

    def test_grouping_reduces_records(self):
        result = run_ablation_grouping(scale=SCALE)
        by_mode = {row[0]: row[2] for row in result.rows}
        assert by_mode["complex (one group)"] < by_mode["per-primitive"]
