"""Bench history: entries, tolerant reading, gate semantics, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import history as bh
from repro.cli.main import main as cli_main


def entry_with(metrics, kind="gate", fingerprint="fp1", sha="deadbeef"):
    return {
        "kind": kind,
        "fingerprint": fingerprint,
        "metrics": metrics,
        "meta": {"git_sha": sha, "timestamp_utc": "2026-01-01T00:00:00Z"},
    }


class TestMeta:
    def test_collect_meta_shape(self):
        meta = bh.collect_meta()
        assert set(meta) == {
            "git_sha", "timestamp_utc", "hostname", "python", "cpu_count",
        }
        assert meta["cpu_count"] >= 1
        assert meta["timestamp_utc"].endswith("Z")

    def test_with_meta_preserves_metrics(self):
        payload = bh.with_meta({"guard": {"ok": True}})
        assert payload["guard"] == {"ok": True}
        assert "git_sha" in payload["meta"]

    def test_flatten_metrics(self):
        flat = bh.flatten_metrics({
            "guard": {"ok": True, "bound": 0.01},
            "arms": {"append": {"off_s": 1.5}},
            "name": "ignored-string",
        })
        assert flat == {
            "guard.ok": 1.0, "guard.bound": 0.01, "arms.append.off_s": 1.5,
        }


class TestHistoryFile:
    def test_append_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        bh.append_entry(path, entry_with({"m": 1.0}))
        bh.append_entry(path, entry_with({"m": 2.0}))
        entries = bh.read_history(path)
        assert [e["metrics"]["m"] for e in entries] == [1.0, 2.0]

    def test_read_history_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(
            json.dumps(entry_with({"m": 1.0})) + "\n"
            + '{"torn": tr\n'          # torn mid-write
            + "[1, 2]\n"               # not an object
            + '{"kind": "gate"}\n'     # object but no metrics
            + "\n"
            + json.dumps(entry_with({"m": 2.0})) + "\n"
        )
        entries = bh.read_history(str(path))
        assert [e["metrics"]["m"] for e in entries] == [1.0, 2.0]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert bh.read_history(str(tmp_path / "nope.jsonl")) == []

    def test_find_by_sha_prefix_returns_latest(self):
        entries = [
            entry_with({"m": 1.0}, sha="abc111"),
            entry_with({"m": 2.0}, sha="abc111"),
            entry_with({"m": 3.0}, sha="def222"),
        ]
        assert bh.find_by_sha(entries, "abc")["metrics"]["m"] == 2.0
        assert bh.find_by_sha(entries, "zzz") is None

    def test_fingerprint_stable_and_parameter_sensitive(self):
        a = bh.workload_fingerprint({"x": 1, "y": 2})
        b = bh.workload_fingerprint({"y": 2, "x": 1})
        c = bh.workload_fingerprint({"x": 1, "y": 3})
        assert a == b
        assert a != c


class TestGateCheck:
    SPEC = {"sign.rsa.per_record_s": "lower"}

    def history(self, *values):
        return [entry_with({"sign.rsa.per_record_s": v}) for v in values]

    def test_within_tolerance_passes(self):
        current = entry_with({"sign.rsa.per_record_s": 1.05})
        regs, compared = bh.gate_check(
            current, self.history(1.0, 1.0, 1.0), 5, 0.10, metrics=self.SPEC
        )
        assert regs == [] and compared == 3

    def test_regression_beyond_tolerance_fails(self):
        current = entry_with({"sign.rsa.per_record_s": 1.2})
        regs, _ = bh.gate_check(
            current, self.history(1.0, 1.0, 1.0), 5, 0.10, metrics=self.SPEC
        )
        assert len(regs) == 1
        assert regs[0]["metric"] == "sign.rsa.per_record_s"
        assert regs[0]["ratio"] == pytest.approx(1.2)

    def test_median_absorbs_one_outlier(self):
        # One anomalously fast baseline entry must not fail honest runs.
        current = entry_with({"sign.rsa.per_record_s": 1.05})
        regs, _ = bh.gate_check(
            current, self.history(0.2, 1.0, 1.0), 5, 0.10, metrics=self.SPEC
        )
        assert regs == []

    def test_baseline_window_takes_last_n(self):
        # Old slow entries outside the window are ignored.
        current = entry_with({"sign.rsa.per_record_s": 1.5})
        regs, compared = bh.gate_check(
            current, self.history(9.0, 9.0, 1.0, 1.0), 2, 0.10,
            metrics=self.SPEC,
        )
        assert compared == 2
        assert len(regs) == 1

    def test_no_comparable_history_passes_vacuously(self):
        current = entry_with({"sign.rsa.per_record_s": 99.0})
        regs, compared = bh.gate_check(current, [], 5, 0.10, metrics=self.SPEC)
        assert regs == [] and compared == 0
        # A different fingerprint is not comparable either.
        other = self.history(1.0)
        other[0]["fingerprint"] = "other"
        regs, compared = bh.gate_check(
            current, other, 5, 0.10, metrics=self.SPEC
        )
        assert regs == [] and compared == 0

    def test_higher_is_better_direction(self):
        spec = {"speedup": "higher"}
        current = entry_with({"speedup": 0.8})
        regs, _ = bh.gate_check(
            current, [entry_with({"speedup": 1.0})], 5, 0.10, metrics=spec
        )
        assert len(regs) == 1

    def test_compare_entries_ratio(self):
        a = entry_with({"m": 1.0, "only_a": 5.0})
        b = entry_with({"m": 2.0})
        rows = {name: (va, vb, ratio)
                for name, va, vb, ratio in bh.compare_entries(a, b)}
        assert rows["m"][2] == pytest.approx(2.0)
        assert rows["only_a"] == (5.0, None, None)


class TestGateWorkload:
    def test_clean_run_passes_against_own_baseline(self, tmp_path):
        """Acceptance: clean gate exits 0, injected slowdown exits non-0.

        The baseline is recorded immediately before gating (same
        machine, same load), which is exactly how the CI job uses it.
        """
        path = str(tmp_path / "hist.jsonl")
        metrics, profile, params = bh.run_gate_workload()
        fingerprint = bh.workload_fingerprint(params)
        bh.append_entry(
            path, bh.make_entry("gate", fingerprint, metrics, profile=profile)
        )

        assert cli_main([
            "bench", "--history", path, "gate",
            "--baseline", "3", "--tolerance", "0.50",
        ]) == 0

        assert cli_main([
            "bench", "--history", path, "gate",
            "--baseline", "3", "--tolerance", "0.10",
            "--inject-slowdown", "1.0",
        ]) == 1

    def test_workload_reports_gated_metrics_and_profile(self):
        metrics, profile, params = bh.run_gate_workload()
        for name in bh.GATE_METRICS:
            assert metrics[name] > 0
        assert "rsa.sign" in profile
        assert "verify.chain" in profile
        # The profiler detaches afterwards (no leakage into other tests).
        from repro import obs

        assert obs.OBS.profiler is None


class TestBenchCli:
    def test_record_and_report(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        bh.append_entry(path, entry_with(
            {"sign.rsa.per_record_s": 0.001}, sha="abc123"
        ))
        assert cli_main(["bench", "--history", path, "report"]) == 0
        out = capsys.readouterr().out
        assert "abc123" in out
        assert "0.001" in out

    def test_compare_unknown_sha_errors(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        bh.append_entry(path, entry_with({"m": 1.0}, sha="abc123"))
        assert cli_main(["bench", "--history", path,
                         "compare", "abc123", "zzz"]) == 2

    def test_compare_renders_ratio(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        bh.append_entry(path, entry_with({"m": 1.0}, sha="aaa111"))
        bh.append_entry(path, entry_with({"m": 2.0}, sha="bbb222"))
        assert cli_main(["bench", "--history", path,
                         "compare", "aaa111", "bbb222"]) == 0
        assert "2.000x" in capsys.readouterr().out


class TestVersionCli:
    def test_version_subcommand_prints_package_version(self, capsys):
        from repro import __version__

        assert cli_main(["version"]) == 0
        assert capsys.readouterr().out.strip() == __version__

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            cli_main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_pyproject_reads_version_from_package(self):
        from pathlib import Path

        from repro import __version__

        pyproject = (
            Path(__file__).resolve().parents[2] / "pyproject.toml"
        ).read_text()
        # Single source of truth: pyproject must defer to the package …
        assert 'dynamic = ["version"]' in pyproject
        assert 'version = { attr = "repro.__version__" }' in pyproject
        # … and never carry its own copy.
        assert f'version = "{__version__}"' not in pyproject
