"""Smoke test for the experiment runner script itself."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


class TestRunAll:
    def test_quick_mode_produces_every_artefact(self):
        completed = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "run_all.py"), "--quick"],
            capture_output=True,
            text=True,
            timeout=420,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        out = completed.stdout
        for marker in (
            "tab1b:",
            "fig6:",
            "fig7:",
            "fig8:",
            "fig9:",
            "fig10:",
            "fig11:",
            "stream:",
            "ablation-chaining:",
            "ablation-signature:",
            "ablation-grouping:",
            "total wall time",
        ):
            assert marker in out, f"missing {marker}"
        # The figures' bar charts render.
        assert "█" in out
