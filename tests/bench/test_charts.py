"""Unit tests for terminal bar charts."""

import pytest

from repro.bench.charts import bar_chart


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        a_line, b_line = text.splitlines()
        assert b_line.count("█") == 10
        assert a_line.count("█") == 5

    def test_title_and_unit(self):
        text = bar_chart(["x"], [3.0], unit="ms", title="Fig N")
        assert text.startswith("Fig N")
        assert "3 ms" in text

    def test_labels_aligned(self):
        text = bar_chart(["short", "much-longer"], [1, 1])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_zero_values(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in text and "b" in text

    def test_partial_cells(self):
        text = bar_chart(["a", "b"], [1.0, 8.0], width=4)
        a_line = text.splitlines()[0]
        assert "▌" in a_line  # 0.5 cells

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_monotone_shape_readable(self):
        # The Fig 11 read: strictly shrinking bars.
        text = bar_chart(
            ["19.2%", "36.6%", "57.0%", "78.2%"],
            [30100, 23660, 16660, 8120],
            unit="B",
        )
        lengths = [line.count("█") for line in text.splitlines()]
        assert lengths == sorted(lengths, reverse=True)
