"""Unit tests for paper-style reporting."""

from repro.bench.reporting import banner, format_kv, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "n"), [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # all rows same width
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_wide_cells_stretch_columns(self):
        text = format_table(("x",), [("very-wide-cell",)])
        assert "very-wide-cell" in text

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert len(text.splitlines()) == 2


class TestFormatKv:
    def test_aligned_keys(self):
        text = format_kv([("short", 1), ("much-longer-key", 2)])
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv([]) == ""


class TestBanner:
    def test_banner_shape(self):
        text = banner("Title")
        lines = text.splitlines()
        assert lines[0] == lines[2]
        assert lines[1] == "Title"


class TestExperimentResult:
    def test_render_contains_all_parts(self):
        from repro.bench.experiments import ExperimentResult

        result = ExperimentResult("figX", "A Title", ("col1", "col2"))
        result.add("v1", "v2")
        result.note("a note")
        text = result.render()
        assert "figX: A Title" in text
        assert "col1" in text and "v1" in text
        assert "note: a note" in text
