"""The §5.2 memory claim, asserted: streaming hashing is O(row).

The whole point of row-at-a-time hashing is databases "much larger than
available memory".  This test measures allocation peaks with tracemalloc
and requires the streaming hasher's footprint to stay far below a
materialised build of the same table — and to stay flat as the table
grows.
"""

import tracemalloc

from repro.core.merkle import StreamingDatabaseHasher
from repro.model.tree import Forest
from repro.workloads.synthetic import title_table_rows

ROWS = 8_000


def _streaming_peak(rows: int) -> int:
    tracemalloc.start()
    hasher = StreamingDatabaseHasher()
    hasher.hash_database(
        "bigdb", None, [("bigdb/title", "doc_id,title", title_table_rows(rows))]
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _materialised_peak(rows: int) -> int:
    tracemalloc.start()
    forest = Forest()
    forest.insert("bigdb", None)
    forest.insert("bigdb/title", "doc_id,title", "bigdb")
    for row_id, row_value, cells in title_table_rows(rows):
        forest.insert(row_id, row_value, "bigdb/title")
        for cell_id, value in cells:
            forest.insert(cell_id, value, row_id)
    from repro.core.merkle import subtree_digest

    subtree_digest(forest, "bigdb")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


class TestStreamingMemory:
    def test_streaming_far_below_materialised(self):
        streaming = _streaming_peak(ROWS)
        materialised = _materialised_peak(ROWS)
        # The materialised build holds the whole table; streaming holds a
        # row.  Require at least an order of magnitude between them.
        assert streaming * 10 < materialised, (
            f"streaming peak {streaming} vs materialised {materialised}"
        )

    def test_streaming_peak_flat_in_table_size(self):
        small = _streaming_peak(1_000)
        large = _streaming_peak(8_000)
        # 8x the rows must not mean anywhere near 8x the memory.
        assert large < small * 3, (
            f"peak grew from {small} to {large} over an 8x row increase"
        )
