"""Unit tests for the timing harness."""

import math
import time

import pytest

from repro.bench.timer import TimingResult, measure


class TestTimingResult:
    def test_mean(self):
        result = TimingResult(samples=(0.1, 0.2, 0.3))
        assert math.isclose(result.mean, 0.2)
        assert result.runs == 3

    def test_single_run_has_zero_ci(self):
        assert TimingResult(samples=(0.5,)).ci95 == 0.0

    def test_ci_positive_for_spread(self):
        result = TimingResult(samples=(0.1, 0.2, 0.3, 0.4))
        assert result.ci95 > 0

    def test_ci_zero_for_identical_samples(self):
        result = TimingResult(samples=(0.2, 0.2, 0.2))
        assert result.ci95 == pytest.approx(0.0)

    def test_ci_matches_t_distribution(self):
        # n=5, known samples: verify against an independent computation.
        samples = (1.0, 2.0, 3.0, 4.0, 5.0)
        result = TimingResult(samples=samples)
        # sample std = sqrt(2.5), sem = sqrt(2.5/5), t_{0.975,4} ≈ 2.776
        expected = 2.7764451052 * math.sqrt(2.5 / 5)
        assert result.ci95 == pytest.approx(expected, rel=1e-6)

    def test_format_units(self):
        result = TimingResult(samples=(0.001, 0.001))
        assert "ms" in result.format("ms")
        assert result.format("ms").startswith("1.00")
        assert result.format("us").startswith("1000.00")
        assert result.format("s").startswith("0.00")


class TestMeasure:
    def test_runs_counted(self):
        calls = []
        result = measure(lambda: calls.append(1), runs=4)
        assert len(calls) == 4
        assert result.runs == 4

    def test_setup_untimed(self):
        def slow_setup():
            time.sleep(0.02)
            return "arg"

        seen = []

        def fast_fn(arg):
            seen.append(arg)

        result = measure(fast_fn, runs=2, setup=slow_setup)
        assert seen == ["arg", "arg"]
        assert result.mean < 0.02  # setup time excluded

    def test_measures_elapsed(self):
        result = measure(lambda: time.sleep(0.005), runs=2)
        assert result.mean >= 0.004
