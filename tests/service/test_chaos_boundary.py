"""Chaos at the network boundary: injected faults vs the HTTP contract.

The contract under test (ISSUE satellite):

* A transient fault at the request boundary (``service.request`` ERROR)
  surfaces as **503 + Retry-After** — and because it fires before any
  store write, a client retry simply succeeds; nothing is half-applied.
* A transient store fault (``store.append_many`` ERROR) is absorbed by
  the collector's bounded retry and never reaches the client at all.
* A torn batch (crash mid-``append_many``) is a **500**; the engine is
  compensated, ``POST /v1/admin/recover`` rolls the torn prefix back,
  and afterwards the workload replays cleanly with **no false-positive
  tamper alert** on ``/healthz``.
* LATENCY faults slow requests down but never fail them.

Faults are scheduled by explicit invocation indices (not rates) and the
workload is driven sequentially, so every test is deterministic — the
same request always lands on the same fault-site index.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.service import ServiceClient, ServiceHTTPError


def plan_of(*rules: FaultRule) -> FaultPlan:
    return FaultPlan(seed=3, rules=tuple(rules))


def raw_client(server, tenant: str = "acme") -> ServiceClient:
    """A client with NO retry budget — sees faults as the wire does."""
    admin = ServiceClient(server.base_url, token=server.service.admin_token)
    token = admin.issue_key(tenant)["token"]
    return ServiceClient(server.base_url, token=token, retries=0)


class TestTransientBoundaryFaults:
    def test_503_with_retry_after_and_no_partial_write(self, server_factory):
        # Data-plane request #1 (0-based) fails; #0 and #2+ are clean.
        plan = plan_of(FaultRule(
            site="service.request", kind=FaultKind.ERROR,
            indices=frozenset({1}),
        ))
        server = server_factory(faults=plan)
        client = raw_client(server)

        client.insert("a", 1)                                   # index 0
        response = client.request(                              # index 1
            "POST", "/v1/record",
            {"op": "insert", "object_id": "b", "value": 2},
            raise_for_status=False,
        )
        assert response.status == 503
        assert float(response.headers["Retry-After"]) > 0
        # The fault fired before any store write: the failed insert left
        # nothing behind, so replaying it is a clean first insert.
        out = client.insert("b", 2)                             # index 2
        assert out["records"][0]["seq_id"] == 0
        assert client.verify("a")["ok"] and client.verify("b")["ok"]
        chain = server.service.world("acme").store.records_for("b")
        assert len(chain) == 1

    def test_retrying_client_never_sees_the_fault(self, server_factory):
        plan = plan_of(FaultRule(
            site="service.request", kind=FaultKind.ERROR,
            indices=frozenset({0}),
        ))
        server = server_factory(faults=plan)
        admin = ServiceClient(server.base_url, token=server.service.admin_token)
        client = ServiceClient(
            server.base_url, token=admin.issue_key("acme")["token"], retries=3
        )
        response = client.request(
            "POST", "/v1/record",
            {"op": "insert", "object_id": "doc", "value": 1},
        )
        assert response.ok
        assert response.retries == 1
        assert client.verify("doc")["ok"]

    def test_latency_fault_slows_but_never_fails(self, server_factory):
        plan = plan_of(FaultRule(
            site="service.request", kind=FaultKind.LATENCY,
            rate=1.0, latency=0.001,
        ))
        server = server_factory(faults=plan)
        client = raw_client(server)
        client.insert("doc", 1)
        client.update("doc", 2)
        assert client.verify("doc")["ok"]
        assert client.healthz().status == 200
        # Every data-plane request drew the latency fault.
        latency_events = [
            e for e in plan.events if e.kind is FaultKind.LATENCY
        ]
        assert len(latency_events) >= 3


class TestTransientStoreFaults:
    def test_collector_retry_absorbs_store_error(self, server_factory):
        """A transient append_many failure is the COLLECTOR's problem,
        not the client's: the bounded retry hides it and no 503 leaks."""
        plan = plan_of(FaultRule(
            site="store.append_many", kind=FaultKind.ERROR,
            indices=frozenset({0}),
        ))
        server = server_factory(faults=plan)
        client = raw_client(server)
        out = client.insert("doc", 1)       # flush #0 errors, retry lands it
        assert out["records"][0]["seq_id"] == 0
        assert client.verify("doc")["ok"]
        # Non-vacuous: the fault really fired.
        assert any(
            e.site == "store.append_many" and e.kind is FaultKind.ERROR
            for e in plan.events
        )


class TestTornBatchRecovery:
    def test_torn_batch_500_recover_replay_no_false_tamper(self, server_factory):
        plan = plan_of(FaultRule(
            site="store.append_many", kind=FaultKind.TORN,
            indices=frozenset({0}), torn_keep=1,
        ))
        server = server_factory(faults=plan)
        client = raw_client(server)
        admin = ServiceClient(server.base_url, token=server.service.admin_token)

        batch = [
            {"op": "insert", "object_id": oid, "value": i}
            for i, oid in enumerate(("x", "y", "z"))
        ]
        # The batch tears after 1 of 3 records: a crash, not a retryable
        # blip — the client sees 500 and the engine is compensated.
        with pytest.raises(ServiceHTTPError) as excinfo:
            client.batch(batch)
        assert excinfo.value.status == 500

        # The torn prefix is visible in the raw store until recovery...
        world = server.service.world("acme")
        assert len(world.store) == 1
        # ...and recovery rolls it back to the last acknowledged state.
        report = admin.recover()["tenants"]["acme"]
        # One torn journal slice per shard the batch touched (ids are the
        # sharded store's encoded batch ids — values don't matter here).
        assert report["torn_batches"]
        assert report["truncated"] == [["x", 0]]
        assert len(world.store) == 0

        # The workload replays cleanly (append_many #1 is unfaulted)...
        out = client.batch(batch)
        assert {r["object_id"] for r in out["records"]} == {"x", "y", "z"}
        for oid in ("x", "y", "z"):
            assert client.verify(oid)["ok"]
        # ...and the monitor never accuses the honest writer: the crash
        # plus repair left no tamper evidence behind.
        health = client.healthz()
        assert health.status == 200
        assert health.json["tenants"]["acme"]["health"] == "ok"

    def test_unrecovered_torn_batch_is_why_recovery_exists(self, server_factory):
        """Sanity for the test above: withOUT recovery the torn prefix
        makes the honest store look wrong (the false accusation recovery
        prevents)."""
        plan = plan_of(FaultRule(
            site="store.append_many", kind=FaultKind.TORN,
            indices=frozenset({0}), torn_keep=1,
        ))
        server = server_factory(faults=plan)
        client = raw_client(server)
        with pytest.raises(ServiceHTTPError):
            client.batch([
                {"op": "insert", "object_id": oid, "value": 0}
                for oid in ("x", "y", "z")
            ])
        world = server.service.world("acme")
        # Torn journal entry still open; store state unacknowledged.
        assert any(not entry.committed for entry in world.store.journal())
