"""Concurrency stress: interleaved multi-tenant ingest + verify.

The ISSUE's bar: at least 32 worker threads across at least 8 tenants,
interleaved ingest and verification, and afterwards every tenant's
chains verify clean, sequence numbers are monotone per object, and no
record ever crossed a tenant boundary.  Chains are local per object
(§3.2) and each simulated client owns its object, so full concurrency
must not cost a single verification failure — the assertion is zero,
not "few".

Kept pytest-sized: 64 logical clients over 32 threads (the acceptance
1000-client run lives in ``benchmarks/bench_service.py``); wall-clock is
bounded by small test keys and a time budget assertion.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import AUDIT_OBJECT, ServiceClient
from repro.service.load import LoadSpec, run_load

THREADS = 32
TENANTS = 8
CLIENTS = 64

SPEC = LoadSpec(
    clients=CLIENTS, tenants=TENANTS, threads=THREADS,
    ops_per_client=3, verify_every=4, seed=11,
)


def issue_tokens(server):
    admin = ServiceClient(server.base_url, token=server.service.admin_token)
    return {
        f"t{i}": admin.issue_key(f"t{i}")["token"] for i in range(TENANTS)
    }


class TestInterleavedLoad:
    def test_zero_failures_under_concurrency(self, server):
        tokens = issue_tokens(server)
        began = time.monotonic()
        report, outcomes = run_load(server.base_url, tokens, SPEC)
        elapsed = time.monotonic() - began

        assert report.errors == []
        assert report.verify_failures == []
        assert all(o.verified_ok for o in outcomes)
        assert report.requests >= CLIENTS * (SPEC.ops_per_client + 1)
        # All 8 tenants actually took traffic.
        assert len(report.per_tenant_ops) == TENANTS
        # Pytest-safe bound: generous, but catches a serialization
        # collapse (e.g. a global lock) or a retry storm.
        assert elapsed < 120, f"load run took {elapsed:.1f}s"

        self._assert_chain_invariants(server)
        self._assert_isolation(server)

    def _assert_chain_invariants(self, server):
        """Post-hoc ground truth straight from each tenant's world."""
        service = server.service
        for tenant in service.tenant_ids():
            world = service.world(tenant)
            for oid in world.store.object_ids():
                chain = world.store.records_for(oid)
                seqs = [r.seq_id for r in chain]
                assert seqs == sorted(set(seqs)), (
                    f"{tenant}/{oid}: non-monotone seqs {seqs}"
                )
                report = service.verify(tenant, oid) if (
                    oid in world.db.store
                ) else None
                if report is not None:
                    assert report["ok"], f"{tenant}/{oid}: {report['failures']}"

    def _assert_isolation(self, server):
        """No record ever crossed a tenant boundary."""
        service = server.service
        for tenant in service.tenant_ids():
            world = service.world(tenant)
            owners = set()
            for record in world.store.all_records():
                assert record.participant_id == f"svc:{tenant}", (
                    f"{tenant} store holds a record signed by "
                    f"{record.participant_id}"
                )
                owners.add(record.object_id)
            # Every data object in this store belongs to a client of this
            # tenant (client c -> tenant c % TENANTS, object "c<c>:doc").
            tenant_index = int(tenant[1:])
            for oid in owners - {AUDIT_OBJECT}:
                client = int(oid[1:].split(":", 1)[0])
                assert client % TENANTS == tenant_index, (
                    f"object {oid} leaked into tenant {tenant}"
                )

    def test_audit_chain_stays_consistent_under_concurrent_verifies(
        self, server, tenant_client
    ):
        """Many concurrent verifies of one tenant race to extend the
        audit chain; the chain must come out strictly monotone and clean."""
        c = tenant_client("acme")
        c.insert("doc", 0)
        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(lambda _: c.verify("doc"), range(32)))
        assert all(r["ok"] for r in results)
        world = server.service.world("acme")
        audit = world.store.records_for(AUDIT_OBJECT)
        seqs = [r.seq_id for r in audit]
        assert seqs == list(range(32))
        assert c.verify(AUDIT_OBJECT)["ok"]

    def test_concurrent_tenant_creation_is_deterministic(self, server_factory):
        """Hammering a fresh server from many threads must create each
        tenant world exactly once, with its seeded identity."""
        a = server_factory()
        b = server_factory()

        def first_chains(server):
            admin = ServiceClient(
                server.base_url, token=server.service.admin_token
            )
            tokens = {
                f"t{i}": admin.issue_key(f"t{i}")["token"] for i in range(8)
            }

            def create(i):
                client = ServiceClient(server.base_url, token=tokens[f"t{i}"])
                return client.insert(f"t{i}:doc", i)["records"][0]["checksum"]

            with ThreadPoolExecutor(max_workers=8) as pool:
                return list(pool.map(create, range(8)))

        # Different arrival orders across the two servers; identical
        # per-tenant worlds regardless.
        assert first_chains(a) == first_chains(b)
