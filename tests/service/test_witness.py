"""Per-tenant witness anchoring in the service layer.

With ``ServiceConfig(witness=True)`` every tenant world gets its own
notary; /healthz monitors check the anchor log, so a full insider
rewrite of one tenant's store — invisible to plain chain checks —
flips that tenant (and only that tenant) to ``witness-mismatch``
tampering.  With a ``store_root`` the anchor log persists and a
restarted service still holds the pre-crash anchors against the store.
"""

import os

import pytest

from repro.service.core import ProvenanceService, ServiceConfig
from repro.trust.coalition import rewrite_store_suffix

from tests.service.conftest import TEST_KEY_BITS


def _config(**kwargs):
    return ServiceConfig(seed=5, key_bits=TEST_KEY_BITS, witness=True, **kwargs)


def _rewrite_tenant_tail(service, tenant):
    world = service.world(tenant)
    tail = world.store.latest("x")
    rewrite_store_suffix(world.store, "x", tail.seq_id, [world.participant], 999_999)


def test_witnessed_healthz_flags_insider_rewrite():
    service = ProvenanceService(_config())
    try:
        for tenant in ("acme", "globex"):
            service.record(tenant, "insert", "x", 1)
            service.record(tenant, "update", "x", 2)
        payload, tampered = service.healthz()
        assert not tampered and payload["health"] == "ok"

        _rewrite_tenant_tail(service, "acme")
        payload, tampered = service.healthz()
        assert tampered
        assert "witness-mismatch" in payload["tenants"]["acme"]["alerts"]
        # Tenant isolation: globex's world is untouched and stays clean.
        assert payload["tenants"]["globex"]["health"] == "ok"
    finally:
        service.close()


def test_unwitnessed_service_cannot_see_the_rewrite():
    service = ProvenanceService(
        ServiceConfig(seed=5, key_bits=TEST_KEY_BITS, witness=False)
    )
    try:
        service.record("acme", "insert", "x", 1)
        service.record("acme", "update", "x", 2)
        service.healthz()  # plain baseline tick
        _rewrite_tenant_tail(service, "acme")
        payload, tampered = service.healthz()
        assert not tampered, payload
    finally:
        service.close()


def test_anchor_log_persists_across_restart(tmp_path):
    root = str(tmp_path / "svc")
    service = ProvenanceService(_config(store_root=root))
    try:
        service.record("acme", "insert", "x", 1)
        service.record("acme", "update", "x", 2)
        payload, tampered = service.healthz()
        assert not tampered
        anchor_path = os.path.join(root, "acme", "witness-anchors.jsonl")
        assert os.path.exists(anchor_path)
    finally:
        service.close()

    reborn = ProvenanceService(_config(store_root=root))
    try:
        # The rewrite happens against the REBORN process's store; only
        # the persisted anchors from the first life can contradict it.
        _rewrite_tenant_tail(reborn, "acme")
        payload, tampered = reborn.healthz()
        assert tampered
        assert "witness-mismatch" in payload["tenants"]["acme"]["alerts"]
    finally:
        reborn.close()
