"""ProvenanceService core: operations, audit chain, tenant determinism."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError, UnknownObjectError
from repro.service import AUDIT_OBJECT, ProvenanceService, canonical_json
from repro.service.core import ServiceConfig

from tests.service.conftest import make_config


@pytest.fixture
def service():
    svc = ProvenanceService(make_config())
    yield svc
    svc.close()


class TestOperations:
    def test_record_insert_update(self, service):
        out = service.record("acme", "insert", "doc", value="v0")
        assert out["records"][0]["seq_id"] == 0
        out = service.record("acme", "update", "doc", value="v1")
        assert out["records"][0]["seq_id"] == 1
        assert out["records"][0]["operation"] == "update"

    def test_batch_is_one_complex_operation(self, service):
        service.record("acme", "insert", "c", value=0)
        out = service.batch("acme", [
            {"op": "insert", "object_id": "a", "value": 1},
            {"op": "insert", "object_id": "b", "value": 2},
            {"op": "update", "object_id": "c", "value": 3},
        ])
        # One record per surviving touched object (§4.4), not one per
        # primitive; the pre-existing object's record is a COMPLEX one.
        own = {r["object_id"]: r for r in out["records"] if not r["inherited"]}
        assert sorted(own) == ["a", "b", "c"]
        assert own["c"]["operation"] == "complex"
        assert own["c"]["seq_id"] == 1

    def test_batch_rejects_aggregate_and_empty(self, service):
        with pytest.raises(ServiceError):
            service.batch("acme", [])
        with pytest.raises(ServiceError):
            service.batch("acme", [
                {"op": "aggregate", "object_id": "x", "inputs": ["a"]},
            ])

    def test_batch_rejects_non_dict_ops(self, service):
        for bad in (["nope"], [42], [None], "nope", {"op": "insert"}, 7):
            with pytest.raises(ServiceError):
                service.batch("acme", bad)

    def test_aggregate_builds_lineage(self, service):
        service.record("acme", "insert", "a", value=1)
        service.record("acme", "insert", "b", value=2)
        service.record("acme", "aggregate", "c", inputs=["a", "b"])
        lineage = service.lineage("acme", "c")
        assert lineage["aggregations"] == 1
        assert not lineage["linear"]
        assert sorted(lineage["sources"]) == ["a", "b"]

    def test_verify_reports_clean(self, service):
        service.record("acme", "insert", "doc", value="v0")
        report = service.verify("acme", "doc")
        assert report["ok"] is True
        assert report["failures"] == []
        assert report["records_checked"] >= 1

    def test_verify_unknown_object_404s(self, service):
        with pytest.raises(UnknownObjectError):
            service.verify("acme", "ghost")
        with pytest.raises(UnknownObjectError):
            service.provenance("acme", "ghost")
        with pytest.raises(UnknownObjectError):
            service.lineage("acme", "ghost")

    def test_unknown_op_rejected(self, service):
        with pytest.raises(ServiceError):
            service.record("acme", "upsert", "doc", value=1)

    def test_invalid_tenant_ids_rejected(self, service):
        for bad in ("", "*"):
            with pytest.raises(ServiceError):
                service.world(bad)


class TestAuditChain:
    def test_every_verify_appends_a_verify_record(self, service):
        service.record("acme", "insert", "doc", value="v0")
        assert AUDIT_OBJECT not in service.objects("acme")["objects"]
        service.verify("acme", "doc")
        service.verify("acme", "doc")
        chain = service.provenance("acme", AUDIT_OBJECT)["records"]
        assert [r["seq_id"] for r in chain] == [0, 1]

    def test_audit_records_are_signed_and_verifiable(self, service):
        service.record("acme", "insert", "doc", value="v0")
        service.verify("acme", "doc")
        audit_report = service.verify("acme", AUDIT_OBJECT)
        assert audit_report["ok"] is True

    def test_audit_notes_name_the_target(self, service):
        service.record("acme", "insert", "doc", value="v0")
        service.verify("acme", "doc")
        world = service.world("acme")
        record = world.store.latest(AUDIT_OBJECT)
        assert record.note == "VERIFY"
        assert '"verify":"doc"' in world.db.store.get(AUDIT_OBJECT).value

    def test_verify_response_is_not_perturbed_by_the_audit_append(self, service):
        # The VERIFY record lands on the audit chain, not the data chain:
        # verifying twice yields byte-identical reports.
        service.record("acme", "insert", "doc", value="v0")
        first = canonical_json(service.verify("acme", "doc"))
        second = canonical_json(service.verify("acme", "doc"))
        assert first == second


class TestDeterminism:
    def test_same_seed_same_world_bytes(self):
        outputs = []
        for _ in range(2):
            svc = ProvenanceService(make_config())
            try:
                svc.record("acme", "insert", "doc", value="v0")
                svc.record("acme", "update", "doc", value="v1")
                outputs.append((
                    canonical_json(svc.provenance("acme", "doc")),
                    canonical_json(svc.verify("acme", "doc")),
                ))
            finally:
                svc.close()
        assert outputs[0] == outputs[1]

    def test_tenant_worlds_independent_of_creation_order(self):
        """Tenant b's chains don't depend on whether a was created first."""
        chains = []
        for order in (("a", "b"), ("b", "a")):
            svc = ProvenanceService(make_config())
            try:
                for tenant in order:
                    svc.record(tenant, "insert", "doc", value=f"{tenant}-v0")
                chains.append(canonical_json(svc.provenance("b", "doc")))
            finally:
                svc.close()
        assert chains[0] == chains[1]

    def test_tenants_have_distinct_keys(self, service):
        service.record("a", "insert", "doc", value=1)
        service.record("b", "insert", "doc", value=1)
        ca_a = service.world("a").db.ca
        ca_b = service.world("b").db.ca
        assert ca_a.public_key.n != ca_b.public_key.n

    def test_merkle_batch_scheme_works(self):
        svc = ProvenanceService(make_config(signature_scheme="merkle-batch"))
        try:
            svc.record("acme", "insert", "doc", value="v0")
            svc.record("acme", "update", "doc", value="v1")
            assert svc.verify("acme", "doc")["ok"] is True
        finally:
            svc.close()

    def test_bad_scheme_rejected_eagerly(self):
        with pytest.raises(Exception):
            ProvenanceService(make_config(signature_scheme="dsa"))


class TestHealth:
    def test_healthz_clean(self, service):
        service.record("acme", "insert", "doc", value="v0")
        payload, tampered = service.healthz()
        assert not tampered
        assert payload["health"] == "ok"
        assert payload["tenants"]["acme"]["health"] == "ok"

    def test_healthz_detects_tamper_like_monitor_once(self, service):
        """/healthz and `repro monitor --once` agree: both are a full
        monitor tick whose tamper alerts drive the exit status."""
        import dataclasses

        from repro.monitor import ProvenanceMonitor

        service.record("acme", "insert", "doc", value="v0")
        service.record("acme", "update", "doc", value="v1")
        assert not service.healthz()[1]

        # Tamper with raw store access: forge the tail checksum in place.
        world = service.world("acme")
        victim = world.store.latest("doc")
        shard = world.store._shard_for("doc")
        shard._chains["doc"][-1] = dataclasses.replace(
            victim, checksum=b"\x00" * len(victim.checksum)
        )

        payload, tampered = service.healthz()
        assert tampered
        assert payload["health"] == "tampered"
        assert payload["tenants"]["acme"]["failure_tally"]

        # The same verdict `repro monitor --once` semantics would give:
        # a fresh monitor over the same store, one full tick.
        monitor = ProvenanceMonitor(world.store, world.keystore)
        monitor.tick(full=True)
        assert monitor.has_tamper_alerts

    def test_one_bad_tenant_taints_the_aggregate_only(self, service):
        import dataclasses

        service.record("good", "insert", "doc", value=1)
        service.record("bad", "insert", "doc", value=1)
        world = service.world("bad")
        victim = world.store.latest("doc")
        world.store._shard_for("doc")._chains["doc"][-1] = dataclasses.replace(
            victim, checksum=b"\x00" * len(victim.checksum)
        )
        payload, tampered = service.healthz()
        assert tampered
        assert payload["tenants"]["good"]["health"] == "ok"
        assert payload["tenants"]["bad"]["health"] == "tampered"

    def test_sqlite_backed_worlds(self, tmp_path):
        svc = ProvenanceService(make_config(store_root=str(tmp_path)))
        try:
            svc.record("acme", "insert", "doc", value="v0")
            assert svc.verify("acme", "doc")["ok"] is True
            assert (tmp_path / "acme").is_dir()
        finally:
            svc.close()


class TestServiceConfig:
    def test_frozen_and_comparable(self):
        assert ServiceConfig(seed=1) == ServiceConfig(seed=1)
        assert ServiceConfig(seed=1) != ServiceConfig(seed=2)

    def test_scheme_aliases_resolve(self):
        assert ServiceConfig(signature_scheme="rsa").resolved_scheme() == (
            "rsa-pkcs1v15"
        )
