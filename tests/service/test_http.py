"""HTTP endpoint smoke tests: routing, status mapping, observability."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.service import ServiceClient


class TestRouting:
    def test_full_crud_cycle(self, tenant_client):
        c = tenant_client("acme")
        c.insert("a", 1)
        c.insert("b", 2, parent=None)
        c.update("a", 3)
        c.aggregate(["a", "b"], "agg")
        assert sorted(c.objects()["objects"]) == ["a", "agg", "b"]
        assert c.verify("agg")["ok"] is True
        assert c.lineage("agg")["aggregations"] == 1
        chain = c.provenance("a")["records"]
        assert [r["seq_id"] for r in chain] == [0, 1]
        c.delete("b")

    def test_batch_endpoint(self, tenant_client):
        c = tenant_client("acme")
        out = c.batch([
            {"op": "insert", "object_id": "x", "value": 1},
            {"op": "insert", "object_id": "y", "value": 2},
        ], note="load")
        assert out["ops"] == 2
        assert {r["object_id"] for r in out["records"]} == {"x", "y"}

    def test_malformed_batch_ops_is_400_not_a_dropped_connection(
        self, tenant_client
    ):
        """Regression: non-dict ops used to raise AttributeError past the
        handled set, killing the connection with no HTTP response."""
        c = tenant_client("acme")
        for ops in (["nope"], [42], [None], "nope", {"op": "insert"}, 7):
            response = c.request(
                "POST", "/v1/batch", {"ops": ops}, raise_for_status=False
            )
            assert response.status == 400
            assert "error" in response.json

    def test_unknown_object_is_404(self, tenant_client):
        c = tenant_client("acme")
        for call in (
            lambda: c.verify("ghost"),
            lambda: c.provenance("ghost"),
            lambda: c.lineage("ghost"),
        ):
            response = None
            try:
                call()
            except Exception as exc:  # noqa: BLE001
                response = exc
            assert getattr(response, "status", None) == 404

    def test_unknown_route_is_400(self, tenant_client):
        c = tenant_client("acme")
        response = c.request("GET", "/v1/nope", raise_for_status=False)
        assert response.status == 400

    def test_malformed_json_body_is_400(self, server, tenant_client):
        c = tenant_client("acme")
        import urllib.request

        request = urllib.request.Request(
            server.base_url + "/v1/record",
            data=b"{not json",
            headers={
                "Authorization": f"Bearer {c.token}",
                "Content-Type": "application/json",
            },
            method="POST",
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_body_is_400(self, tenant_client):
        c = tenant_client("acme")
        response = c.request("POST", "/v1/record", raise_for_status=False)
        assert response.status == 400

    def test_conflicting_op_is_a_client_error(self, tenant_client):
        c = tenant_client("acme")
        c.insert("doc", 1)
        response = c.request(
            "POST", "/v1/record",
            {"op": "insert", "object_id": "doc", "value": 2},
            raise_for_status=False,
        )
        assert response.status == 400

    def test_responses_are_canonical_json(self, tenant_client):
        c = tenant_client("acme")
        c.insert("doc", 1)
        raw = c.verify_response("doc").raw
        parsed = json.loads(raw)
        recoded = json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        ).encode()
        assert raw == recoded


class TestHealthz:
    def test_clean_service_is_200(self, tenant_client, server, admin):
        tenant_client("acme").insert("doc", 1)
        anon = ServiceClient(server.base_url)
        response = anon.healthz()
        assert response.status == 200
        # Unauthenticated: the aggregate verdict and nothing else — the
        # tenant list is itself sensitive in this threat model.
        assert response.json == {"health": "ok"}
        detail = admin.healthz()
        assert detail.json["tenants"]["acme"]["health"] == "ok"

    def test_tenant_key_sees_only_its_own_breakdown(self, tenant_client, admin):
        tenant_client("acme").insert("doc", 1)
        tenant_client("other").insert("doc", 1)
        payload = tenant_client("acme").healthz().json
        assert set(payload["tenants"]) == {"acme"}
        assert set(admin.healthz().json["tenants"]) == {"acme", "other"}

    def test_quick_mode_ticks_incrementally(self, tenant_client, server):
        c = tenant_client("acme")
        c.insert("doc", 1)
        anon = ServiceClient(server.base_url)
        assert anon.healthz().status == 200       # quick pass (cold first)
        assert anon.healthz(quick=True).status == 200

    def test_tampered_tenant_turns_healthz_503(self, tenant_client, server):
        import dataclasses

        c = tenant_client("acme")
        c.insert("doc", 1)
        world = server.service.world("acme")
        victim = world.store.latest("doc")
        world.store._shard_for("doc")._chains["doc"][-1] = dataclasses.replace(
            victim, checksum=b"\x00" * len(victim.checksum)
        )
        response = ServiceClient(server.base_url).healthz()
        assert response.status == 503
        assert response.json == {"health": "tampered"}
        # The authenticated owner sees the diagnosis.
        assert c.healthz().json["tenants"]["acme"]["health"] == "tampered"


class TestObservability:
    def test_correlation_id_flows_request_to_store_batch(self, server_factory):
        """One id threads HTTP request -> collector flush -> store batch."""
        from repro.obs.events import RingBufferSink

        obs.enable(reset=True)
        log = obs.enable_events(ring=0)
        ring = RingBufferSink(4096)
        log.add_sink(ring)
        try:
            server = server_factory()
            admin = ServiceClient(server.base_url, token=server.service.admin_token)
            token = admin.issue_key("acme")["token"]
            client = ServiceClient(server.base_url, token=token)
            response = client.request(
                "POST", "/v1/record",
                {"op": "insert", "object_id": "doc", "value": 1},
            )
            corr = response.headers.get("X-Correlation-Id")
            assert corr
            kinds = {
                e.kind for e in ring.events() if e.corr == corr
            }
            assert "http.request" in kinds
            assert "collector.flush" in kinds
            assert "store.batch" in kinds
        finally:
            obs.disable_events()
            obs.disable()

    def test_per_endpoint_metrics(self, server_factory):
        obs.enable(reset=True)
        try:
            server = server_factory()
            admin = ServiceClient(server.base_url, token=server.service.admin_token)
            token = admin.issue_key("acme")["token"]
            client = ServiceClient(server.base_url, token=token)
            client.insert("doc", 1)
            client.verify("doc")
            snap = obs.snapshot()
            counters = snap["counters"]
            assert counters[
                "service.http.requests{endpoint=POST record,status=200}"
            ] == 1
            assert counters[
                "service.http.requests{endpoint=POST verify,status=200}"
            ] == 1
            assert any(
                name.startswith("service.http.seconds")
                for name in snap["histograms"]
            )
        finally:
            obs.disable()
