"""Service-suite fixtures: a running HTTP server with small keys.

Everything is seeded; two servers (or a server and a direct
:class:`ProvenanceService`) built by these helpers from the same seed
produce byte-identical responses, which the equivalence suite exploits.
"""

from __future__ import annotations

import pytest

from repro.service import ProvenanceHTTPServer, ServiceClient, ServiceConfig

#: Small keys keep the suite fast; RSA math is identical at any size.
TEST_KEY_BITS = 512

#: One seed for the whole suite so fixtures and reference worlds agree.
SERVICE_SEED = 11


def make_config(**overrides) -> ServiceConfig:
    params = dict(seed=SERVICE_SEED, key_bits=TEST_KEY_BITS)
    params.update(overrides)
    return ServiceConfig(**params)


@pytest.fixture
def server_factory():
    """Build background servers that are always torn down."""
    servers = []

    def build(**overrides) -> ProvenanceHTTPServer:
        server = ProvenanceHTTPServer(config=make_config(**overrides))
        server.start_background()
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop()


@pytest.fixture
def server(server_factory):
    return server_factory()


@pytest.fixture
def admin(server) -> ServiceClient:
    return ServiceClient(server.base_url, token=server.service.admin_token)


@pytest.fixture
def tenant_client(server, admin):
    """tenant id -> an authenticated client for that tenant."""
    cache = {}

    def client_for(tenant: str) -> ServiceClient:
        if tenant not in cache:
            token = admin.issue_key(tenant)["token"]
            cache[tenant] = ServiceClient(server.base_url, token=token)
        return cache[tenant]

    return client_for
