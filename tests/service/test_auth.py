"""Auth negative tests: every way a key can be wrong, and tenant isolation.

The contract under test (ISSUE satellite): missing, expired, and forged
keys are rejected with 401; revoked keys and scope violations with 403;
and an API key for tenant A can never read or write tenant B — not by
filtering, but because the tenant is only ever taken from the key's own
claims.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.pki import CertificateAuthority
from repro.exceptions import AuthError, ForbiddenError
from repro.service import ServiceClient, ServiceHTTPError
from repro.service.auth import ApiKeyAuthority, TOKEN_PREFIX, _b64d, _b64e

from tests.service.conftest import TEST_KEY_BITS


def make_authority(clock=None, seed=99):
    ca = CertificateAuthority(
        name="test-auth-ca", key_bits=TEST_KEY_BITS, rng=random.Random(seed)
    )
    if clock is None:
        return ApiKeyAuthority(ca)
    return ApiKeyAuthority(ca, clock=clock)


class TestAuthorityUnit:
    def test_roundtrip(self):
        authority = make_authority()
        token = authority.issue("acme", scopes=("read",))
        claims = authority.validate(token)
        assert claims.tenant == "acme"
        assert claims.scopes == ("read",)
        assert claims.key_id == "k1"
        assert not claims.is_admin

    def test_missing_and_malformed(self):
        authority = make_authority()
        for bad in (None, "", "garbage", "rpk1.onlytwo", "a.b.c.d",
                    "nope." + "x" * 10 + ".sig"):
            with pytest.raises(AuthError):
                authority.validate(bad)

    def test_forged_signature(self):
        authority = make_authority()
        token = authority.issue("acme")
        head, payload, _sig = token.split(".")
        with pytest.raises(AuthError, match="signature"):
            authority.validate(f"{head}.{payload}.{_b64e(b'not-a-signature')}")

    def test_tampered_payload_breaks_signature(self):
        authority = make_authority()
        token = authority.issue("acme")
        head, payload, sig = token.split(".")
        swapped = _b64d(payload).replace(b'"acme"', b'"evil"')
        with pytest.raises(AuthError, match="signature"):
            authority.validate(f"{head}.{_b64e(swapped)}.{sig}")

    def test_foreign_ca_token_rejected(self):
        ours, theirs = make_authority(seed=1), make_authority(seed=2)
        with pytest.raises(AuthError):
            ours.validate(theirs.issue("acme"))

    def test_expiry_uses_injected_clock(self):
        now = [1000.0]
        authority = make_authority(clock=lambda: now[0])
        token = authority.issue("acme", ttl=60)
        assert authority.validate(token).tenant == "acme"
        now[0] = 1060.0  # exactly the deadline: expired (>= is closed)
        with pytest.raises(AuthError, match="expired"):
            authority.validate(token)

    def test_non_positive_ttl_is_born_expired(self):
        authority = make_authority()
        with pytest.raises(AuthError, match="expired"):
            authority.validate(authority.issue("acme", ttl=0))

    def test_revocation_fails_closed(self):
        authority = make_authority()
        token = authority.issue("acme")
        key_id = authority.validate(token).key_id
        assert authority.revoke(key_id)
        assert authority.is_revoked(key_id)
        with pytest.raises(ForbiddenError, match="revoked"):
            authority.validate(token)
        # Revoking twice (or an unknown id) is a no-op, never an un-revoke.
        assert not authority.revoke(key_id)
        assert not authority.revoke("k999")
        with pytest.raises(ForbiddenError):
            authority.validate(token)

    def test_revoking_never_issued_ids_does_not_grow_the_set(self):
        authority = make_authority()
        for i in range(100):
            assert not authority.revoke(f"garbage-{i}")
            assert not authority.is_revoked(f"garbage-{i}")
        assert not authority._revoked

    def test_admin_scope_required(self):
        authority = make_authority()
        plain = authority.issue("acme")
        with pytest.raises(ForbiddenError, match="scope"):
            authority.require_admin(plain)
        assert authority.require_admin(authority.issue_admin()).is_admin

    def test_token_cannot_be_replayed_as_certificate(self):
        # The signed bytes are domain-separated: an API token's signature
        # must not verify over any other payload framing.
        authority = make_authority()
        token = authority.issue("acme")
        _head, payload, sig = token.split(".")
        assert not authority.ca.verify_token(_b64d(payload), _b64d(sig))
        assert authority.ca.verify_token(
            TOKEN_PREFIX.encode() + b"\x1f" + _b64d(payload), _b64d(sig)
        )


class TestStatePersistence:
    """Satellite: issued/revoked state survives a service restart."""

    def rebuild(self, path, seed=99):
        # The same CA seed models the service's deterministic auth CA —
        # tokens minted before the restart must still verify after it.
        ca = CertificateAuthority(
            name="test-auth-ca", key_bits=TEST_KEY_BITS, rng=random.Random(seed)
        )
        return ApiKeyAuthority(ca, state_path=path)

    def test_revocation_survives_restart(self, tmp_path):
        path = str(tmp_path / "api-keys.json")
        first = self.rebuild(path)
        token = first.issue("acme", scopes=("read",))
        kid = first.decode_claims(token).key_id
        assert first.revoke(kid)

        reborn = self.rebuild(path)
        assert reborn.is_revoked(kid)
        with pytest.raises(ForbiddenError, match="revoked"):
            reborn.validate(token)

    def test_issued_keys_and_counter_survive_restart(self, tmp_path):
        path = str(tmp_path / "api-keys.json")
        first = self.rebuild(path)
        first.issue("acme")
        first.issue("globex", scopes=("read",))

        reborn = self.rebuild(path)
        claims = reborn.issued_keys()
        assert [c.tenant for c in claims] == ["acme", "globex"]
        # The id counter resumes — a post-restart key never reuses an id.
        fresh = reborn.decode_claims(reborn.issue("initech"))
        assert fresh.key_id == "k3"

    def test_unrevoked_key_still_validates_after_restart(self, tmp_path):
        path = str(tmp_path / "api-keys.json")
        token = self.rebuild(path).issue("acme")
        assert self.rebuild(path).validate(token).tenant == "acme"

    def test_service_restart_roundtrip(self, tmp_path):
        """End to end through ProvenanceService with a store_root: the
        pre-crash revocation holds in the reborn process."""
        from repro.service.core import ProvenanceService, ServiceConfig

        root = str(tmp_path / "svc")
        config = ServiceConfig(seed=7, key_bits=TEST_KEY_BITS, store_root=root)
        service = ProvenanceService(config)
        token = service.authority.issue("acme")
        kid = service.authority.decode_claims(token).key_id
        assert service.authority.revoke(kid)
        service.close()

        reborn = ProvenanceService(
            ServiceConfig(seed=7, key_bits=TEST_KEY_BITS, store_root=root)
        )
        try:
            with pytest.raises(ForbiddenError, match="revoked"):
                reborn.authority.validate(token)
        finally:
            reborn.close()

    def test_corrupt_state_fails_closed(self, tmp_path):
        path = str(tmp_path / "api-keys.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(AuthError, match="corrupt"):
            self.rebuild(path)


class TestHTTPAuth:
    def status_of(self, client: ServiceClient, call):
        with pytest.raises(ServiceHTTPError) as excinfo:
            call(client)
        return excinfo.value.status

    def test_missing_key_is_401(self, server):
        anon = ServiceClient(server.base_url)
        assert self.status_of(anon, lambda c: c.objects()) == 401

    def test_forged_key_is_401(self, server):
        forged = ServiceClient(
            server.base_url,
            token=f"{TOKEN_PREFIX}.{_b64e(b'{}')}.{_b64e(b'sig')}",
        )
        assert self.status_of(forged, lambda c: c.objects()) == 401

    def test_expired_key_is_401(self, server, admin):
        expired = admin.issue_key("acme", ttl=-1)["token"]
        client = ServiceClient(server.base_url, token=expired)
        assert self.status_of(client, lambda c: c.insert("doc", 1)) == 401

    def test_revoked_key_is_403(self, server, admin, tenant_client):
        issued = admin.issue_key("acme")
        client = ServiceClient(server.base_url, token=issued["token"])
        client.insert("doc", 1)
        admin.revoke_key(issued["key_id"])
        assert self.status_of(client, lambda c: c.update("doc", 2)) == 403
        # The world itself is untouched — a fresh key still sees the data.
        fresh = tenant_client("acme")
        assert "doc" in fresh.objects()["objects"]

    def test_admin_routes_need_admin_scope(self, server, tenant_client):
        plain = tenant_client("acme")
        assert self.status_of(plain, lambda c: c.issue_key("x")) == 403
        assert self.status_of(plain, lambda c: c.revoke_key("k1")) == 403
        assert self.status_of(plain, lambda c: c.recover()) == 403

    def test_admin_key_cannot_touch_the_data_plane(self, admin):
        assert self.status_of(admin, lambda c: c.objects()) == 403
        assert self.status_of(admin, lambda c: c.insert("doc", 1)) == 403

    def test_tenant_cannot_read_or_write_another_tenant(self, tenant_client):
        a, b = tenant_client("tenant-a"), tenant_client("tenant-b")
        a.insert("secret", "a-only")
        # B sees an empty world, not A's objects...
        assert b.objects()["objects"] == []
        # ...cannot read A's provenance or lineage (404: *its* world has
        # no such object — existence is not even revealed)...
        assert self.status_of(b, lambda c: c.provenance("secret")) == 404
        assert self.status_of(b, lambda c: c.verify("secret")) == 404
        # ...and writing the same id lands in B's world, leaving A's
        # chain untouched.
        b.insert("secret", "b-version")
        chain_a = a.provenance("secret")["records"]
        chain_b = b.provenance("secret")["records"]
        assert [r["seq_id"] for r in chain_a] == [0]
        assert chain_a[0]["checksum"] != chain_b[0]["checksum"]
        assert chain_a[0]["participant"] == "svc:tenant-a"
        assert chain_b[0]["participant"] == "svc:tenant-b"

    def test_www_authenticate_header_on_401(self, server):
        anon = ServiceClient(server.base_url)
        response = anon.request("GET", "/v1/objects", raise_for_status=False)
        assert response.status == 401
        assert response.headers.get("WWW-Authenticate") == "Bearer"

    def test_healthz_needs_no_key_but_withholds_the_tenant_list(
        self, server, tenant_client
    ):
        tenant_client("acme").insert("doc", 1)
        anon = ServiceClient(server.base_url)
        response = anon.healthz()
        assert response.status == 200
        assert "tenants" not in response.json

    def test_healthz_rejects_an_invalid_key_outright(self, server, admin):
        # Sending a bad token is an auth failure, not anonymous access.
        expired = admin.issue_key("acme", ttl=-1)["token"]
        for bad in ("garbage", expired):
            client = ServiceClient(server.base_url, token=bad)
            assert client.healthz().status == 401
