"""BackgroundMonitor: edge-detected publication, dedupe, resilience."""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro import obs
from repro.obs.plane import AlertSink
from repro.service import ProvenanceService, ServiceConfig
from repro.service.background import HEALTH_RANK, BackgroundMonitor

from tests.service.conftest import make_config


class RecordingSink(AlertSink):
    def __init__(self, fail: bool = False):
        self.payloads = []
        self.fail = fail
        self.closed = False

    def publish(self, payload):
        if self.fail:
            raise OSError("sink down")
        self.payloads.append(payload)

    def close(self):
        self.closed = True


@pytest.fixture
def service():
    svc = ProvenanceService(make_config())
    yield svc
    svc.close()


def _tamper_tail(service, tenant: str, object_id: str) -> None:
    world = service.world(tenant)
    with world.lock:
        record = world.store.records_for(object_id)[-1]
        forged = dataclasses.replace(record, checksum=b"\x00" * 16)
        shard = world.store._shard_for(object_id)
        shard._chains[object_id][-1] = forged


class TestSweep:
    def test_healthy_first_sweep_publishes_nothing(self, service):
        service.record("t1", "insert", "A", value=1)
        sink = RecordingSink()
        monitor = BackgroundMonitor(service, sinks=(sink,))
        summary = monitor.run_once()
        assert summary["tenants"] == 1
        assert summary["transitions"] == 0
        assert summary["alerts"] == 0
        # Steady-state "ok" is not an operator-worthy edge.
        assert sink.payloads == []

    def test_tamper_publishes_transition_and_alert_once(self, service):
        service.record("t1", "insert", "A", value=1)
        sink = RecordingSink()
        monitor = BackgroundMonitor(service, sinks=(sink,))
        monitor.run_once()  # baseline: healthy, watermarks set
        _tamper_tail(service, "t1", "A")
        summary = monitor.run_once()
        assert summary["transitions"] == 1
        assert summary["alerts"] >= 1
        types = [p["type"] for p in sink.payloads]
        assert "health" in types and "alert" in types
        health = next(p for p in sink.payloads if p["type"] == "health")
        assert health["tenant"] == "t1"
        assert health["previous"] == "ok"
        assert health["health"] == "tampered"
        alert = next(p for p in sink.payloads if p["type"] == "alert")
        assert alert["tenant"] == "t1"
        assert alert["tampering"] is True

        # The alert keeps firing every tick, but the published stream is
        # edge-triggered: further sweeps add nothing.
        before = len(sink.payloads)
        monitor.run_once()
        monitor.run_once()
        assert len(sink.payloads) == before

    def test_multiple_tenants_swept_independently(self, service):
        service.record("t1", "insert", "A", value=1)
        service.record("t2", "insert", "B", value=2)
        sink = RecordingSink()
        monitor = BackgroundMonitor(service, sinks=(sink,))
        monitor.run_once()
        _tamper_tail(service, "t2", "B")
        monitor.run_once()
        tenants = {p["tenant"] for p in sink.payloads}
        assert tenants == {"t2"}  # t1 stays quiet

    def test_tenants_created_after_start_are_picked_up(self, service):
        monitor = BackgroundMonitor(service)
        assert monitor.run_once()["tenants"] == 0
        service.record("late", "insert", "A", value=1)
        assert monitor.run_once()["tenants"] == 1

    def test_gauges_track_health_and_rank(self, service):
        obs.enable(reset=True)
        try:
            service.record("t1", "insert", "A", value=1)
            monitor = BackgroundMonitor(service)
            monitor.run_once()
            snapshot = obs.OBS.registry.snapshot()
            assert snapshot["gauges"]["service.tenant.health{tenant=t1}"] == (
                HEALTH_RANK["ok"]
            )
            _tamper_tail(service, "t1", "A")
            monitor.run_once()
            snapshot = obs.OBS.registry.snapshot()
            assert snapshot["gauges"]["service.tenant.health{tenant=t1}"] == (
                HEALTH_RANK["tampered"]
            )
            assert any(
                k.startswith("service.monitor.ticks{")
                for k in snapshot["counters"]
            )
        finally:
            obs.disable(reset=True)

    def test_alert_events_land_in_ring_for_v1_alerts(self, service):
        log = obs.enable_events()
        try:
            service.record("t1", "insert", "A", value=1)
            monitor = BackgroundMonitor(service)
            monitor.run_once()
            _tamper_tail(service, "t1", "A")
            monitor.run_once()
            kinds = [e.kind for e in log.ring.events()]
            assert "service.health" in kinds
            assert "service.alert" in kinds
            alert = log.ring.of_kind("service.alert")[-1]
            assert alert.fields["tenant"] == "t1"
            assert alert.fields["tampering"] is True
        finally:
            obs.disable_events()


class TestResilience:
    def test_failing_sink_counted_not_fatal(self, service):
        service.record("t1", "insert", "A", value=1)
        bad, good = RecordingSink(fail=True), RecordingSink()
        monitor = BackgroundMonitor(service, sinks=(bad, good))
        monitor.run_once()
        _tamper_tail(service, "t1", "A")
        monitor.run_once()
        assert monitor.errors >= 1
        assert good.payloads  # delivery to healthy sinks continued

    def test_broken_tenant_does_not_stop_the_sweep(self, service, monkeypatch):
        service.record("t1", "insert", "A", value=1)
        service.record("t2", "insert", "B", value=2)
        broken = service.world("t1")
        monkeypatch.setattr(
            broken, "witness_tick",
            lambda: (_ for _ in ()).throw(RuntimeError("store on fire")),
        )
        monitor = BackgroundMonitor(service)
        summary = monitor.run_once()
        assert monitor.errors == 1
        assert summary["tenants"] == 2  # t2 was still swept

    def test_stop_closes_sinks(self, service):
        sink = RecordingSink()
        monitor = BackgroundMonitor(service, sinks=(sink,))
        monitor.start()
        monitor.stop()
        assert sink.closed is True
        assert monitor._thread is None


class TestServiceIntegration:
    def test_monitor_interval_config_starts_and_stops_daemon(self):
        sink = RecordingSink()
        service = ProvenanceService(
            make_config(monitor_interval=0.05, alert_sinks=(sink,))
        )
        try:
            assert service.background is not None
            service.record("t1", "insert", "A", value=1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if service.background.sweeps >= 2:
                    break
                time.sleep(0.02)
            assert service.background.sweeps >= 2
        finally:
            service.close()
        assert sink.closed is True

    def test_zero_interval_means_no_daemon(self, service):
        assert service.config.monitor_interval == 0.0
        assert service.background is None

    def test_daemon_detects_live_tamper(self):
        service = ProvenanceService(make_config(monitor_interval=0.05))
        sink = RecordingSink()
        service.background.sinks.append(sink)
        try:
            service.record("t1", "insert", "A", value=1)
            # Let a healthy baseline sweep land first.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and service.background.sweeps < 1:
                time.sleep(0.02)
            _tamper_tail(service, "t1", "A")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if any(p["type"] == "alert" for p in sink.payloads):
                    break
                time.sleep(0.02)
        finally:
            service.close()
        alerts = [p for p in sink.payloads if p["type"] == "alert"]
        assert alerts and alerts[0]["tenant"] == "t1"
        assert alerts[0]["tampering"] is True
