"""The service observability plane, proven against a live server.

The server in these tests runs in-process (background threads), so it
shares the test's :data:`repro.obs.OBS` switchboard: the client half and
the server half of a distributed trace land on the *same* tracer, which
is exactly what lets the end-to-end identity tests prove — not just
eyeball — that both sides form one tree and share one correlation id.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.obs.plane import stitch_traces
from repro.service.client import ServiceClient, ServiceHTTPError

HOSTILE_TENANT = 'evil"quote\\back\nnewline'


@pytest.fixture
def obs_full():
    """Tracing + metrics + ring events on; everything off afterwards."""
    obs.enable(reset=True)
    log = obs.enable_events()
    yield log
    obs.disable_events()
    obs.disable(reset=True)


@pytest.fixture
def obs_metrics_only():
    obs.enable(reset=True)
    obs.OBS.tracing = False
    yield obs.OBS
    obs.disable(reset=True)


class TestEndToEndTrace:
    def test_client_and_server_spans_form_one_tree(self, obs_full, tenant_client):
        client = tenant_client("t1")
        obs.OBS.tracer.reset()  # drop the key-issuance request's trace
        with obs_full.correlation("op-e2e"):
            client.insert("A", 1)
        roots = stitch_traces(list(obs.OBS.tracer.traces))
        # One tree: the client's span is the only root, the server's
        # http.request hangs beneath it, and the flush/batch spans the
        # request caused hang beneath *that*.
        insert_roots = [r for r in roots if r.name == "client.request"]
        assert len(insert_roots) == 1
        names = [s.name for s in insert_roots[0].iter_spans()]
        assert names[:2] == ["client.request", "http.request"]
        assert "collector.flush" in names
        assert "store.batch" in names
        # Trace identity: every span of the tree carries the client's id.
        trace_ids = {s.trace_id for s in insert_roots[0].iter_spans()}
        assert trace_ids == {insert_roots[0].trace_id}

    def test_one_correlation_id_spans_the_wire(self, obs_full, tenant_client):
        client = tenant_client("t1")
        with obs_full.correlation("op-corr-1"):
            client.insert("A", 1)
        ring = obs_full.ring.events()
        kinds = {"http.request", "collector.flush", "store.batch"}
        seen = {e.kind: e.corr for e in ring if e.kind in kinds}
        assert set(seen) == kinds
        # The server adopted the client's id for its whole request scope.
        assert set(seen.values()) == {"op-corr-1"}

    def test_server_echoes_adopted_correlation_id(self, obs_full, tenant_client):
        client = tenant_client("t1")
        with obs_full.correlation("op-echo"):
            response = client.request("POST", "/v1/record",
                                      {"op": "insert", "object_id": "A"})
        assert response.headers.get("X-Correlation-Id") == "op-echo"

    def test_hostile_correlation_id_replaced_not_adopted(
        self, obs_full, tenant_client
    ):
        client = tenant_client("t1")
        hostile = 'evil "corr'  # sendable over HTTP, but not adoptable
        with obs_full.correlation(hostile):
            response = client.request("POST", "/v1/record",
                                      {"op": "insert", "object_id": "A"})
        echoed = response.headers.get("X-Correlation-Id")
        # The server minted its own id instead of adopting the hostile
        # one, and no server-side event carries the hostile value.
        assert echoed != hostile
        assert all(
            e.corr != hostile
            for e in obs_full.ring.events()
            if e.kind in ("http.request", "collector.flush", "store.batch")
        )

    def test_correlation_grouping_matches_in_process_shape(
        self, obs_full, tenant_client
    ):
        # The correlation *structure* — which event kinds share one id —
        # must be identical whether the pipeline runs in-process or
        # behind HTTP: one id joining collector.flush and store.batch
        # per logical operation.
        from repro.core.system import TamperEvidentDatabase

        def grouping(events):
            by_corr = {}
            for e in events:
                if e.kind in ("collector.flush", "store.batch"):
                    by_corr.setdefault(e.corr, []).append(e.kind)
            return sorted(tuple(v) for v in by_corr.values())

        db = TamperEvidentDatabase(seed=11, key_bits=512)
        session = db.session(db.enroll("p"))
        session.insert("A", 1)
        in_process = grouping(obs_full.ring.events())
        obs_full.ring.clear()

        tenant_client("t1").insert("A", 1)
        over_http = grouping(obs_full.ring.events())
        assert in_process == over_http == [("collector.flush", "store.batch")]

    def test_error_response_carries_correlation_id(self, obs_full, tenant_client):
        client = tenant_client("t1")
        with pytest.raises(ServiceHTTPError) as exc_info:
            client.verify("no-such-object")
        err = exc_info.value
        assert err.status == 404
        assert err.correlation_id is not None
        assert err.correlation_id in str(err)
        # The id joins the failure to the server-side request event.
        matching = [
            e for e in obs_full.ring.events()
            if e.kind == "http.request" and e.corr == err.correlation_id
        ]
        assert len(matching) == 1
        assert matching[0].fields["status"] == 404


class TestMetricsEndpoint:
    def test_prometheus_content_type_and_shape(self, obs_metrics_only, admin):
        admin.issue_key("t-keep")  # at least one counted request
        response = admin.request("GET", "/v1/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        text = response.raw.decode("utf-8")
        assert "# TYPE repro_service_http_requests_total counter" in text
        assert 'repro_service_http_requests_total{' in text

    def test_json_format_returns_snapshot(self, obs_metrics_only, admin):
        payload = admin.metrics_json()
        assert payload["enabled"] is True
        assert set(payload["metrics"]) == {"counters", "gauges", "histograms"}

    def test_tenant_labels_present_per_tenant(
        self, obs_metrics_only, admin, tenant_client
    ):
        tenant_client("alpha").insert("A", 1)
        tenant_client("beta").insert("B", 2)
        text = admin.metrics_text()
        assert 'repro_service_tenant_requests_total{tenant="alpha"} 1' in text
        assert 'repro_service_tenant_requests_total{tenant="beta"} 1' in text

    def test_hostile_tenant_id_is_escaped_in_labels(
        self, obs_metrics_only, admin, tenant_client
    ):
        tenant_client(HOSTILE_TENANT).insert("A", 1)
        text = admin.metrics_text()
        lines = [
            l for l in text.splitlines()
            if l.startswith("repro_service_tenant_requests_total{")
        ]
        assert len(lines) == 1  # the raw newline did NOT split the line
        line = lines[0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        # And the exposition as a whole stays line-structured: every
        # non-comment line is "name{labels} value".
        for sample in text.splitlines():
            if sample and not sample.startswith("#"):
                assert " " in sample

    def test_counters_are_monotonic_across_scrapes(
        self, obs_metrics_only, admin, tenant_client
    ):
        client = tenant_client("t1")
        client.insert("A", 1)

        def tenant_requests():
            counters = admin.metrics_json()["metrics"]["counters"]
            return counters['service.tenant.requests{tenant=t1}']

        first = tenant_requests()
        client.update("A", 2)
        client.update("A", 3)
        assert tenant_requests() == first + 2

    def test_disabled_obs_reports_disabled(self, admin):
        obs.disable(reset=True)
        payload = admin.metrics_json()
        assert payload["enabled"] is False
        assert payload["metrics"]["counters"] == {}

    def test_requires_admin(self, obs_metrics_only, server, admin, tenant_client):
        tenant = tenant_client("t1")
        with pytest.raises(ServiceHTTPError) as exc_info:
            tenant.metrics_text()
        assert exc_info.value.status == 403
        anonymous = ServiceClient(server.base_url)
        with pytest.raises(ServiceHTTPError) as exc_info:
            anonymous.metrics_text()
        assert exc_info.value.status == 401

    def test_post_not_routed(self, obs_metrics_only, admin):
        with pytest.raises(ServiceHTTPError) as exc_info:
            admin.request("POST", "/v1/metrics", {})
        assert exc_info.value.status == 400


class TestProfileEndpoint:
    def test_detached_by_default(self, obs_metrics_only, admin):
        assert admin.profile() == {"attached": False}

    def test_attached_profiler_reports_cost_model(
        self, obs_metrics_only, admin, tenant_client
    ):
        obs.enable_profile(reset=True)
        try:
            tenant_client("t1").insert("A", 1)
            payload = admin.profile()
        finally:
            obs.disable_profile()
        assert payload["attached"] is True
        cost = payload["cost"]
        assert cost["records"] >= 1
        assert "phases" in cost

    def test_requires_admin(self, obs_metrics_only, tenant_client):
        with pytest.raises(ServiceHTTPError) as exc_info:
            tenant_client("t1").profile()
        assert exc_info.value.status == 403


class TestAlertStream:
    def test_detached_without_ring(self, obs_metrics_only, admin):
        payload = admin.alerts()
        assert payload == {"events": [], "cursor": -1, "attached": False}

    def test_cursor_pages_only_alert_kinds(self, obs_full, admin):
        obs_full.emit("http.request", status=200)       # not an alert kind
        alert = obs_full.emit("alert", rule="tamper", tampering=True)
        obs_full.emit("service.health", tenant="t1", health="tampered")
        page = admin.alerts(since=-1)
        assert page["attached"] is True
        kinds = [e["kind"] for e in page["events"]]
        assert kinds == ["alert", "service.health"]
        assert page["events"][0]["seq"] == alert.seq
        # The cursor covers *everything* seen, matching or not …
        assert page["cursor"] >= alert.seq + 1
        # … so the next page is empty rather than rescanning.
        follow_up = admin.alerts(since=page["cursor"])
        assert follow_up["events"] == []

    def test_since_filters_already_seen(self, obs_full, admin):
        first = obs_full.emit("alert", rule="a")
        second = obs_full.emit("alert", rule="b")
        page = admin.alerts(since=first.seq)
        assert [e["seq"] for e in page["events"]] == [second.seq]

    def test_long_poll_returns_on_fresh_alert(self, obs_full, admin):
        def late_alert():
            time.sleep(0.2)
            obs_full.emit("alert", rule="late", tampering=True)

        thread = threading.Thread(target=late_alert)
        began = time.perf_counter()
        thread.start()
        try:
            page = admin.alerts(since=-1, wait=10.0)
        finally:
            thread.join()
        elapsed = time.perf_counter() - began
        assert [e["fields"]["rule"] for e in page["events"]] == ["late"]
        assert elapsed < 5.0  # woke on the event, not the deadline

    def test_long_poll_times_out_empty(self, obs_full, admin):
        page = admin.alerts(since=-1, wait=0.1)
        assert page["events"] == []

    def test_bad_query_values_are_400(self, obs_full, admin):
        for path in ("/v1/alerts?since=abc", "/v1/alerts?wait=xyz"):
            with pytest.raises(ServiceHTTPError) as exc_info:
                admin.request("GET", path)
            assert exc_info.value.status == 400

    def test_requires_admin(self, obs_full, tenant_client):
        with pytest.raises(ServiceHTTPError) as exc_info:
            tenant_client("t1").alerts()
        assert exc_info.value.status == 403


class TestTamperVisibility:
    """The acceptance path: a tampered tenant is visible at /v1/metrics
    and /v1/alerts of the live server."""

    @staticmethod
    def _forge_tail_checksum(server, tenant: str, object_id: str) -> None:
        """In-place checksum forgery on the tail record (the R1 recipe)."""
        import dataclasses

        world = server.service.world(tenant)
        with world.lock:
            record = world.store.records_for(object_id)[-1]
            forged = dataclasses.replace(record, checksum=b"\x00" * 16)
            shard = world.store._shard_for(object_id)
            shard._chains[object_id][-1] = forged

    def test_tampered_tenant_shows_r1_in_metrics_and_alert_stream(
        self, obs_full, admin, tenant_client, server
    ):
        client = tenant_client("t1")
        client.insert("A", 1)
        self._forge_tail_checksum(server, "t1", "A")
        report = client.verify("A")
        assert report["ok"] is False
        assert report["failure_tally"].get("R1", 0) >= 1
        # 1. /v1/metrics names the violated requirement, per tenant.
        text = admin.metrics_text()
        assert (
            'repro_service_verify_failures_total{requirement="R1",tenant="t1"}'
            in text
        )
        # 2. /healthz flags the tenant; the monitor's alert event lands
        #    in the ring, which is what /v1/alerts streams.
        health = admin.healthz()
        assert health.status == 503
        page = admin.alerts(since=-1)
        tamper_alerts = [
            e for e in page["events"]
            if e["kind"] == "alert" and e["fields"].get("tampering")
        ]
        assert tamper_alerts
        assert tamper_alerts[-1]["fields"]["rule"] == "tamper"
