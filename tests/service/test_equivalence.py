"""HTTP/in-process equivalence: the network front end adds NOTHING.

The property (ISSUE satellite): a seeded workload driven through the
HTTP API produces verification reports **byte-identical** to the same
workload driven against a same-seed in-process service — for both
signature schemes.  The HTTP layer serializes with the same
:func:`canonical_json` the comparison uses, so equality is literal
``bytes ==``, not structural.

This is the strongest correctness statement the service can make: every
checksum, every signature, every report is a pure function of the
(config, per-tenant operation order) pair, and transport is not part of
that function.
"""

from __future__ import annotations

import random

import pytest

from repro.service import (
    ProvenanceService,
    ServiceClient,
    canonical_json,
)

from tests.service.conftest import make_config

TENANTS = ("t0", "t1", "t2")
SCHEMES = ("rsa-per-record", "merkle-batch")


def seeded_workload(tenant: str, seed: int = 5):
    """The per-tenant operation list (pure function of tenant + seed)."""
    rng = random.Random(f"{seed}|workload|{tenant}")
    ops = []
    objects = [f"{tenant}-obj{i}" for i in range(3)]
    for oid in objects:
        ops.append({"op": "insert", "object_id": oid,
                    "value": f"v0:{rng.randrange(1 << 20)}"})
    for _ in range(4):
        oid = objects[rng.randrange(len(objects))]
        ops.append({"op": "update", "object_id": oid,
                    "value": f"v:{rng.randrange(1 << 20)}"})
    ops.append({"op": "aggregate", "object_id": f"{tenant}-agg",
                "inputs": objects[:2]})
    ops.append({"op": "batch", "ops": [
        {"op": "insert", "object_id": f"{tenant}-batch-a",
         "value": rng.randrange(1 << 20)},
        {"op": "insert", "object_id": f"{tenant}-batch-b",
         "value": rng.randrange(1 << 20)},
    ]})
    return ops


def drive_http(server_factory, scheme):
    """Run the workload over HTTP; returns every response's bytes."""
    server = server_factory(signature_scheme=scheme)
    admin = ServiceClient(server.base_url, token=server.service.admin_token)
    transcript = []
    for tenant in TENANTS:
        client = ServiceClient(
            server.base_url, token=admin.issue_key(tenant)["token"]
        )
        for op in seeded_workload(tenant):
            if op["op"] == "batch":
                transcript.append(
                    client.request("POST", "/v1/batch", {"ops": op["ops"]}).raw
                )
            else:
                transcript.append(
                    client.request("POST", "/v1/record", op).raw
                )
        for oid in sorted(client.objects()["objects"]):
            transcript.append(client.verify_response(oid).raw)
    return transcript


def drive_inprocess(scheme):
    """Same workload against a same-config service, no HTTP anywhere."""
    service = ProvenanceService(make_config(signature_scheme=scheme))
    transcript = []
    try:
        for tenant in TENANTS:
            for op in seeded_workload(tenant):
                if op["op"] == "batch":
                    result = service.batch(tenant, op["ops"])
                elif op["op"] == "aggregate":
                    result = service.record(
                        tenant, "aggregate", op["object_id"],
                        inputs=op["inputs"],
                    )
                else:
                    result = service.record(
                        tenant, op["op"], op["object_id"], value=op["value"]
                    )
                transcript.append(canonical_json(result))
            for oid in sorted(service.objects(tenant)["objects"]):
                transcript.append(canonical_json(service.verify(tenant, oid)))
    finally:
        service.close()
    return transcript


@pytest.mark.parametrize("scheme", SCHEMES)
def test_http_equals_inprocess_byte_for_byte(server_factory, scheme):
    http = drive_http(server_factory, scheme)
    ref = drive_inprocess(scheme)
    assert len(http) == len(ref)
    for i, (a, b) in enumerate(zip(http, ref)):
        assert a == b, f"response {i} diverged:\nHTTP: {a!r}\nref:  {b!r}"


@pytest.mark.parametrize("scheme", SCHEMES)
def test_two_http_servers_agree(server_factory, scheme):
    """Same seed, two independent server processes' worth of state."""
    assert drive_http(server_factory, scheme) == drive_http(
        server_factory, scheme
    )


def test_schemes_differ():
    """Sanity: the two schemes do NOT produce identical transcripts —
    otherwise the parametrization above would be vacuous."""
    assert drive_inprocess(SCHEMES[0]) != drive_inprocess(SCHEMES[1])


def test_report_counts_include_the_audit_trail():
    """Verified reports cover exactly the records the reference world
    holds — spot-check the equivalence isn't comparing empty reports."""
    service = ProvenanceService(make_config())
    try:
        service.record("t0", "insert", "doc", value=1)
        service.record("t0", "update", "doc", value=2)
        report = service.verify("t0", "doc")
        assert report["records_checked"] == 2
        again = service.verify("t0", "doc")
        assert again["records_checked"] == 2
    finally:
        service.close()
