"""Exception hierarchy for the tamper-evident provenance library.

Every exception raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subsystem bases
(:class:`CryptoError`, :class:`ModelError`, ...) mirror the package layout.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# crypto
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """Raised when key-pair generation fails (bad parameters, no primes)."""


class SignatureError(CryptoError):
    """Raised when a message cannot be signed (e.g. message too large)."""


class InvalidSignature(CryptoError):
    """Raised (or reported) when signature verification fails."""


class UnknownHashAlgorithm(CryptoError):
    """Raised when a hash algorithm name is not registered."""


class CertificateError(CryptoError):
    """Raised for invalid, unknown, or untrusted certificates."""


# ---------------------------------------------------------------------------
# data model
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for data-model violations."""


class UnknownObjectError(ModelError, KeyError):
    """Raised when an object id does not exist in the forest."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message
        return ModelError.__str__(self)


class DuplicateObjectError(ModelError):
    """Raised when inserting an object id that already exists."""


class NotALeafError(ModelError):
    """Raised when a leaf-only primitive is applied to an interior node."""


class InvalidValueError(ModelError, TypeError):
    """Raised when a value cannot be canonically encoded."""


class TreeStructureError(ModelError):
    """Raised when an operation would corrupt the forest structure."""


# ---------------------------------------------------------------------------
# backend
# ---------------------------------------------------------------------------


class BackendError(ReproError):
    """Base class for back-end storage failures."""


class TransactionError(BackendError):
    """Raised on invalid complex-operation (transaction) usage."""


class TransientStoreError(BackendError):
    """A store failure that is expected to succeed on retry.

    Raised (or injected) for momentary conditions — a locked database
    file, a transient disk-I/O hiccup — that bounded retry-with-backoff
    in the collector is allowed to absorb.  ``sqlite3.OperationalError``
    is treated the same way.
    """


# ---------------------------------------------------------------------------
# provenance
# ---------------------------------------------------------------------------


class ProvenanceError(ReproError):
    """Base class for provenance-subsystem failures."""


class MissingProvenanceError(ProvenanceError):
    """Raised when an object has no provenance records but some are required."""


class BrokenChainError(ProvenanceError):
    """Raised when a provenance chain is structurally inconsistent."""


class SequenceError(ProvenanceError):
    """Raised when seqID assignment rules are violated."""


# ---------------------------------------------------------------------------
# verification / shipment
# ---------------------------------------------------------------------------


class VerificationError(ReproError):
    """Raised when verification cannot even be attempted (malformed input).

    Note that a *failed* verification is not an exception: the verifier
    returns a report describing which security requirement was violated.
    """


class ShipmentError(ReproError):
    """Raised when a shipment cannot be encoded or decoded."""


# ---------------------------------------------------------------------------
# service (network front end)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for provenance-service (HTTP front end) failures."""


class AuthError(ServiceError):
    """An API key is missing, malformed, forged, or expired (HTTP 401)."""


class ForbiddenError(ServiceError):
    """An API key is valid but not allowed here: revoked, or lacking the
    required scope (HTTP 403).  Revocation fails closed."""


# ---------------------------------------------------------------------------
# workloads / benchmarks
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """Raised for invalid synthetic-workload parameters."""


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------


class CrashError(BaseException):
    """Simulated process death, injected by :mod:`repro.faults`.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    ordinary ``except Exception``/``except ReproError`` handlers cannot
    absorb it: a crash is supposed to tear through the whole call stack
    exactly as a killed process would, and only the chaos harness (or a
    test) at the very top catches it.  Compensation handlers that really
    must run on the way out (the collector's staging abort, the session's
    engine undo) already catch ``BaseException``.
    """


class WorkerKilledError(ReproError):
    """A verification worker process died mid-chunk.

    Picklable marker raised *inside* a pool worker when a fault plan
    schedules a soft kill; the parent degrades the chunk to serial
    re-verification instead of failing the whole run.
    """
