"""In-memory forest of atomic objects.

:class:`Forest` is the reference implementation of the store protocol the
database engine manipulates (see :mod:`repro.backend.interface`).  It keeps
each node's children sorted by the global total order at all times, so
snapshots and hashes are deterministic without re-sorting.

Structural invariants maintained:
- every non-root node's parent exists and lists it as a child;
- ids are unique;
- insertion/deletion of *interior* nodes is rejected (the paper's
  primitives operate on leaves; complex operations compose primitives).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import (
    DuplicateObjectError,
    NotALeafError,
    TreeStructureError,
    UnknownObjectError,
)
from repro.model.objects import AtomicObject
from repro.model.ordering import ordering_key
from repro.model.values import Value

__all__ = ["Forest"]


@dataclass
class _Node:
    value: Value
    parent: Optional[str]
    children: List[str] = field(default_factory=list)  # sorted by ordering_key


class Forest:
    """A mutable forest of atomic objects with leaf-level primitives."""

    def __init__(self) -> None:
        self._nodes: Dict[str, _Node] = {}
        self._roots: List[str] = []  # sorted by ordering_key

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def insert(self, object_id: str, value: Value = None, parent: Optional[str] = None) -> None:
        """Insert a new leaf object (§4.1 ``Insert(A, val, <parent>)``).

        Raises:
            DuplicateObjectError: If ``object_id`` already exists.
            UnknownObjectError: If ``parent`` does not exist.
        """
        if object_id in self._nodes:
            raise DuplicateObjectError(f"object {object_id!r} already exists")
        if parent is not None and parent not in self._nodes:
            raise UnknownObjectError(f"parent {parent!r} does not exist")
        self._nodes[object_id] = _Node(value=value, parent=parent)
        if parent is None:
            insort(self._roots, object_id, key=ordering_key)
        else:
            insort(self._nodes[parent].children, object_id, key=ordering_key)

    def update(self, object_id: str, value: Value) -> Value:
        """Update an object's value; returns the old value.

        Raises:
            UnknownObjectError: If the object does not exist.
        """
        node = self._require(object_id)
        old = node.value
        node.value = value
        return old

    def delete(self, object_id: str) -> Value:
        """Delete a leaf object; returns its last value (§4.1 ``Delete(A)``).

        Raises:
            UnknownObjectError: If the object does not exist.
            NotALeafError: If the object has children.
        """
        node = self._require(object_id)
        if node.children:
            raise NotALeafError(
                f"object {object_id!r} has {len(node.children)} children; "
                "only leaves can be deleted by the primitive operation"
            )
        if node.parent is None:
            self._roots.remove(object_id)
        else:
            self._nodes[node.parent].children.remove(object_id)
        del self._nodes[object_id]
        return node.value

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def get(self, object_id: str) -> AtomicObject:
        """Return an immutable snapshot of one node.

        Raises:
            UnknownObjectError: If the object does not exist.
        """
        node = self._require(object_id)
        return AtomicObject(
            object_id=object_id,
            value=node.value,
            children=tuple(node.children),
            parent=node.parent,
        )

    def value(self, object_id: str) -> Value:
        """Return the object's current value (``A.val``)."""
        return self._require(object_id).value

    def parent(self, object_id: str) -> Optional[str]:
        """Return the id of the object's parent, or None for roots."""
        return self._require(object_id).parent

    def children(self, object_id: str) -> Tuple[str, ...]:
        """Return the object's child ids in global order."""
        return tuple(self._require(object_id).children)

    def is_leaf(self, object_id: str) -> bool:
        """True if the object has no children."""
        return not self._require(object_id).children

    def roots(self) -> Tuple[str, ...]:
        """Return all root ids in global order."""
        return tuple(self._roots)

    def ancestors(self, object_id: str) -> List[str]:
        """Return ancestor ids from parent up to the root (excluding self).

        The list's length is the ``x`` of §5.2's inherited-checksum
        accounting: deleting a node with ``x`` ancestors produces ``x``
        inherited checksums.
        """
        self._require(object_id)
        out: List[str] = []
        current = self._nodes[object_id].parent
        while current is not None:
            out.append(current)
            current = self._nodes[current].parent
        return out

    def root_of(self, object_id: str) -> str:
        """Return the root of the tree containing ``object_id``."""
        self._require(object_id)
        current = object_id
        while self._nodes[current].parent is not None:
            current = self._nodes[current].parent
        return current

    def iter_subtree(self, root_id: str) -> Iterator[str]:
        """Yield the ids of ``subtree(root_id)`` in preorder (global order)."""
        self._require(root_id)
        stack = [root_id]
        while stack:
            current = stack.pop()
            yield current
            # reversed so the globally-first child is yielded first
            stack.extend(reversed(self._nodes[current].children))

    def subtree_nodes(self, root_id: str) -> Iterator[AtomicObject]:
        """Yield snapshots of the nodes of ``subtree(root_id)`` in preorder."""
        for object_id in self.iter_subtree(root_id):
            yield self.get(object_id)

    def subtree_size(self, root_id: str) -> int:
        """Return the number of nodes in ``subtree(root_id)``."""
        return sum(1 for _ in self.iter_subtree(root_id))

    def depth(self, object_id: str) -> int:
        """Return the node's depth (roots have depth 0)."""
        return len(self.ancestors(object_id))

    # ------------------------------------------------------------------
    # bulk helpers (compositions of primitives; used by the engine)
    # ------------------------------------------------------------------

    def delete_subtree(self, root_id: str) -> List[str]:
        """Delete a whole subtree bottom-up; returns deleted ids (postorder)."""
        order = list(self.iter_subtree(root_id))
        order.reverse()  # children before parents
        for object_id in order:
            self.delete(object_id)
        return order

    def copy_subtree_into(
        self,
        source: "Forest",
        source_root: str,
        new_root_id: str,
        new_parent: Optional[str] = None,
    ) -> List[str]:
        """Copy ``subtree(source_root)`` from ``source`` into this forest.

        The copied root gets id ``new_root_id``; descendants get
        ``new_root_id`` + their id-path suffix, preserving structure.
        Returns the new ids in insertion (preorder) order.

        Raises:
            TreeStructureError: If a generated id collides.
        """
        mapping = {source_root: new_root_id}
        created: List[str] = []
        for node in source.subtree_nodes(source_root):
            if node.object_id == source_root:
                new_id = new_root_id
                parent = new_parent
            else:
                new_id = mapping[node.parent] + "/" + _leaf_name(node.object_id)
                mapping[node.object_id] = new_id
                parent = mapping[node.parent]
            if new_id in self._nodes:
                raise TreeStructureError(
                    f"copy would overwrite existing object {new_id!r}"
                )
            self.insert(new_id, node.value, parent)
            created.append(new_id)
        return created

    # ------------------------------------------------------------------

    def _require(self, object_id: str) -> _Node:
        try:
            return self._nodes[object_id]
        except KeyError:
            raise UnknownObjectError(f"object {object_id!r} does not exist") from None

    def __repr__(self) -> str:
        return f"Forest(nodes={len(self._nodes)}, roots={len(self._roots)})"


def _leaf_name(object_id: str) -> str:
    """The last path segment of a structured id (the whole id if unsegmented)."""
    return object_id.rsplit("/", 1)[-1]
