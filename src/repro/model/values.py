"""Canonical byte encoding of object ids and values.

Every hash the scheme computes — ``h(A, val)`` for atomic checksums and the
recursive compound hash — is defined over byte strings, so the encoding
must be *injective*: distinct (id, value) pairs must never encode to the
same bytes, or an attacker could swap values without changing hashes.  The
encoding here is type-tagged and length-prefixed, which guarantees
injectivity and is stable across platforms and Python versions.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``.  That covers the paper's workloads (all-integer synthetic
tables plus a varchar column in the scale test) with room to spare.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.exceptions import InvalidValueError

__all__ = [
    "Value",
    "encode_value",
    "decode_value",
    "encode_node",
    "encode_child_link",
]

#: The value types an atomic object may hold.
Value = Union[None, bool, int, float, str, bytes]

_TAG_NONE = b"N"
_TAG_BOOL = b"T"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BYTES = b"B"


def _frame(tag: bytes, payload: bytes) -> bytes:
    """Length-prefix a tagged payload: ``tag || len(payload) || payload``."""
    return tag + struct.pack(">I", len(payload)) + payload


def encode_value(value: Value) -> bytes:
    """Canonically encode a single value.

    Encodings are injective across types: ``1``, ``1.0``, ``True`` and
    ``"1"`` all encode differently.

    Raises:
        InvalidValueError: For unsupported types (lists, dicts, objects).
    """
    if value is None:
        return _frame(_TAG_NONE, b"")
    # bool before int: bool is an int subclass but must encode distinctly.
    if isinstance(value, bool):
        return _frame(_TAG_BOOL, b"\x01" if value else b"\x00")
    if isinstance(value, int):
        length = (value.bit_length() + 8) // 8 or 1  # extra bit for sign
        return _frame(_TAG_INT, value.to_bytes(length, "big", signed=True))
    if isinstance(value, float):
        return _frame(_TAG_FLOAT, struct.pack(">d", value))
    if isinstance(value, str):
        return _frame(_TAG_STR, value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return _frame(_TAG_BYTES, bytes(value))
    raise InvalidValueError(
        f"cannot canonically encode value of type {type(value).__name__}"
    )


def decode_value(data: bytes) -> Value:
    """Decode bytes produced by :func:`encode_value`.

    Used by the SQLite store and the shipment wire format, which persist
    values in their canonical encoding.

    Raises:
        InvalidValueError: If ``data`` is not a valid encoding.
    """
    if len(data) < 5:
        raise InvalidValueError("encoded value too short")
    tag, (length,) = data[:1], struct.unpack(">I", data[1:5])
    payload = data[5 : 5 + length]
    if len(payload) != length or len(data) != 5 + length:
        raise InvalidValueError("encoded value has inconsistent length")
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return payload == b"\x01"
    if tag == _TAG_INT:
        return int.from_bytes(payload, "big", signed=True)
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", payload)[0]
    if tag == _TAG_STR:
        return payload.decode("utf-8")
    if tag == _TAG_BYTES:
        return payload
    raise InvalidValueError(f"unknown value tag {tag!r}")


def encode_object_id(object_id: str) -> bytes:
    """Canonically encode an object id.

    Raises:
        InvalidValueError: If the id is not a non-empty string.
    """
    if not isinstance(object_id, str) or not object_id:
        raise InvalidValueError(f"object id must be a non-empty string, got {object_id!r}")
    return _frame(b"O", object_id.encode("utf-8"))


def encode_node(object_id: str, value: Value) -> bytes:
    """Encode the ``(A, val)`` pair that ``h(A, val)`` hashes (§3).

    Binding the id into the hash is what stops an attacker reassigning one
    object's provenance to another object with the same value (R5).
    """
    return encode_object_id(object_id) + encode_value(value)


def encode_child_link(child_id: str, child_digest: bytes) -> bytes:
    """Encode one child's contribution to its parent's compound hash.

    The recursive compound hash (Fig 5) is
    ``h_A = h((A, a, {B, C}) | h_B | h_C)``; we realise the triple's
    child-set component as a sequence of ``(framed child id, digest)``
    units appended to :func:`encode_node`.  Because ids are
    length-prefixed and digests have a fixed per-algorithm length, the
    sequence is unambiguously parseable (injective) *and* can be consumed
    one child at a time — which is what lets the streaming hasher process
    a 19M-row table without knowing row ids up front (§5.2).
    """
    return encode_object_id(child_id) + _frame(b"H", child_digest)
