"""Relational façade over the forest model.

The paper's evaluation "view[s] the back-end database as a tree of depth 4,
with a single root node, and subsequent levels representing tables, rows,
and cells" (§5.1).  :class:`RelationalView` provides exactly that mapping:

    root ``db`` → table ``db/T`` → row ``db/T/r7`` → cell ``db/T/r7/col``

It is deliberately generic over *what executes the primitives*: pass it a
raw :class:`~repro.backend.engine.DatabaseEngine` for untracked data, or a
participant session of :class:`~repro.core.system.TamperEvidentDatabase`
so that every relational operation is collected as (checksummed)
provenance.  The executor only needs ``insert``/``update``/``delete``
methods with the engine's signatures, a ``store`` attribute for reads, and
a ``complex_operation`` context manager.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.backend.interface import ForestStore
from repro.exceptions import DuplicateObjectError, UnknownObjectError, WorkloadError
from repro.model.values import Value

__all__ = ["RelationalView", "PrimitiveExecutor"]


@runtime_checkable
class PrimitiveExecutor(Protocol):
    """What :class:`RelationalView` needs from its executor."""

    store: ForestStore

    def insert(self, object_id: str, value: Value = None, parent: Optional[str] = None): ...

    def update(self, object_id: str, value: Value): ...

    def delete(self, object_id: str): ...

    def complex_operation(self): ...


class RelationalView:
    """Tables, rows and cells mapped onto the depth-4 forest.

    Args:
        executor: Engine or participant session executing primitives.
        root_id: Id of the database root node (created on first use).
    """

    def __init__(self, executor: PrimitiveExecutor, root_id: str = "db"):
        self.executor = executor
        self.root_id = root_id
        self._row_counters: Dict[str, int] = {}
        if root_id not in executor.store:
            executor.insert(root_id, None, None)

    @property
    def store(self) -> ForestStore:
        """The underlying store (read access)."""
        return self.executor.store

    # ------------------------------------------------------------------
    # ids
    # ------------------------------------------------------------------

    def table_id(self, table: str) -> str:
        """Forest id of a table node."""
        return f"{self.root_id}/{table}"

    def row_id(self, table: str, row_key: int) -> str:
        """Forest id of a row node."""
        return f"{self.table_id(table)}/r{row_key}"

    def cell_id(self, table: str, row_key: int, column: str) -> str:
        """Forest id of a cell node."""
        return f"{self.row_id(table, row_key)}/{column}"

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, table: str, columns: Sequence[str]) -> str:
        """Create a table node; the column list is its (immutable) value.

        Raises:
            WorkloadError: On empty or duplicate column names.
            DuplicateObjectError: If the table already exists.
        """
        if not columns:
            raise WorkloadError(f"table {table!r} needs at least one column")
        if len(set(columns)) != len(columns):
            raise WorkloadError(f"table {table!r} has duplicate column names")
        tid = self.table_id(table)
        if tid in self.store:
            raise DuplicateObjectError(f"table {table!r} already exists")
        self.executor.insert(tid, ",".join(columns), self.root_id)
        self._row_counters[table] = 0
        return tid

    def columns(self, table: str) -> Tuple[str, ...]:
        """Return the table's column names.

        Raises:
            UnknownObjectError: If the table does not exist.
        """
        tid = self.table_id(table)
        if tid not in self.store:
            raise UnknownObjectError(f"table {table!r} does not exist")
        return tuple(str(self.store.value(tid)).split(","))

    def tables(self) -> Tuple[str, ...]:
        """Names of all tables under this view's root."""
        prefix = len(self.root_id) + 1
        return tuple(t[prefix:] for t in self.store.children(self.root_id))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert_row(self, table: str, values: Dict[str, Value]) -> int:
        """Insert a row (one row node + one cell node per column).

        Executed as a single complex operation so provenance-tracked
        executors record it per §4.4.  Returns the new row key.

        Raises:
            WorkloadError: If ``values`` mentions unknown columns.
        """
        cols = self.columns(table)
        unknown = set(values) - set(cols)
        if unknown:
            raise WorkloadError(f"unknown columns for {table!r}: {sorted(unknown)}")
        row_key = self._next_row_key(table)
        rid = self.row_id(table, row_key)
        with self.executor.complex_operation():
            self.executor.insert(rid, None, self.table_id(table))
            for column in cols:
                self.executor.insert(
                    self.cell_id(table, row_key, column), values.get(column), rid
                )
        return row_key

    def update_cell(self, table: str, row_key: int, column: str, value: Value) -> None:
        """Update one cell's value."""
        self.executor.update(self.cell_id(table, row_key, column), value)

    def delete_row(self, table: str, row_key: int) -> None:
        """Delete a row and all its cells (one complex operation).

        Raises:
            UnknownObjectError: If the row does not exist.
        """
        rid = self.row_id(table, row_key)
        if rid not in self.store:
            raise UnknownObjectError(f"row {row_key} of {table!r} does not exist")
        with self.executor.complex_operation():
            for cell in self.store.children(rid):
                self.executor.delete(cell)
            self.executor.delete(rid)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get_row(self, table: str, row_key: int) -> Dict[str, Value]:
        """Return ``{column: value}`` for one row.

        Raises:
            UnknownObjectError: If the row does not exist.
        """
        rid = self.row_id(table, row_key)
        if rid not in self.store:
            raise UnknownObjectError(f"row {row_key} of {table!r} does not exist")
        out: Dict[str, Value] = {}
        prefix = len(rid) + 1
        for cell in self.store.children(rid):
            out[cell[prefix:]] = self.store.value(cell)
        return out

    def get_cell(self, table: str, row_key: int, column: str) -> Value:
        """Return one cell's value."""
        return self.store.value(self.cell_id(table, row_key, column))

    def row_keys(self, table: str) -> List[int]:
        """All row keys of a table, ascending."""
        tid = self.table_id(table)
        prefix = len(tid) + 2  # skip "/r"
        return sorted(int(r[prefix:]) for r in self.store.children(tid))

    def row_count(self, table: str) -> int:
        """Number of rows currently in the table."""
        return len(self.store.children(self.table_id(table)))

    # ------------------------------------------------------------------

    def _next_row_key(self, table: str) -> int:
        if table not in self._row_counters:
            keys = self.row_keys(table)
            self._row_counters[table] = (max(keys) + 1) if keys else 0
        key = self._row_counters[table]
        self._row_counters[table] = key + 1
        return key

    def __repr__(self) -> str:
        return f"RelationalView(root={self.root_id!r}, tables={list(self.tables())})"
