"""The atomic-object triple of the extended data model (§4.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.model.values import Value

__all__ = ["AtomicObject"]


@dataclass(frozen=True)
class AtomicObject:
    """An atomic data object: ``(id, value, {child_ids})``.

    Immutable snapshot of one node of the forest; the mutable structure
    lives in :class:`repro.model.tree.Forest`.  ``children`` is kept in the
    global total order so hashing a snapshot is deterministic.

    Attributes:
        object_id: Unique identifier within the database.
        value: The atomic value (None for pure structural nodes such as
            tables and rows, which the paper's workloads use).
        children: Ids of child objects, in global order.
        parent: Id of the parent object, or None for roots.
    """

    object_id: str
    value: Value = None
    children: Tuple[str, ...] = field(default_factory=tuple)
    parent: Optional[str] = None

    @property
    def is_leaf(self) -> bool:
        """True if the object has no children."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """True if the object has no parent."""
        return self.parent is None

    def __str__(self) -> str:
        kids = "{" + ", ".join(self.children) + "}"
        return f"({self.object_id}, {self.value!r}, {kids})"
