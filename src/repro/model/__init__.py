"""Data model: atomic/compound objects arranged as a forest.

The paper models the database abstractly as a forest of trees (§4.1): each
*atomic object* is a triple ``(id, value, {child_ids})`` and a *compound
object* is the subtree rooted at any node.  The relational model maps onto
this as root → tables → rows → cells.

- :mod:`repro.model.values` — canonical, injective byte encoding of ids
  and values (so hashes are platform-independent).
- :mod:`repro.model.objects` — the :class:`AtomicObject` triple.
- :mod:`repro.model.ordering` — the globally-defined total order over
  objects that the aggregate checksum and compound hashing rely on.
- :mod:`repro.model.tree` — :class:`Forest`, the in-memory tree store.
- :mod:`repro.model.relational` — database/table/row/cell façade mapping
  the relational model onto a depth-4 forest.
"""

from repro.model.objects import AtomicObject
from repro.model.ordering import ordering_key, sort_ids
from repro.model.tree import Forest
from repro.model.values import (
    decode_value,
    encode_child_link,
    encode_node,
    encode_value,
)

__all__ = [
    "AtomicObject",
    "Forest",
    "encode_value",
    "decode_value",
    "encode_node",
    "encode_child_link",
    "ordering_key",
    "sort_ids",
]
