"""The globally-defined total order over atomic objects.

Both the aggregate checksum (§3: "assume that the input objects are sorted
according to a globally-defined order (e.g., numeric or lexical)") and the
recursive compound hash (§4.3: "we again assume that there exists a
pre-defined total order over atomic objects") require every party —
participants and data recipients alike — to order objects identically, or
recomputed hashes would not match.

We order object ids by their UTF-8 byte sequence, with embedded runs of
ASCII digits compared numerically so that ``row2 < row10`` (plain
bytewise ordering would interleave them and make generated workloads
confusing to inspect).  The order is total: ties in the numeric-aware key
are broken by the raw id.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

__all__ = ["ordering_key", "sort_ids"]

_DIGIT_RUN = re.compile(r"(\d+)")


def ordering_key(object_id: str) -> Tuple:
    """Return the sort key defining the global total order for an id.

    The key alternates text chunks and integer chunks; text chunks are
    compared as UTF-8 and integers numerically.  A trailing raw-id
    component makes the order total even for ids like ``"a01"`` vs
    ``"a1"`` whose chunked keys would otherwise tie.
    """
    parts = _DIGIT_RUN.split(object_id)
    key: List[Tuple[int, object]] = []
    for i, part in enumerate(parts):
        if i % 2:  # odd indices are digit runs
            key.append((1, int(part)))
        elif part:
            key.append((0, part))
    return (tuple(key), object_id)


def sort_ids(ids: Iterable[str]) -> List[str]:
    """Return ``ids`` sorted by the global total order."""
    return sorted(ids, key=ordering_key)
