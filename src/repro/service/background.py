"""Continuous background monitoring for the provenance service.

:class:`BackgroundMonitor` is the opt-in daemon behind
``ServiceConfig(monitor_interval=...)`` / ``repro serve
--monitor-interval``: a single thread that sweeps every tenant world on
an interval, runs the tenant's incremental
:meth:`~repro.monitor.monitor.ProvenanceMonitor.tick` (witness tick
first, exactly like the ``/healthz`` pass, so the PR 4 watermark rules
hold — every healthy state the daemon ever observed is anchored before
the next sweep could be lied to), and publishes what an operator needs
pushed rather than polled:

- **health transitions** — one ``service.health`` event + sink payload
  when a tenant's health *changes* (ok→tampered fires once, not once per
  sweep);
- **alerts** — one ``service.alert`` event + sink payload per *newly
  firing* alert, deduplicated on ``(rule, fields)`` while the alert
  keeps firing (monitor ticks re-raise a standing tamper alert every
  tick; operators want the edge, the ``/v1/alerts`` stream keeps the
  full repetition for forensics);
- **gauges** — ``service.tenant.health{tenant=}`` (0 ok / 1 degraded /
  2 tampered) and ``service.tenant.lag{tenant=}`` (watermark lag in
  records), which is where ``repro dash`` reads fleet state from.

Soundness note: the sweep uses the same per-world lock as the request
path and ``/healthz``, so a background tick never races a flush, and its
watermarks are the same sticky watermarks the on-demand monitors use —
a regression observed by *any* of them stays latched (monitor state is
per-world, not per-caller).

Sink failures never propagate: a sweep survives a tenant whose store is
mid-fault and a webhook that is down; both are counted, not raised.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import OBS

__all__ = ["BackgroundMonitor", "HEALTH_RANK"]

#: Health states as gauge values (worst = highest).
HEALTH_RANK = {"ok": 0, "degraded": 1, "tampered": 2}


class BackgroundMonitor:
    """Periodic per-tenant monitor sweeps with alert publication.

    Args:
        service: The :class:`~repro.service.core.ProvenanceService` to
            watch (worlds are enumerated fresh each sweep, so tenants
            created after start are picked up automatically).
        interval: Seconds between sweeps when running threaded.
        sinks: :class:`repro.obs.plane.AlertSink` targets.

    ``run_once()`` is the whole sweep and needs no thread — tests and
    the CLI's one-shot paths call it directly.
    """

    def __init__(
        self,
        service,
        interval: float = 1.0,
        sinks: Sequence[object] = (),
    ):
        self.service = service
        self.interval = max(0.01, float(interval))
        self.sinks: List[object] = list(sinks)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Last observed health per tenant (transition edge detection).
        self._health: Dict[str, str] = {}
        #: Alert keys currently firing per tenant (publication dedupe).
        self._firing: Dict[str, Set[Tuple[str, str]]] = {}
        self.sweeps = 0
        self.published = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "BackgroundMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        thread = threading.Thread(
            target=self._run, name="repro-bg-monitor", daemon=True
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 — the daemon must survive
                self.errors += 1

    # ------------------------------------------------------------------
    # one sweep
    # ------------------------------------------------------------------

    def run_once(self) -> Dict[str, object]:
        """Sweep every tenant once; returns a summary dict."""
        transitions = 0
        fresh_alerts = 0
        tenants = self.service.tenant_ids()
        for tenant_id in tenants:
            world = self.service._worlds.get(tenant_id)
            if world is None:  # racing a concurrent world build
                continue
            try:
                with world.lock:
                    world.witness_tick()
                    result = world.monitor().tick()
            except Exception:  # noqa: BLE001 — a faulted tenant is data,
                self.errors += 1  # not a reason to stop watching the rest
                continue
            t, a = self._publish(tenant_id, result)
            transitions += t
            fresh_alerts += a
        self.sweeps += 1
        if OBS.enabled:
            OBS.registry.counter("service.monitor.sweeps").inc()
        return {
            "tenants": len(tenants),
            "transitions": transitions,
            "alerts": fresh_alerts,
            "sweeps": self.sweeps,
        }

    def _publish(self, tenant_id: str, result) -> Tuple[int, int]:
        """Metrics, events, and sink payloads for one tenant tick."""
        if OBS.enabled:
            reg = OBS.registry
            reg.gauge("service.tenant.health", tenant=tenant_id).set(
                HEALTH_RANK.get(result.health, 2)
            )
            reg.gauge("service.tenant.lag", tenant=tenant_id).set(
                result.lag_records
            )
            reg.counter(
                "service.monitor.ticks", tenant=tenant_id, mode=result.mode
            ).inc()

        transitions = 0
        previous = self._health.get(tenant_id)
        if result.health != previous:
            self._health[tenant_id] = result.health
            # The very first observation of a healthy tenant is steady
            # state, not a transition worth waking an operator for.
            if previous is not None or result.health != "ok":
                transitions = 1
                self._emit_and_publish({
                    "type": "health",
                    "tenant": tenant_id,
                    "previous": previous,
                    "health": result.health,
                    "tick": result.tick,
                }, kind="service.health")

        firing = self._firing.setdefault(tenant_id, set())
        current: Set[Tuple[str, str]] = set()
        fresh = 0
        for alert in result.alerts:
            key = (
                alert.rule,
                json.dumps(alert.fields, sort_keys=True, default=str),
            )
            current.add(key)
            if key in firing:
                continue  # still firing since last sweep: edge already sent
            fresh += 1
            payload = {"type": "alert", "tenant": tenant_id, "tick": result.tick}
            payload.update(alert.to_dict())
            self._emit_and_publish(payload, kind="service.alert")
        self._firing[tenant_id] = current
        return transitions, fresh

    def _emit_and_publish(self, payload: Dict[str, object], kind: str) -> None:
        log = OBS.events
        if log is not None:
            log.emit(kind, **payload)
        if OBS.enabled:
            OBS.registry.counter(
                "service.monitor.published", kind=payload["type"]
            ).inc()
        for sink in self.sinks:
            try:
                sink.publish(payload)
            except Exception:  # noqa: BLE001 — sinks are best-effort
                self.errors += 1
        self.published += 1

    def __repr__(self) -> str:
        return (
            f"BackgroundMonitor(interval={self.interval}, "
            f"sweeps={self.sweeps}, published={self.published})"
        )
