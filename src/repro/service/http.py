"""The stdlib HTTP front end for :class:`ProvenanceService`.

A :class:`ProvenanceHTTPServer` is a ``ThreadingHTTPServer`` whose
handler translates HTTP to :class:`~repro.service.core.ProvenanceService`
calls and exceptions to status codes.  Responses are
:func:`~repro.service.core.canonical_json` bytes — the byte-identity
suite compares them verbatim against in-process results.

Routes (all bodies and responses are JSON):

====== ============================ =======================================
POST   /v1/record                   apply one primitive (insert/update/
                                    delete/aggregate) with provenance
POST   /v1/batch                    several mutations as one complex op
POST   /v1/verify                   verify an object; notarizes a VERIFY
                                    record on the tenant's audit chain
GET    /v1/objects                  object ids with provenance
GET    /v1/provenance/<object_id>   the object's record chain
GET    /v1/lineage/<object_id>      lineage summary (ancestry/DAG shape)
GET    /healthz                     monitor pass over every tenant;
                                    503 iff any tenant looks tampered
                                    (``?quick=1`` = incremental tick).
                                    Unauthenticated: aggregate health
                                    only, always the quick tick.  A
                                    tenant key adds that tenant's
                                    breakdown; an admin key, all
                                    tenants'.
GET    /v1/metrics                  Prometheus text exposition of the
                                    server's registry (``?format=json``
                                    = raw snapshot)          (admin)
GET    /v1/profile                  phase-profiler cost model  (admin)
GET    /v1/alerts                   alert/health event stream, cursor
                                    paged (``?since=<seq>&wait=<s>``
                                    long-polls)                (admin)
POST   /v1/admin/keys               mint an API key            (admin)
DELETE /v1/admin/keys/<key_id>      revoke an API key          (admin)
POST   /v1/admin/recover            run crash recovery         (admin)
====== ============================ =======================================

The observability endpoints are admin-only on purpose: metric label
values contain tenant ids and the alert stream narrates every tenant's
health — in the mutually-distrusting threat model that is operator data,
never tenant data.

Authentication: ``Authorization: Bearer <token>`` (or ``X-Api-Key``).
The tenant is *always* taken from the token's claims — no request names
a tenant explicitly, so a key for tenant A cannot address tenant B's
world at all.  Admin keys (tenant ``*``) work only on the admin routes;
they carry no data-plane tenant, so even the operator's key cannot read
tenant data through this surface.

Status mapping (the chaos suite pins this down):

- 401 missing/malformed/forged/expired key; 403 revoked key or missing
  admin scope
- 404 unknown object; 400 malformed request or a caller error from the
  core (:class:`ReproError`)
- 503 + ``Retry-After`` for *transient* store trouble (the same
  ``TRANSIENT_STORE_ERRORS`` set the collector retries); the request is
  safe to retry — faults fire before any store write
- 500 for a simulated crash (:class:`CrashError`): the session has
  already compensated the engine, and a torn batch is repaired by
  recovery at restart.  Any unanticipated exception is also a 500 —
  the handler always sends *some* response rather than dropping the
  connection

Every request runs inside an event-log correlation scope, so the HTTP
request, the collector flush it triggers, and the store batch commit
share one correlation id (echoed as ``X-Correlation-Id``).  A client
that sends a valid ``X-Correlation-Id`` of its own has that id *adopted*
(after :func:`repro.obs.plane.valid_correlation_id` hygiene), so client-
and server-side events join on one id; a ``traceparent`` header likewise
parents the server's ``http.request`` span — and the collector/store
spans beneath it — onto the client's open span, forming one distributed
trace tree.
"""

from __future__ import annotations

import json
import threading
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter, sleep
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.collector import TRANSIENT_STORE_ERRORS
from repro.exceptions import (
    AuthError,
    CrashError,
    ForbiddenError,
    ReproError,
    ServiceError,
    UnknownObjectError,
)
from repro.obs import OBS
from repro.service.core import ProvenanceService, ServiceConfig, canonical_json

__all__ = ["ProvenanceHTTPServer", "serve", "DEFAULT_RETRY_AFTER"]

#: ``Retry-After`` seconds sent with 503s.  Fractional (the bundled
#: client parses floats) so chaos tests stay fast; real deployments
#: would round up.
DEFAULT_RETRY_AFTER = 0.05


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the service core."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-provenance"

    # BaseHTTPRequestHandler logs to stderr by default; the service
    # narrates on the structured event log instead.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def service(self) -> ProvenanceService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        log = OBS.events
        span_cm: object = nullcontext()
        if log is not None or OBS.tracing:
            from repro.obs.plane import valid_correlation_id

            if OBS.tracing:
                from repro.obs import span_remote
                from repro.obs.plane import parse_traceparent

                # Per-request remote parent (never the tracer's process-
                # global remote context — concurrent handler threads each
                # carry their own client's context on the span handle).
                span_cm = span_remote(
                    "http.request",
                    parse_traceparent(self.headers.get("traceparent")),
                    method=method,
                    path=route,
                )
        if log is not None:
            # Adopt the client's correlation id when it sent a sane one,
            # so client- and server-side events join on one id; anything
            # unvalidated (log injection, overlong values) is replaced by
            # a freshly minted server id.
            client_corr = self.headers.get("X-Correlation-Id")
            if not valid_correlation_id(client_corr):
                client_corr = None
            scope = log.correlation(client_corr)
        else:
            scope = nullcontext()
        began = perf_counter()
        endpoint = f"{method} {route.split('/v1/', 1)[-1].split('/')[0] or route}"
        with span_cm as request_span, scope:
            corr = _current_correlation()
            try:
                status, payload, headers = self._route(method, route, query)
            except (AuthError, ForbiddenError) as exc:
                status, payload, headers = self._auth_failure(exc)
            except UnknownObjectError as exc:
                status, payload, headers = 404, {"error": _strip(exc)}, {}
            except ServiceError as exc:
                status, payload, headers = 400, {"error": str(exc)}, {}
            except TRANSIENT_STORE_ERRORS as exc:
                retry_after = self.server.retry_after  # type: ignore[attr-defined]
                status = 503
                payload = {"error": str(exc), "transient": True}
                headers = {"Retry-After": f"{retry_after:g}"}
            except CrashError as exc:
                # CrashError is a BaseException: catch it here so a
                # simulated crash fails the request, not the server.
                status, payload, headers = 500, {"error": str(exc)}, {}
            except ReproError as exc:
                status, payload, headers = 400, {"error": str(exc)}, {}
            except (ValueError, KeyError, TypeError, AttributeError) as exc:
                status, payload, headers = 400, {"error": f"bad request: {exc}"}, {}
            except Exception as exc:  # noqa: BLE001 — always answer
                # Anything unanticipated must still produce an HTTP
                # response; a silent connection drop looks like a network
                # fault to the client and hides the real error.
                status, payload, headers = 500, {"error": f"internal error: {exc}"}, {}
            if log is not None:
                log.emit(
                    "http.request",
                    method=method, path=route, status=status,
                    duration=perf_counter() - began,
                )
            if request_span is not None:
                request_span.attrs["status"] = status
        if OBS.enabled:
            OBS.registry.counter(
                "service.http.requests", endpoint=endpoint, status=str(status)
            ).inc()
            OBS.registry.histogram(
                "service.http.seconds", endpoint=endpoint
            ).observe(perf_counter() - began)
        if corr:
            headers = dict(headers)
            headers["X-Correlation-Id"] = corr
        self._respond(status, payload, headers)

    def _route(
        self, method: str, route: str, query: Dict[str, list]
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        service = self.service
        if route == "/healthz" and method == "GET":
            quick = query.get("quick", ["0"])[0] not in ("0", "", "false")
            token = self._token()
            if token is None:
                # Unauthenticated probes (load balancers) get the 200/503
                # aggregate only — no tenant ids, counts, or alerts — and
                # always the cheap incremental tick, so an anonymous
                # caller can neither enumerate the customer list nor make
                # the service burn a full signature audit per request.
                payload, tampered = service.healthz(full=False, include=())
            else:
                claims = service.authority.validate(token)
                include = None if claims.is_admin else (claims.tenant,)
                payload, tampered = service.healthz(
                    full=not quick, include=include
                )
            return (503 if tampered else 200), payload, {}

        if route in ("/v1/metrics", "/v1/profile", "/v1/alerts"):
            return self._route_observability(method, route, query)

        if route.startswith("/v1/admin/"):
            return self._route_admin(method, route)

        claims = service.authority.validate(self._token())
        if claims.tenant == "*":
            raise ForbiddenError(
                "admin keys carry no tenant and cannot access the data plane"
            )
        tenant = claims.tenant
        if OBS.enabled:
            # Per-tenant traffic counter, labelled post-auth so the label
            # value is a *validated* tenant claim (hostile ids still pass
            # through — the exporter escapes them; the scrape tests feed
            # quotes/backslashes/newlines through exactly this label).
            OBS.registry.counter("service.tenant.requests", tenant=tenant).inc()

        if route == "/v1/record" and method == "POST":
            body = self._body()
            return 200, service.record(
                tenant,
                str(body["op"]),
                str(body["object_id"]),
                value=body.get("value"),
                parent=body.get("parent"),
                inputs=body.get("inputs"),
                note=str(body.get("note", "")),
            ), {}
        if route == "/v1/batch" and method == "POST":
            body = self._body()
            return 200, service.batch(
                tenant, body["ops"], note=str(body.get("note", ""))
            ), {}
        if route == "/v1/verify" and method == "POST":
            body = self._body()
            workers = body.get("workers")
            return 200, service.verify(
                tenant,
                str(body["object_id"]),
                workers=None if workers is None else int(workers),
            ), {}
        if route == "/v1/objects" and method == "GET":
            return 200, service.objects(tenant), {}
        if route.startswith("/v1/provenance/") and method == "GET":
            object_id = route[len("/v1/provenance/"):]
            return 200, service.provenance(tenant, object_id), {}
        if route.startswith("/v1/lineage/") and method == "GET":
            object_id = route[len("/v1/lineage/"):]
            return 200, service.lineage(tenant, object_id), {}
        raise ServiceError(f"no route for {method} {route}")

    #: Event kinds surfaced by /v1/alerts: raw monitor alerts plus the
    #: background monitor's tenant-attributed alert/health transitions.
    ALERT_KINDS = frozenset({"alert", "service.alert", "service.health"})
    #: Longest long-poll the server will hold an /v1/alerts request.
    MAX_ALERT_WAIT = 30.0

    def _route_observability(
        self, method: str, route: str, query: Dict[str, list]
    ) -> Tuple[int, object, Dict[str, str]]:
        """Admin-only: /v1/metrics, /v1/profile, /v1/alerts."""
        service = self.service
        service.authority.require_admin(self._token())
        if method != "GET":
            raise ServiceError(f"no route for {method} {route}")

        if route == "/v1/metrics":
            snapshot = OBS.registry.snapshot()
            if query.get("format", [""])[0] == "json":
                return 200, {"enabled": OBS.enabled, "metrics": snapshot}, {}
            from repro.obs.export import to_prometheus

            body = to_prometheus(snapshot).encode("utf-8")
            return 200, body, {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8"
            }

        if route == "/v1/profile":
            profiler = OBS.profiler
            if profiler is None:
                return 200, {"attached": False}, {}
            from repro.obs.profile import CostModel

            records = 0
            for tenant_id in service.tenant_ids():
                world = service._worlds[tenant_id]
                with world.lock:
                    records += len(world.store)
            cost = CostModel.from_profiler(profiler, records=records)
            return 200, {"attached": True, "cost": cost.to_dict()}, {}

        # /v1/alerts — cursor-paged, optionally long-polling.  The cursor
        # is an event sequence number: events with seq > since match, and
        # the returned cursor is the newest seq seen in the ring (matching
        # or not), so a poll loop never rescans what it already skipped.
        log = OBS.events
        ring = log.ring if log is not None else None
        if ring is None:
            return 200, {"events": [], "cursor": -1, "attached": False}, {}
        try:
            since = int(query.get("since", ["-1"])[0])
        except ValueError:
            raise ServiceError("since must be an integer event sequence")
        try:
            wait = min(float(query.get("wait", ["0"])[0]), self.MAX_ALERT_WAIT)
        except ValueError:
            raise ServiceError("wait must be a number of seconds")
        deadline = perf_counter() + max(0.0, wait)
        while True:
            events = ring.events()
            matched = [
                e.to_dict()
                for e in events
                if e.seq > since and e.kind in self.ALERT_KINDS
            ]
            cursor = max([since] + [e.seq for e in events])
            if matched or perf_counter() >= deadline:
                return 200, {
                    "events": matched, "cursor": cursor, "attached": True,
                }, {}
            sleep(0.05)

    def _route_admin(
        self, method: str, route: str
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        service = self.service
        service.authority.require_admin(self._token())
        if route == "/v1/admin/keys" and method == "POST":
            body = self._body()
            tenant = str(body["tenant"])
            ttl = body.get("ttl")
            token = service.authority.issue(
                tenant,
                scopes=tuple(str(s) for s in body.get("scopes", ())),
                ttl=None if ttl is None else float(ttl),
            )
            claims = service.authority.decode_claims(token)
            return 200, {"token": token, "key_id": claims.key_id,
                         "tenant": tenant}, {}
        if route.startswith("/v1/admin/keys/") and method == "DELETE":
            key_id = route[len("/v1/admin/keys/"):]
            revoked = service.authority.revoke(key_id)
            return 200, {"key_id": key_id, "revoked": revoked}, {}
        if route == "/v1/admin/recover" and method == "POST":
            return 200, service.recover(), {}
        raise ServiceError(f"no admin route for {method} {route}")

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _token(self) -> Optional[str]:
        auth = self.headers.get("Authorization")
        if auth:
            parts = auth.split(None, 1)
            if len(parts) == 2 and parts[0].lower() == "bearer":
                return parts[1].strip()
            raise AuthError("Authorization header is not a Bearer token")
        return self.headers.get("X-Api-Key")

    def _body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body is required")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    @staticmethod
    def _auth_failure(exc) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if isinstance(exc, ForbiddenError):
            return 403, {"error": _strip(exc)}, {}
        return 401, {"error": _strip(exc)}, {"WWW-Authenticate": "Bearer"}

    def _respond(
        self, status: int, payload: object, headers: Dict[str, str]
    ) -> None:
        # JSON-dict payloads get the canonical encoding (byte-identity
        # suite); a bytes payload goes out verbatim with whatever
        # Content-Type the route set (the Prometheus text exposition).
        headers = dict(headers)
        if isinstance(payload, bytes):
            body = payload
            content_type = headers.pop("Content-Type", "text/plain; charset=utf-8")
        else:
            body = canonical_json(payload)
            content_type = headers.pop("Content-Type", "application/json")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass


def _strip(exc: BaseException) -> str:
    # UnknownObjectError subclasses KeyError, whose str() adds quotes.
    return str(exc).strip("'\"")


def _current_correlation() -> Optional[str]:
    from repro.obs.events import current_correlation

    return current_correlation()


class ProvenanceHTTPServer(ThreadingHTTPServer):
    """The provenance service bound to a socket.

    ``port=0`` picks a free port (tests).  :meth:`start_background` runs
    ``serve_forever`` on a daemon thread and returns once the socket is
    accepting, so tests and the load harness can connect immediately.
    """

    daemon_threads = True
    #: The socketserver default backlog of 5 drops connections under the
    #: load harness's 32-thread bursts ("connection reset by peer").
    request_queue_size = 128

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[ProvenanceService] = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ):
        self.service = service if service is not None else ProvenanceService(
            config if config is not None else ServiceConfig()
        )
        self.retry_after = retry_after
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _RequestHandler)

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "ProvenanceHTTPServer":
        thread = threading.Thread(
            target=self.serve_forever,
            name="repro-service",
            daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()
        self.service.close()


def serve(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8734,
    retry_after: float = DEFAULT_RETRY_AFTER,
) -> ProvenanceHTTPServer:
    """Build a server and run it in the foreground (CLI entry point)."""
    server = ProvenanceHTTPServer(
        config=config, host=host, port=port, retry_after=retry_after
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.close()
    return server
