"""A stdlib HTTP client for the provenance service.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.http` with bounded, ``Retry-After``-honouring
retries: a 503 (transient store trouble at the service) is retried up to
``retries`` times, sleeping the server-suggested delay (capped), which is
exactly the client half of the chaos contract — transient faults are
invisible to callers as long as they are actually transient.

Only 503 is retried.  4xx responses are caller errors and a 500 is a
(simulated) crash whose repair is recovery at restart, not a retry loop.

Observability crosses the wire in both directions.  When this process
has tracing on and a span open, every request carries a ``traceparent``
header (so the server's ``http.request`` span joins the caller's trace)
and the active correlation id as ``X-Correlation-Id`` (so client- and
server-side events share one id).  With observability off neither header
is computed or sent — request bytes are unchanged, which the
byte-identity equivalence suite depends on.  Failures keep the join
handle too: a :class:`ServiceHTTPError` carries the server-echoed
``correlation_id`` so the failing request can be grepped out of the
server's event log.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import ServiceError
from repro.obs import OBS

__all__ = ["ServiceHTTPError", "ServiceResponse", "ServiceClient"]


class ServiceHTTPError(ServiceError):
    """A non-2xx response (after any retries were exhausted)."""

    def __init__(
        self,
        status: int,
        payload: Dict[str, object],
        method: str,
        path: str,
        correlation_id: Optional[str] = None,
    ):
        self.status = status
        self.payload = payload
        #: The server's ``X-Correlation-Id`` echo, if it sent one — joins
        #: this failure to the server-side events of the same request.
        self.correlation_id = correlation_id
        corr = f" [corr {correlation_id}]" if correlation_id else ""
        super().__init__(
            f"{method} {path} -> {status}: {payload.get('error', payload)}{corr}"
        )


@dataclass(frozen=True)
class ServiceResponse:
    """One HTTP exchange: status, raw body bytes, selected headers."""

    status: int
    raw: bytes
    headers: Dict[str, str] = field(default_factory=dict)
    #: 503 retries performed before this response came back.
    retries: int = 0

    @property
    def json(self) -> Dict[str, object]:
        return json.loads(self.raw.decode("utf-8"))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServiceClient:
    """Typed access to one service, as one API key.

    Args:
        base_url: ``http://host:port`` of a running service.
        token: Bearer token for every request (None = unauthenticated —
            only ``/healthz`` will answer).
        retries: 503 retry budget per request.
        retry_cap: Upper bound on one ``Retry-After`` sleep, seconds.
        timeout: Socket timeout per request, seconds.
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        retries: int = 3,
        retry_cap: float = 0.5,
        timeout: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.retries = max(0, int(retries))
        self.retry_cap = retry_cap
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        raise_for_status: bool = True,
    ) -> ServiceResponse:
        """One request with the 503 retry loop; returns the raw exchange."""
        if OBS.tracing:
            # The client-side half of the distributed trace: _once() sees
            # this span as the innermost open one and encodes its context
            # into the traceparent header, so the server's http.request
            # span becomes this span's (remote) child.
            with OBS.tracer.span("client.request", method=method, path=path) as s:
                response = self._request_impl(method, path, body, raise_for_status)
                s.attrs["status"] = response.status
                return response
        return self._request_impl(method, path, body, raise_for_status)

    def _request_impl(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]],
        raise_for_status: bool,
    ) -> ServiceResponse:
        attempts = 0
        while True:
            response = self._once(method, path, body)
            if response.status == 503 and attempts < self.retries:
                attempts += 1
                time.sleep(self._retry_delay(response, attempts))
                continue
            response = ServiceResponse(
                status=response.status, raw=response.raw,
                headers=response.headers, retries=attempts,
            )
            if raise_for_status and not response.ok:
                try:
                    payload = response.json
                except ValueError:  # non-JSON error body (proxy, raw text)
                    payload = {"error": response.raw.decode("utf-8", "replace")}
                raise ServiceHTTPError(
                    response.status, payload, method, path,
                    correlation_id=response.headers.get("X-Correlation-Id"),
                )
            return response

    def _once(self, method: str, path: str, body) -> ServiceResponse:
        data = None
        headers = {"Accept": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        if OBS.tracing or OBS.events is not None:
            # Propagate the trace context / correlation id only when this
            # process is actually observing: with obs off (the default)
            # no header is computed, keeping the disabled-mode cost at
            # two slot reads and the request bytes identical.
            from repro.obs.events import current_correlation
            from repro.obs.plane import encode_traceparent

            if OBS.tracing:
                traceparent = encode_traceparent(OBS.tracer.context())
                if traceparent is not None:
                    headers["traceparent"] = traceparent
            corr = current_correlation()
            if corr is not None:
                headers["X-Correlation-Id"] = corr
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return ServiceResponse(
                    status=reply.status,
                    raw=reply.read(),
                    headers={k: v for k, v in reply.headers.items()},
                )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            return ServiceResponse(
                status=exc.code,
                raw=raw,
                headers={k: v for k, v in exc.headers.items()},
            )

    def _retry_delay(self, response: ServiceResponse, attempt: int) -> float:
        header = response.headers.get("Retry-After")
        try:
            suggested = float(header) if header is not None else 0.0
        except ValueError:
            suggested = 0.0
        # Server suggestion first, a tiny linear backoff as the floor.
        return min(max(suggested, 0.01 * attempt), self.retry_cap)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def record(
        self,
        op: str,
        object_id: str,
        value=None,
        parent: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
        note: str = "",
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"op": op, "object_id": object_id}
        if value is not None:
            body["value"] = value
        if parent is not None:
            body["parent"] = parent
        if inputs is not None:
            body["inputs"] = list(inputs)
        if note:
            body["note"] = note
        return self.request("POST", "/v1/record", body).json

    def insert(self, object_id: str, value=None, **kw) -> Dict[str, object]:
        return self.record("insert", object_id, value=value, **kw)

    def update(self, object_id: str, value, **kw) -> Dict[str, object]:
        return self.record("update", object_id, value=value, **kw)

    def delete(self, object_id: str, **kw) -> Dict[str, object]:
        return self.record("delete", object_id, **kw)

    def aggregate(self, inputs: Sequence[str], object_id: str, **kw) -> Dict[str, object]:
        return self.record("aggregate", object_id, inputs=inputs, **kw)

    def batch(self, ops: Sequence[Dict[str, object]], note: str = "") -> Dict[str, object]:
        return self.request("POST", "/v1/batch", {"ops": list(ops), "note": note}).json

    def verify(self, object_id: str, workers: Optional[int] = None) -> Dict[str, object]:
        return self.verify_response(object_id, workers=workers).json

    def verify_response(
        self, object_id: str, workers: Optional[int] = None
    ) -> ServiceResponse:
        """The raw verify exchange (byte-identity tests compare ``.raw``)."""
        body: Dict[str, object] = {"object_id": object_id}
        if workers is not None:
            body["workers"] = workers
        return self.request("POST", "/v1/verify", body)

    def objects(self) -> Dict[str, object]:
        return self.request("GET", "/v1/objects").json

    def provenance(self, object_id: str) -> Dict[str, object]:
        return self.request("GET", f"/v1/provenance/{object_id}").json

    def lineage(self, object_id: str) -> Dict[str, object]:
        return self.request("GET", f"/v1/lineage/{object_id}").json

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------

    def healthz(self, quick: bool = False) -> ServiceResponse:
        path = "/healthz?quick=1" if quick else "/healthz"
        return self.request("GET", path, raise_for_status=False)

    # ------------------------------------------------------------------
    # observability plane (admin)
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the server's registry."""
        return self.request("GET", "/v1/metrics").raw.decode("utf-8")

    def metrics_json(self) -> Dict[str, object]:
        """The server's metrics registry as a JSON snapshot."""
        return self.request("GET", "/v1/metrics?format=json").json

    def profile(self) -> Dict[str, object]:
        """The server's cost-model snapshot (phase-attributed timings)."""
        return self.request("GET", "/v1/profile").json

    def alerts(
        self, since: int = -1, wait: float = 0.0
    ) -> Dict[str, object]:
        """One page of the alert stream after cursor ``since``.

        ``wait`` long-polls: the server holds the request up to that many
        seconds for a fresh event before answering empty.  The response's
        ``cursor`` is the next ``since``.
        """
        path = f"/v1/alerts?since={int(since)}"
        if wait:
            path += f"&wait={wait:g}"
        return self.request("GET", path).json

    def issue_key(
        self,
        tenant: str,
        ttl: Optional[float] = None,
        scopes: Sequence[str] = (),
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"tenant": tenant, "scopes": list(scopes)}
        if ttl is not None:
            body["ttl"] = ttl
        return self.request("POST", "/v1/admin/keys", body).json

    def revoke_key(self, key_id: str) -> Dict[str, object]:
        return self.request("DELETE", f"/v1/admin/keys/{key_id}").json

    def recover(self) -> Dict[str, object]:
        return self.request("POST", "/v1/admin/recover", {}).json

    def with_token(self, token: Optional[str]) -> "ServiceClient":
        """A sibling client for the same service as a different key."""
        return ServiceClient(
            self.base_url, token=token, retries=self.retries,
            retry_cap=self.retry_cap, timeout=self.timeout,
        )

    def __repr__(self) -> str:
        return f"ServiceClient({self.base_url!r}, authed={self.token is not None})"
