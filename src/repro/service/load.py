"""Seeded concurrent load harness for the provenance service.

Simulates many *logical clients* — far more than OS threads — against a
running service: client ``c`` belongs to tenant ``c % tenants``, owns a
private object, and performs a small seeded workload (insert, updates,
periodic verify) through the HTTP API.  Clients are multiplexed over a
bounded thread pool, so "1000 concurrent clients" costs 1000 in-flight
workloads, not 1000 threads.

Because every client writes only its own object and chains are local per
object (§3.2), each client's verification outcome is deterministic no
matter how the scheduler interleaves tenants — which is what lets the
stress suite demand **zero** verification failures under full
concurrency, not just "mostly consistent".

The harness is used three ways: the concurrency stress tests (small
spec), ``benchmarks/bench_service.py`` (the acceptance-scale spec), and
the CI ``service`` job (which stores the report as an artifact).
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.client import ServiceClient, ServiceHTTPError

__all__ = ["LoadSpec", "ClientOutcome", "LoadReport", "run_load", "percentile"]


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one load run (a pure function of these fields + seed)."""

    clients: int = 1000
    tenants: int = 8
    threads: int = 32
    #: Mutations per client before its final verify.
    ops_per_client: int = 3
    #: Every Nth client also verifies mid-workload (0 disables).
    verify_every: int = 5
    seed: int = 0

    def tenant_of(self, client: int) -> str:
        return f"t{client % self.tenants}"

    def object_of(self, client: int) -> str:
        return f"c{client}:doc"


@dataclass(frozen=True)
class ClientOutcome:
    """What one simulated client saw."""

    client: int
    tenant: str
    ops: int
    verified_ok: bool
    retries: int
    error: Optional[str] = None


@dataclass
class LoadReport:
    """Aggregate outcome of a load run (JSON-able for CI artifacts)."""

    spec: LoadSpec
    wall_seconds: float = 0.0
    requests: int = 0
    retries: int = 0
    errors: List[str] = field(default_factory=list)
    verify_failures: List[str] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    per_tenant_ops: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        lat = sorted(self.latencies)
        return {
            "clients": self.spec.clients,
            "tenants": self.spec.tenants,
            "threads": self.spec.threads,
            "ops_per_client": self.spec.ops_per_client,
            "seed": self.spec.seed,
            "wall_seconds": round(self.wall_seconds, 4),
            "requests": self.requests,
            "throughput_rps": round(self.throughput_rps, 2),
            "retries": self.retries,
            "errors": len(self.errors),
            "verify_failures": len(self.verify_failures),
            "latency_p50_ms": round(percentile(lat, 50) * 1000, 3),
            "latency_p95_ms": round(percentile(lat, 95) * 1000, 3),
            "latency_p99_ms": round(percentile(lat, 99) * 1000, 3),
            "per_tenant_ops": dict(sorted(self.per_tenant_ops.items())),
        }


def percentile(sorted_values: List[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(len(sorted_values) * pct / 100)))
    return sorted_values[rank]


def run_load(
    base_url: str,
    tokens: Dict[str, str],
    spec: LoadSpec,
    timeout: float = 60.0,
) -> Tuple[LoadReport, List[ClientOutcome]]:
    """Drive ``spec.clients`` seeded workloads; returns (report, outcomes).

    Args:
        base_url: A running service.
        tokens: tenant id -> API key (must cover every ``spec.tenant_of``).
        spec: The workload shape.
        timeout: Per-request socket timeout for the clients.
    """
    report = LoadReport(spec=spec)
    lock = threading.Lock()

    def timed(client: ServiceClient, method: str, path: str, body=None):
        began = time.perf_counter()
        response = client.request(method, path, body)
        elapsed = time.perf_counter() - began
        with lock:
            report.requests += 1
            report.retries += response.retries
            report.latencies.append(elapsed)
        return response

    def one_client(index: int) -> ClientOutcome:
        tenant = spec.tenant_of(index)
        object_id = spec.object_of(index)
        rng = random.Random(f"{spec.seed}|client|{index}")
        client = ServiceClient(base_url, token=tokens[tenant], timeout=timeout)
        ops = retries = 0
        try:
            timed(client, "POST", "/v1/record", {
                "op": "insert", "object_id": object_id,
                "value": f"v0:{rng.randrange(1 << 30)}",
            })
            ops += 1
            for step in range(1, spec.ops_per_client):
                timed(client, "POST", "/v1/record", {
                    "op": "update", "object_id": object_id,
                    "value": f"v{step}:{rng.randrange(1 << 30)}",
                })
                ops += 1
                if spec.verify_every and index % spec.verify_every == 0:
                    mid = timed(client, "POST", "/v1/verify",
                                {"object_id": object_id}).json
                    if not mid["ok"]:
                        raise ServiceHTTPError(
                            200, {"error": "mid-workload verify failed"},
                            "POST", "/v1/verify",
                        )
            final = timed(client, "POST", "/v1/verify",
                          {"object_id": object_id}).json
            verified = bool(final["ok"])
            if not verified:
                with lock:
                    report.verify_failures.append(
                        f"client {index} ({tenant}/{object_id}): {final['failures']}"
                    )
            with lock:
                report.per_tenant_ops[tenant] = (
                    report.per_tenant_ops.get(tenant, 0) + ops
                )
            return ClientOutcome(index, tenant, ops, verified, retries)
        except Exception as exc:  # noqa: BLE001 - harness records, never raises
            with lock:
                report.errors.append(f"client {index} ({tenant}): {exc}")
            return ClientOutcome(index, tenant, ops, False, retries, error=str(exc))

    began = time.perf_counter()
    with ThreadPoolExecutor(max_workers=spec.threads) as pool:
        outcomes = list(pool.map(one_client, range(spec.clients)))
    report.wall_seconds = time.perf_counter() - began
    return report, outcomes
