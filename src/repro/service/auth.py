"""API keys for the provenance service: CA-signed bearer tokens.

The paper assumes every participant is authenticated through a PKI
(§2.3); the network front end extends the same root of trust to *client
authentication*.  An API key is a compact bearer token::

    rpk1.<base64url(payload-json)>.<base64url(CA signature)>

where the payload binds a key id to a tenant, an optional scope set, and
an optional expiry.  The token is **self-validating** (any holder of the
CA public key can check it came from the authority) plus **stateful
where it must be**: revocation is a server-side set, checked on every
request, so a revoked key fails closed even though its signature still
verifies.

Design notes:

- Tokens are signed with :meth:`CertificateAuthority.sign_token`; the
  payload is domain-separated with the ``rpk1`` prefix inside the signed
  bytes, so an API token can never be replayed as a certificate (whose
  signed encoding starts with ``cert-v1``) or vice versa.
- ``exp`` is absolute epoch seconds; the authority's clock is injectable
  so tests exercise expiry without sleeping.
- Key ids are sequential (``k1``, ``k2``, ...) — deterministic, so a
  seeded service run reproduces the same token stream.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.crypto.pki import CertificateAuthority
from repro.exceptions import AuthError, ForbiddenError

__all__ = ["TOKEN_PREFIX", "ApiKeyClaims", "ApiKeyAuthority"]

#: Token format marker; bump on any payload-shape change.
TOKEN_PREFIX = "rpk1"

#: Scope granting access to the admin endpoints (key issue/revoke,
#: recovery).  Tenant data access needs no scope beyond the tenant
#: binding itself.
ADMIN_SCOPE = "admin"


def _b64e(raw: bytes) -> str:
    return base64.urlsafe_b64encode(raw).rstrip(b"=").decode("ascii")


def _b64d(text: str) -> bytes:
    pad = -len(text) % 4
    return base64.urlsafe_b64decode(text + "=" * pad)


@dataclass(frozen=True)
class ApiKeyClaims:
    """The validated content of one API key."""

    key_id: str
    tenant: str
    scopes: Tuple[str, ...] = ()
    #: Absolute expiry (epoch seconds), or None for no expiry.
    expires: Optional[float] = None

    @property
    def is_admin(self) -> bool:
        return ADMIN_SCOPE in self.scopes

    def to_dict(self) -> Dict[str, object]:
        return {
            "kid": self.key_id,
            "tenant": self.tenant,
            "scopes": list(self.scopes),
            "exp": self.expires,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ApiKeyClaims":
        try:
            exp = data.get("exp")
            return cls(
                key_id=str(data["kid"]),
                tenant=str(data["tenant"]),
                scopes=tuple(str(s) for s in data.get("scopes", ())),
                expires=None if exp is None else float(exp),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AuthError(f"malformed API key payload: {exc}") from exc


class ApiKeyAuthority:
    """Issues, validates, and revokes the service's API keys.

    Args:
        ca: The certificate authority whose key signs tokens.  The
            service uses a dedicated auth CA (separate from the tenants'
            provenance CAs) so a compromise of one tenant's world never
            yields a token-minting key.
        clock: Time source for expiry checks (injectable for tests).
        state_path: Optional JSON file persisting the issued/revoked
            state across restarts.  Revocation is the critical half: a
            key revoked before a crash must STAY revoked after ``repro
            serve`` comes back, or the bearer regains access.  Writes go
            through a temp-file rename, so a crash mid-write leaves the
            previous state intact.
    """

    def __init__(
        self,
        ca: CertificateAuthority,
        clock: Callable[[], float] = time.time,
        state_path: Optional[str] = None,
    ):
        self.ca = ca
        self.clock = clock
        self.state_path = state_path
        self._lock = threading.Lock()
        self._next_key = 1
        #: key id -> claims for every issued key (introspection surface).
        self._issued: Dict[str, ApiKeyClaims] = {}
        self._revoked: set = set()
        if state_path is not None:
            self._load_state(state_path)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _load_state(self, path: str) -> None:
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            self._next_key = int(data["next_key"])
            self._issued = {
                str(kid): ApiKeyClaims.from_dict(claims)
                for kid, claims in data["issued"].items()
            }
            self._revoked = {str(kid) for kid in data["revoked"]}
        except (KeyError, TypeError, ValueError, OSError) as exc:
            raise AuthError(
                f"corrupt API key state at {path}: {exc}"
            ) from exc

    def _persist_locked(self) -> None:
        """Write the current state; caller holds ``self._lock``."""
        if self.state_path is None:
            return
        data = {
            "next_key": self._next_key,
            "issued": {
                kid: claims.to_dict() for kid, claims in self._issued.items()
            },
            "revoked": sorted(self._revoked),
        }
        tmp = f"{self.state_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, sort_keys=True)
        os.replace(tmp, self.state_path)

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def issue(
        self,
        tenant: str,
        scopes: Tuple[str, ...] = (),
        ttl: Optional[float] = None,
    ) -> str:
        """Mint a token binding a fresh key id to ``tenant``.

        ``ttl`` is seconds from now (``None`` = no expiry; a non-positive
        ttl mints an already-expired token, which the negative tests use).
        """
        expires = None if ttl is None else self.clock() + ttl
        # One lock acquisition for allocation AND registration, so
        # issued_keys() can never observe an allocated-but-unrecorded id.
        with self._lock:
            key_id = f"k{self._next_key}"
            self._next_key += 1
            claims = ApiKeyClaims(
                key_id=key_id, tenant=tenant, scopes=tuple(scopes),
                expires=expires,
            )
            self._issued[key_id] = claims
            self._persist_locked()
        return self._encode(claims)

    def issue_admin(self, ttl: Optional[float] = None) -> str:
        """Mint the service's admin token (tenant ``*``, admin scope)."""
        return self.issue("*", scopes=(ADMIN_SCOPE,), ttl=ttl)

    def _encode(self, claims: ApiKeyClaims) -> str:
        payload = json.dumps(
            claims.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        signature = self.ca.sign_token(self._signed_bytes(payload))
        return f"{TOKEN_PREFIX}.{_b64e(payload)}.{_b64e(signature)}"

    @staticmethod
    def _signed_bytes(payload: bytes) -> bytes:
        return TOKEN_PREFIX.encode("ascii") + b"\x1f" + payload

    # ------------------------------------------------------------------
    # validate
    # ------------------------------------------------------------------

    def validate(self, token: Optional[str]) -> ApiKeyClaims:
        """Validate a bearer token; returns its claims.

        Raises:
            AuthError: Missing, malformed, forged, or expired (→ 401).
            ForbiddenError: Revoked (→ 403; revocation fails closed).
        """
        if not token:
            raise AuthError("missing API key")
        parts = token.split(".")
        if len(parts) != 3 or parts[0] != TOKEN_PREFIX:
            raise AuthError("malformed API key")
        try:
            payload = _b64d(parts[1])
            signature = _b64d(parts[2])
        except (ValueError, TypeError) as exc:
            raise AuthError(f"malformed API key encoding: {exc}") from exc
        if not self.ca.verify_token(self._signed_bytes(payload), signature):
            raise AuthError("API key signature is invalid")
        try:
            data = json.loads(payload.decode("utf-8"))
        except ValueError as exc:
            raise AuthError(f"malformed API key payload: {exc}") from exc
        claims = ApiKeyClaims.from_dict(data)
        if claims.expires is not None and self.clock() >= claims.expires:
            raise AuthError(f"API key {claims.key_id} has expired")
        with self._lock:
            if claims.key_id in self._revoked:
                raise ForbiddenError(f"API key {claims.key_id} is revoked")
        return claims

    @staticmethod
    def decode_claims(token: str) -> ApiKeyClaims:
        """Decode a token's claims WITHOUT any validation.

        For introspection of keys this authority just minted (e.g. the
        issue endpoint reporting the key id of a deliberately-expired
        test key) — never for authentication.
        """
        parts = token.split(".")
        if len(parts) != 3 or parts[0] != TOKEN_PREFIX:
            raise AuthError("malformed API key")
        try:
            return ApiKeyClaims.from_dict(json.loads(_b64d(parts[1]).decode()))
        except (ValueError, TypeError) as exc:
            raise AuthError(f"malformed API key payload: {exc}") from exc

    def require_admin(self, token: Optional[str]) -> ApiKeyClaims:
        """Validate and additionally require the admin scope."""
        claims = self.validate(token)
        if not claims.is_admin:
            raise ForbiddenError(
                f"API key {claims.key_id} lacks the {ADMIN_SCOPE!r} scope"
            )
        return claims

    # ------------------------------------------------------------------
    # revoke / introspect
    # ------------------------------------------------------------------

    def revoke(self, key_id: str) -> bool:
        """Revoke a key id; True if it was issued and not already revoked.

        Never-issued ids are ignored (False) rather than recorded —
        otherwise repeated revocations of garbage ids would grow the
        revocation set without bound.
        """
        with self._lock:
            if key_id not in self._issued:
                return False
            already = key_id in self._revoked
            self._revoked.add(key_id)
            if not already:
                self._persist_locked()
            return not already

    def issued_keys(self) -> Tuple[ApiKeyClaims, ...]:
        """Claims of every issued key, in issue order."""
        with self._lock:
            return tuple(
                self._issued[k]
                for k in sorted(self._issued, key=lambda kid: int(kid[1:]))
            )

    def is_revoked(self, key_id: str) -> bool:
        with self._lock:
            return key_id in self._revoked

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ApiKeyAuthority(issued={len(self._issued)}, "
                f"revoked={len(self._revoked)})"
            )
