"""Provenance-as-a-service: the multi-tenant network front end.

The paper's threat model (§2.2) assumes *many mutually-distrusting
participants* recording provenance into a shared notarized store; this
package is that deployment shape.  A long-running HTTP service wraps the
engine + collector behind per-tenant sharded stores:

- :mod:`repro.service.auth` — API keys as CA-signed bearer tokens
  (issue / validate / expire / revoke), rooted in the same
  :class:`~repro.crypto.pki.CertificateAuthority` machinery that
  certifies participant signing keys.
- :mod:`repro.service.core` — :class:`~repro.service.core.ProvenanceService`,
  the transport-independent core: one
  :class:`~repro.service.core.TenantWorld` (engine, collector, sharded
  provenance store, signing participant, monitor) per tenant, with
  deterministic per-tenant seeding so a same-seed in-process world is
  byte-identical to the served one.
- :mod:`repro.service.http` — the stdlib ``ThreadingHTTPServer`` front
  end: record / batch / verify / lineage endpoints, ``/healthz`` from
  the monitor's health snapshot, per-endpoint metrics and event-log
  correlation ids, and 503 + Retry-After on transient store trouble.
- :mod:`repro.service.client` — a stdlib HTTP client with bounded
  Retry-After-honouring retries.
- :mod:`repro.service.load` — the seeded concurrent load harness
  (thousands of simulated clients over a bounded thread pool) used by
  the stress tests, ``benchmarks/bench_service.py``, and CI.
- :mod:`repro.service.background` — the opt-in continuous monitor
  daemon (``ServiceConfig(monitor_interval=...)``): incremental
  per-tenant ticks, health-transition and alert publication to
  pluggable :class:`repro.obs.plane.AlertSink` targets, and the
  per-tenant gauges ``repro dash`` renders.
"""

from repro.service.auth import ApiKeyAuthority, ApiKeyClaims
from repro.service.background import BackgroundMonitor
from repro.service.client import ServiceClient, ServiceHTTPError, ServiceResponse
from repro.service.core import (
    AUDIT_OBJECT,
    ProvenanceService,
    ServiceConfig,
    TenantWorld,
    canonical_json,
)
from repro.service.http import ProvenanceHTTPServer, serve
from repro.service.load import LoadReport, LoadSpec, run_load

__all__ = [
    "ApiKeyAuthority",
    "ApiKeyClaims",
    "BackgroundMonitor",
    "AUDIT_OBJECT",
    "ProvenanceService",
    "ServiceConfig",
    "TenantWorld",
    "canonical_json",
    "ProvenanceHTTPServer",
    "serve",
    "ServiceClient",
    "ServiceHTTPError",
    "ServiceResponse",
    "LoadReport",
    "LoadSpec",
    "run_load",
]
