"""The transport-independent service core: tenant worlds + dispatch.

:class:`ProvenanceService` is everything the HTTP front end does *minus*
HTTP: a registry of per-tenant worlds (engine, collector, sharded
provenance store, signing participant, health monitor), an API-key
authority, and the request operations (record / batch / verify / lineage
/ health / recovery) returning JSON-ready dicts.

Two properties the test suite leans on:

**Determinism.**  Every tenant world is seeded as a pure function of
``(config.seed, tenant_id)``: the tenant's CA key pair, its signing
participant, and therefore every record checksum depend only on the
tenant's own operation order — never on *when* the tenant was created
relative to other tenants or on request interleaving across tenants.
That is what makes a served world byte-identical to a same-seed
in-process reference world (the equivalence suite), and per-object
responses byte-identical even under concurrent multi-tenant load (chains
are local per object, §3.2).

**Isolation.**  A tenant is addressed only through its API key's tenant
claim — there is no request surface that names another tenant's world —
and each world owns private stores, so cross-tenant reads or writes are
impossible by construction rather than by filtering.

Every verification call appends a ``VERIFY`` provenance record to the
tenant's audit chain (object :data:`AUDIT_OBJECT`): verification itself
is an event worth notarizing — "who looked, and what did they see" —
exactly the queryable record-of-how-data-came-to-be that Cheney et al.'s
*Provenance Traces* framing asks for.  The audit record is signed and
chained like any other record, so tampering with the audit trail is as
evident as tampering with the data it audits.
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.system import ParticipantSession, TamperEvidentDatabase
from repro.crypto.pki import CertificateAuthority, KeyStore, resolve_scheme_name
from repro.exceptions import ReproError, ServiceError, UnknownObjectError
from repro.obs import OBS
from repro.provenance.registry import open_tenant_store
from repro.query.lineage import lineage_summary
from repro.service.auth import ApiKeyAuthority

if TYPE_CHECKING:  # pragma: no cover — service stays import-light
    from repro.faults.plan import FaultPlan

__all__ = [
    "AUDIT_OBJECT",
    "ServiceConfig",
    "TenantWorld",
    "ProvenanceService",
    "canonical_json",
]

#: Object id of each tenant's verification audit chain.
AUDIT_OBJECT = "~audit"


def canonical_json(payload: Dict[str, object]) -> bytes:
    """The one JSON encoding both the HTTP layer and the equivalence
    tests use — byte-identity claims are claims about these bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class ServiceConfig:
    """Deterministic recipe for a whole service instance.

    Two services built from equal configs (and driven with the same
    per-tenant operation order) produce byte-identical responses.
    """

    seed: int = 0
    key_bits: int = 1024
    signature_scheme: str = "rsa-pkcs1v15"
    hash_algorithm: str = "sha1"
    #: Provenance shards per tenant.
    shards: int = 4
    #: Directory for SQLite shard files; None keeps every store in memory.
    store_root: Optional[str] = None
    #: Verification workers for monitor cold/full passes (1 = serial).
    workers: int = 1
    #: Collector retry budget for transient store errors.
    store_retries: int = 2
    retry_backoff: float = 0.002
    #: Watermark-lag alert threshold for /healthz monitors.
    lag_threshold: int = 1 << 30
    #: Per-tenant witness anchoring: each tenant world gets its own
    #: notary (seeded from ``(seed, tenant_id)``) whose anchor log the
    #: healthz monitors check, so even a full insider rewrite of a
    #: tenant store surfaces as ``witness-mismatch`` tampering.  With
    #: ``store_root`` set, each tenant's anchor log persists beside its
    #: shard files and restarts resume it.
    witness: bool = False
    #: Optional fault plan consulted at the service.request boundary and
    #: wired into every tenant's store + collector (chaos testing).
    faults: Optional["FaultPlan"] = field(default=None, compare=False)
    #: Seconds between background monitor sweeps (0 = no daemon).  Each
    #: sweep runs the cheap incremental tick per tenant — the idle fast
    #: path makes a quiet tenant cost one watermark comparison — and
    #: publishes health transitions + alerts to ``alert_sinks``.
    monitor_interval: float = 0.0
    #: Pluggable :class:`repro.obs.plane.AlertSink` targets for the
    #: background monitor (excluded from config equality: sinks are
    #: side-effect objects, not part of the deterministic world recipe).
    alert_sinks: Tuple[object, ...] = field(default=(), compare=False)

    def resolved_scheme(self) -> str:
        return resolve_scheme_name(self.signature_scheme)


class TenantWorld:
    """One tenant's isolated database + provenance universe.

    Everything here is derived deterministically from
    ``(config.seed, tenant_id)``; the world-level lock serializes all
    operations of this tenant (the stores assume a single writer; see
    ``SQLiteProvenanceStore``), while different tenants proceed in
    parallel.
    """

    def __init__(self, tenant_id: str, config: ServiceConfig):
        self.tenant_id = tenant_id
        self.config = config
        self.lock = threading.RLock()
        rng = random.Random(f"{config.seed}|tenant|{tenant_id}")
        store = open_tenant_store(config.store_root, tenant_id, config.shards)
        if config.faults is not None:
            from repro.faults.store import FaultyStore

            store = FaultyStore(store, config.faults)
        self.db = TamperEvidentDatabase(
            provenance_store=store,
            hash_algorithm=config.hash_algorithm,
            key_bits=config.key_bits,
            signature_scheme=config.signature_scheme,
            rng=rng,
            ca=CertificateAuthority(
                name=f"repro-tenant-ca:{tenant_id}", rng=rng,
                key_bits=config.key_bits, hash_algorithm=config.hash_algorithm,
            ),
        )
        self.db.collector.store_retries = max(0, int(config.store_retries))
        self.db.collector.retry_backoff = config.retry_backoff
        if config.faults is not None:
            self.db.collector.faults = config.faults
        self.participant = self.db.enroll(f"svc:{tenant_id}")
        self.session: ParticipantSession = self.db.session(self.participant)
        #: Trust store cached once — enrollment happens only here, so the
        #: certificate set is final and verify calls skip re-validating
        #: the CA signatures on every request.
        self.keystore: KeyStore = self.db.keystore()
        self._monitor = None
        self.witness = None
        self._anchor_path: Optional[str] = None
        if config.witness:
            from repro.provenance.registry import tenant_store_paths
            from repro.trust.witness import AnchorLog, Witness

            log = AnchorLog()
            if config.store_root is not None:
                shard_paths = tenant_store_paths(
                    config.store_root, tenant_id, config.shards
                )
                self._anchor_path = os.path.join(
                    os.path.dirname(shard_paths[0]), "witness-anchors.jsonl"
                )
                log = AnchorLog.load(self._anchor_path)
            self.witness = Witness.generate(
                key_bits=config.key_bits,
                seed=f"{config.seed}|witness|{tenant_id}",
                log=log,
            )

    @property
    def store(self):
        return self.db.provenance_store

    def witness_tick(self) -> int:
        """Anchor the current chain tails; returns new-anchor count.

        Called under the world lock from the healthz pass BEFORE the
        monitor tick, so every healthy state a monitor ever reported is
        pinned by an anchor a later insider rewrite must contradict.
        """
        if self.witness is None:
            return 0
        fresh = self.witness.tick(self.store)
        if fresh and self._anchor_path is not None:
            self.witness.log.save(self._anchor_path)
        return len(fresh)

    def monitor(self):
        """The tenant's health monitor (lazily built, watermark-backed)."""
        if self._monitor is None:
            from repro.monitor import ProvenanceMonitor

            kwargs = {}
            if self.witness is not None:
                kwargs = {
                    "witness_log": self.witness.log,
                    "witness_verifier": self.witness.verifier(),
                }
            self._monitor = ProvenanceMonitor(
                self.store,
                self.keystore,
                workers=self.config.workers,
                lag_threshold=self.config.lag_threshold,
                name=self.tenant_id,
                **kwargs,
            )
        return self._monitor

    def close(self) -> None:
        close = getattr(self.store, "close", None)
        if close is not None:
            close()


class ProvenanceService:
    """Multi-tenant provenance service (transport-independent core).

    The HTTP front end (:mod:`repro.service.http`) is a thin shell over
    this class; tests that assert byte-identity drive one instance
    directly and one over HTTP with the same config and compare
    :func:`canonical_json` of the results.
    """

    #: Mutation op names accepted by :meth:`record` / :meth:`batch`.
    _MUTATIONS = ("insert", "update", "delete")

    def __init__(self, config: ServiceConfig):
        self.config = config
        config.resolved_scheme()  # validate the scheme name eagerly
        self._worlds: Dict[str, TenantWorld] = {}
        self._worlds_lock = threading.Lock()
        auth_rng = random.Random(f"{config.seed}|auth")
        auth_state = None
        if config.store_root is not None:
            os.makedirs(config.store_root, exist_ok=True)
            auth_state = os.path.join(config.store_root, "api-keys.json")
        self.authority = ApiKeyAuthority(
            CertificateAuthority(
                name="repro-service-auth-ca",
                key_bits=config.key_bits,
                hash_algorithm=config.hash_algorithm,
                rng=auth_rng,
            ),
            state_path=auth_state,
        )
        self.admin_token = self.authority.issue_admin()
        self.background = None
        if config.monitor_interval > 0:
            from repro.service.background import BackgroundMonitor

            self.background = BackgroundMonitor(
                self,
                interval=config.monitor_interval,
                sinks=config.alert_sinks,
            )
            self.background.start()

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------

    def world(self, tenant_id: str) -> TenantWorld:
        """The tenant's world, created deterministically on first use."""
        if not tenant_id or tenant_id == "*":
            raise ServiceError(f"invalid tenant id {tenant_id!r}")
        world = self._worlds.get(tenant_id)
        if world is not None:
            return world
        with self._worlds_lock:
            world = self._worlds.get(tenant_id)
            if world is None:
                world = TenantWorld(tenant_id, self.config)
                self._worlds[tenant_id] = world
                if OBS.enabled:
                    OBS.registry.gauge("service.tenants").set(len(self._worlds))
            return world

    def tenant_ids(self) -> Tuple[str, ...]:
        with self._worlds_lock:
            return tuple(sorted(self._worlds))

    def _boundary(self) -> None:
        """The request-boundary fault hook (site ``service.request``)."""
        if self.config.faults is not None:
            self.config.faults.maybe_raise("service.request")

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def record(
        self,
        tenant_id: str,
        op: str,
        object_id: str,
        value=None,
        parent: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
        note: str = "",
    ) -> Dict[str, object]:
        """Apply one primitive with provenance; returns the records."""
        self._boundary()
        world = self.world(tenant_id)
        with world.lock:
            records = self._apply(world, op, object_id, value, parent, inputs, note)
        return {
            "tenant": tenant_id,
            "object_id": object_id,
            "op": op,
            "records": [self._record_dict(r) for r in records],
        }

    def batch(
        self, tenant_id: str, ops: Sequence[Dict[str, object]], note: str = ""
    ) -> Dict[str, object]:
        """Apply several mutations as ONE complex operation (§4.4):
        one atomic flush, one record per surviving touched object."""
        self._boundary()
        if isinstance(ops, (str, bytes, dict)) or not isinstance(ops, Sequence):
            raise ServiceError("batch ops must be a list of operation objects")
        if not ops:
            raise ServiceError("batch needs at least one operation")
        for op in ops:
            if not isinstance(op, dict):
                raise ServiceError(
                    f"each batch operation must be an object, got {type(op).__name__}"
                )
            if op.get("op") not in self._MUTATIONS:
                raise ServiceError(
                    f"batch supports {self._MUTATIONS}, got {op.get('op')!r}"
                )
        world = self.world(tenant_id)
        with world.lock:
            with world.session.complex_operation(note=note):
                for op in ops:
                    self._apply(
                        world,
                        str(op["op"]),
                        str(op["object_id"]),
                        op.get("value"),
                        op.get("parent"),
                        None,
                        str(op.get("note", "")),
                    )
            records = world.session.last_records
        return {
            "tenant": tenant_id,
            "ops": len(ops),
            "records": [self._record_dict(r) for r in records],
        }

    def _apply(
        self, world, op, object_id, value, parent, inputs, note
    ) -> Tuple:
        if op == "insert":
            return world.session.insert(object_id, value, parent=parent, note=note)
        if op == "update":
            return world.session.update(object_id, value, note=note)
        if op == "delete":
            return world.session.delete(object_id, note=note)
        if op == "aggregate":
            if not inputs:
                raise ServiceError("aggregate needs a non-empty inputs list")
            return (world.session.aggregate(list(inputs), object_id, note=note),)
        raise ServiceError(f"unknown operation {op!r}")

    def verify(
        self, tenant_id: str, object_id: str, workers: Optional[int] = None
    ) -> Dict[str, object]:
        """Verify one object as a recipient would; notarize the act.

        The response carries only deterministic report fields (no audit
        sequence numbers, no timings): under concurrent load the audit
        chain's interleaving is scheduling-dependent, but this payload —
        for a client whose objects are its own — is not.
        """
        self._boundary()
        world = self.world(tenant_id)
        with world.lock:
            if object_id not in world.db.store:
                raise UnknownObjectError(
                    f"tenant {tenant_id!r} has no object {object_id!r}"
                )
            report = world.db.ship(object_id).verify(world.keystore, workers=workers)
            self._append_audit(world, object_id, report)
        if OBS.enabled:
            OBS.registry.counter(
                "service.verifications", ok=str(report.ok).lower()
            ).inc()
            if not report.ok:
                for code, count in report.failure_tally().items():
                    OBS.registry.counter(
                        "service.verify.failures",
                        tenant=tenant_id, requirement=code,
                    ).inc(count)
        return {
            "tenant": tenant_id,
            "object_id": object_id,
            "ok": report.ok,
            "records_checked": report.records_checked,
            "objects_checked": report.objects_checked,
            "failures": [str(f) for f in report.failures],
            "failure_tally": report.failure_tally(),
            "summary": report.summary(),
        }

    def _append_audit(self, world: TenantWorld, object_id: str, report) -> None:
        """Append the VERIFY record to the tenant's audit chain."""
        outcome = json.dumps(
            {
                "verify": object_id,
                "ok": report.ok,
                "records": report.records_checked,
                "tally": report.failure_tally(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        if AUDIT_OBJECT in world.db.store:
            world.session.update(AUDIT_OBJECT, outcome, note="VERIFY")
        else:
            world.session.insert(AUDIT_OBJECT, outcome, note="VERIFY")

    def lineage(self, tenant_id: str, object_id: str) -> Dict[str, object]:
        """Lineage summary of one object (ancestry through aggregations)."""
        self._boundary()
        world = self.world(tenant_id)
        with world.lock:
            dag = world.db.dag()
            if object_id not in world.store.object_ids():
                raise UnknownObjectError(
                    f"tenant {tenant_id!r} has no provenance for {object_id!r}"
                )
            summary = lineage_summary(dag, object_id)
        return {
            "tenant": tenant_id,
            "object_id": object_id,
            "records": summary.record_count,
            "participants": list(summary.participants),
            "sources": list(summary.sources),
            "aggregations": summary.aggregations,
            "linear": summary.linear,
            "depth": summary.depth,
        }

    def provenance(self, tenant_id: str, object_id: str) -> Dict[str, object]:
        """The object's own chain, as record dicts."""
        self._boundary()
        world = self.world(tenant_id)
        with world.lock:
            chain = world.store.records_for(object_id)
            if not chain:
                raise UnknownObjectError(
                    f"tenant {tenant_id!r} has no provenance for {object_id!r}"
                )
        return {
            "tenant": tenant_id,
            "object_id": object_id,
            "records": [self._record_dict(r) for r in chain],
        }

    def objects(self, tenant_id: str) -> Dict[str, object]:
        """All object ids with provenance in this tenant's world."""
        self._boundary()
        world = self.world(tenant_id)
        with world.lock:
            ids = list(world.store.object_ids())
        return {"tenant": tenant_id, "objects": ids}

    @staticmethod
    def _record_dict(record) -> Dict[str, object]:
        return {
            "object_id": record.object_id,
            "seq_id": record.seq_id,
            "participant": record.participant_id,
            "operation": record.operation.value,
            "inherited": record.inherited,
            "checksum": record.checksum.hex(),
        }

    # ------------------------------------------------------------------
    # health / recovery (control plane)
    # ------------------------------------------------------------------

    def healthz(
        self,
        full: bool = True,
        include: Optional[Sequence[str]] = None,
    ) -> Tuple[Dict[str, object], bool]:
        """One monitor pass over every tenant; returns (payload, tampered).

        ``full=True`` matches ``repro monitor --once`` semantics — a
        watermark-ignoring full audit whose anchors are still validated,
        so behind-watermark edits and removals both surface.  ``full=
        False`` is the cheap incremental tick for high-frequency probes.

        The aggregate ``health`` always covers *every* tenant, but the
        per-tenant breakdown is restricted to ``include`` (``None`` =
        all tenants; an empty sequence = aggregate only).  The HTTP
        layer uses this to keep the tenant list — record counts, alerts,
        tenant ids themselves — away from callers whose key does not
        entitle them to it; in the mutually-distrusting threat model the
        customer list is itself sensitive.
        """
        visible = None if include is None else frozenset(include)
        tenants: Dict[str, Dict[str, object]] = {}
        worst = "ok"
        rank = {"ok": 0, "degraded": 1, "tampered": 2}
        for tenant_id in self.tenant_ids():
            world = self._worlds[tenant_id]
            with world.lock:
                monitor = world.monitor()
                world.witness_tick()
                result = monitor.tick(full=full)
                if visible is None or tenant_id in visible:
                    tenants[tenant_id] = {
                        "health": result.health,
                        "records": result.records_total,
                        "verified": result.records_verified,
                        "failure_tally": monitor.accumulated_tally(),
                        "regressions": [list(r) for r in monitor.regressions],
                        "alerts": [a.rule for a in result.alerts],
                    }
            if rank[result.health] > rank[worst]:
                worst = result.health
        tampered = worst == "tampered"
        payload: Dict[str, object] = {"health": worst}
        if visible is None or visible:
            payload["tenants"] = tenants
        if OBS.enabled:
            OBS.registry.counter("service.healthz", health=worst).inc()
        return payload, tampered

    def recover(self) -> Dict[str, object]:
        """Run crash recovery over every tenant store (restart surface)."""
        from repro.faults.recovery import RecoveryScanner

        reports: Dict[str, Dict[str, object]] = {}
        for tenant_id in self.tenant_ids():
            world = self._worlds[tenant_id]
            with world.lock:
                report = RecoveryScanner(world.store).recover()
                reports[tenant_id] = report.to_dict()
        return {"tenants": reports}

    def close(self) -> None:
        if self.background is not None:
            self.background.stop()
        for tenant_id in self.tenant_ids():
            self._worlds[tenant_id].close()

    def __repr__(self) -> str:
        return (
            f"ProvenanceService(tenants={len(self._worlds)}, "
            f"seed={self.config.seed})"
        )
