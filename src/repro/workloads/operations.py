"""Complex-operation workloads (Table 2).

Each function drives one of the paper's experimental workloads against a
:class:`~repro.model.relational.RelationalView` whose executor may be a
plain engine (hashing-only experiments) or a provenance session (full
overhead experiments).  Every workload runs as a *single* complex
operation, matching Table 2's "Complex Operations for Each Experiment".

- **Setup A** — pure update sweeps with growing touched-cell counts
  (drives Fig 7's Basic-vs-Economical comparison).
- **Setup B** — homogeneous 500-op batches: all-deletes, all-inserts,
  and two update distributions (Figs 8/9).
- **Setup C** — delete/insert/update mixes with rising delete share
  (Figs 10/11).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import WorkloadError
from repro.model.relational import RelationalView

__all__ = [
    "setup_a_points",
    "apply_update_sweep",
    "apply_row_inserts",
    "apply_row_deletes",
    "OperationMix",
    "SETUP_B_OPERATIONS",
    "SETUP_C_MIXES",
    "apply_mixed_operations",
]

#: Value range for freshly written synthetic cells.
_VALUE_RANGE = 1_000_000


def setup_a_points(scale: float = 1.0) -> Tuple[Tuple[str, int, int], ...]:
    """Setup A's sweep points as ``(label, updates, rows_touched)``.

    Full scale: 1 update on 1 cell; ``400n`` updates in ``400n`` rows for
    n = 1..10; ``4000n`` updates in 4000 rows for n = 2..8.  ``scale``
    shrinks the counts proportionally (min 1) for quick runs.
    """

    def s(count: int) -> int:
        return max(1, round(count * scale))

    points: List[Tuple[str, int, int]] = [("1 update / 1 row", 1, 1)]
    for n in range(1, 11):
        points.append((f"{400 * n} updates / {400 * n} rows", s(400 * n), s(400 * n)))
    for n in range(2, 9):
        points.append((f"{4000 * n} updates / 4000 rows", s(4000 * n), s(4000)))
    return tuple(points)


def apply_update_sweep(
    view: RelationalView,
    table: str,
    n_updates: int,
    n_rows: int,
    seed: int = 0,
) -> int:
    """Update ``n_updates`` distinct cells spread over the first ``n_rows``
    rows, as one complex operation.  Returns the number of cells updated.

    Cells are assigned row-major round-robin (one cell per row before a
    second cell anywhere), matching the paper's "N updates on N cells in
    M rows" phrasing.

    Raises:
        WorkloadError: If the table cannot supply that many distinct cells.
    """
    columns = view.columns(table)
    keys = view.row_keys(table)[:n_rows]
    if len(keys) < n_rows:
        raise WorkloadError(
            f"table {table!r} has {len(keys)} rows, need {n_rows}"
        )
    if n_updates > n_rows * len(columns):
        raise WorkloadError(
            f"cannot update {n_updates} distinct cells in {n_rows} rows of "
            f"{len(columns)} columns"
        )
    rng = random.Random(seed)
    with view.executor.complex_operation():
        for i in range(n_updates):
            row_key = keys[i % n_rows]
            column = columns[(i // n_rows) % len(columns)]
            view.update_cell(table, row_key, column, rng.randrange(_VALUE_RANGE))
    return n_updates


def apply_row_inserts(
    view: RelationalView, table: str, n_rows: int, seed: int = 0
) -> List[int]:
    """Insert ``n_rows`` full rows as one complex operation."""
    columns = view.columns(table)
    rng = random.Random(seed)
    keys: List[int] = []
    with view.executor.complex_operation():
        for _ in range(n_rows):
            keys.append(
                view.insert_row(
                    table,
                    {column: rng.randrange(_VALUE_RANGE) for column in columns},
                )
            )
    return keys


def apply_row_deletes(
    view: RelationalView, table: str, n_rows: int, seed: int = 0
) -> List[int]:
    """Delete ``n_rows`` random rows (cells first) as one complex operation.

    Raises:
        WorkloadError: If the table has fewer than ``n_rows`` rows.
    """
    keys = view.row_keys(table)
    if len(keys) < n_rows:
        raise WorkloadError(f"table {table!r} has {len(keys)} rows, need {n_rows}")
    rng = random.Random(seed)
    victims = rng.sample(keys, n_rows)
    with view.executor.complex_operation():
        for key in victims:
            view.delete_row(table, key)
    return victims


@dataclass(frozen=True)
class OperationMix:
    """A Setup B/C workload: counts of each primitive kind."""

    deletes: int
    inserts: int
    updates: int

    @property
    def total(self) -> int:
        return self.deletes + self.inserts + self.updates

    @property
    def delete_fraction(self) -> float:
        """Share of deletes — the x-axis of Figs 10/11."""
        return self.deletes / self.total if self.total else 0.0

    @property
    def label(self) -> str:
        return (
            f"{self.deletes}d/{self.inserts}i/{self.updates}u "
            f"({self.delete_fraction:.1%} deletes)"
        )

    def scaled(self, scale: float) -> "OperationMix":
        """A proportionally smaller mix (each non-zero count >= 1)."""
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")

        def s(count: int) -> int:
            return max(1, round(count * scale)) if count else 0

        return OperationMix(s(self.deletes), s(self.inserts), s(self.updates))


#: Setup B (Table 2): the four homogeneous workloads, as
#: ``(key, row-deletes, row-inserts, cell-updates, rows-touched-by-updates)``.
SETUP_B_OPERATIONS: Tuple[Tuple[str, int, int, int, int], ...] = (
    ("all-deletes", 500, 0, 0, 0),
    ("all-inserts", 0, 500, 0, 0),
    ("updates-500-rows", 0, 0, 4000, 500),
    ("updates-4000-rows", 0, 0, 4000, 4000),
)

#: Setup C (Table 2): mixes of 500 primitives with rising delete share.
SETUP_C_MIXES: Tuple[OperationMix, ...] = (
    OperationMix(deletes=96, inserts=189, updates=215),
    OperationMix(deletes=183, inserts=152, updates=165),
    OperationMix(deletes=285, inserts=106, updates=109),
    OperationMix(deletes=391, inserts=49, updates=60),
)


def apply_mixed_operations(
    view: RelationalView,
    table: str,
    mix: OperationMix,
    seed: int = 0,
) -> Tuple[int, int, int]:
    """Run one Setup C mix as a single complex operation.

    Deletes remove random live rows, inserts add full rows, updates touch
    random cells of live rows; the three kinds are interleaved in a
    seeded shuffle.  Returns the ``(deletes, inserts, updates)`` actually
    performed.

    Raises:
        WorkloadError: If the table runs out of rows to delete/update.
    """
    rng = random.Random(seed)
    columns = view.columns(table)
    live = view.row_keys(table)
    if mix.deletes > len(live):
        raise WorkloadError(
            f"mix deletes {mix.deletes} rows but table has {len(live)}"
        )
    plan = (
        ["delete"] * mix.deletes + ["insert"] * mix.inserts + ["update"] * mix.updates
    )
    rng.shuffle(plan)

    performed = [0, 0, 0]
    with view.executor.complex_operation():
        for kind in plan:
            if kind == "delete":
                victim = live.pop(rng.randrange(len(live)))
                view.delete_row(table, victim)
                performed[0] += 1
            elif kind == "insert":
                key = view.insert_row(
                    table,
                    {column: rng.randrange(_VALUE_RANGE) for column in columns},
                )
                live.append(key)
                performed[1] += 1
            else:
                if not live:
                    raise WorkloadError("no live rows left to update")
                row_key = live[rng.randrange(len(live))]
                view.update_cell(
                    table, row_key, rng.choice(columns), rng.randrange(_VALUE_RANGE)
                )
                performed[2] += 1
    return tuple(performed)
