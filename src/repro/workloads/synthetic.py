"""Synthetic back-end databases (Table 1).

The paper's evaluation uses four synthetic all-integer tables:

    ===== ========== ========
    table attributes rows
    ===== ========== ========
    1     8          4000
    2     9          3000
    3     10         2000
    4     5          5000
    ===== ========== ========

combined into four databases {1}, {1,2}, {1,2,3}, {1,2,3,4}.  Node counts
are cells + rows + one node per table + one root.  (Table 1(b)'s printed
counts differ from this arithmetic by a few nodes for the multi-table
combinations; we report exact counts — see EXPERIMENTS.md.)

``scale`` parameters let benchmarks shrink the workloads proportionally
for CI-speed runs while preserving shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.model.relational import RelationalView
from repro.model.tree import Forest

__all__ = [
    "TableSpec",
    "PAPER_TABLES",
    "PAPER_COMBINATIONS",
    "node_count",
    "build_forest",
    "populate_session",
    "title_table_rows",
]

#: Upper bound (exclusive) for the synthetic integer attribute values.
_VALUE_RANGE = 1_000_000


@dataclass(frozen=True)
class TableSpec:
    """Shape of one synthetic table."""

    number: int
    attributes: int
    rows: int

    @property
    def name(self) -> str:
        """Table name used in the forest (``t<number>``)."""
        return f"t{self.number}"

    @property
    def columns(self) -> Tuple[str, ...]:
        """Column names ``a1..aN``."""
        return tuple(f"a{i}" for i in range(1, self.attributes + 1))

    @property
    def nodes(self) -> int:
        """Nodes this table contributes: cells + rows + the table node."""
        return self.rows * self.attributes + self.rows + 1

    def scaled(self, scale: float) -> "TableSpec":
        """A proportionally smaller copy (row count scaled, >= 1)."""
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        return TableSpec(
            number=self.number,
            attributes=self.attributes,
            rows=max(1, round(self.rows * scale)),
        )


#: Table 1(a).
PAPER_TABLES: Tuple[TableSpec, ...] = (
    TableSpec(1, 8, 4000),
    TableSpec(2, 9, 3000),
    TableSpec(3, 10, 2000),
    TableSpec(4, 5, 5000),
)

#: Table 1(b)'s database combinations (by table number).
PAPER_COMBINATIONS: Tuple[Tuple[int, ...], ...] = (
    (1,),
    (1, 2),
    (1, 2, 3),
    (1, 2, 3, 4),
)


def tables_for(combination: Sequence[int], scale: float = 1.0) -> Tuple[TableSpec, ...]:
    """The (optionally scaled) specs for one Table 1(b) combination."""
    by_number = {spec.number: spec for spec in PAPER_TABLES}
    try:
        specs = tuple(by_number[number] for number in combination)
    except KeyError as exc:
        raise WorkloadError(f"unknown table number {exc.args[0]}") from None
    if scale != 1.0:
        specs = tuple(spec.scaled(scale) for spec in specs)
    return specs


def node_count(specs: Iterable[TableSpec]) -> int:
    """Total forest nodes for a database built from ``specs`` (incl. root)."""
    return 1 + sum(spec.nodes for spec in specs)


def build_forest(
    specs: Iterable[TableSpec],
    seed: int = 0,
    root_id: str = "db",
) -> Forest:
    """Materialise a synthetic database directly into a forest.

    No provenance, no crypto — this is the fast path for hashing-only
    experiments (Fig 6/7).  For a provenance-tracked database use
    :func:`populate_session`.
    """
    rng = random.Random(seed)
    forest = Forest()
    forest.insert(root_id, None)
    for spec in specs:
        table_id = f"{root_id}/{spec.name}"
        forest.insert(table_id, ",".join(spec.columns), root_id)
        for row in range(spec.rows):
            row_id = f"{table_id}/r{row}"
            forest.insert(row_id, None, table_id)
            for column in spec.columns:
                forest.insert(
                    f"{row_id}/{column}", rng.randrange(_VALUE_RANGE), row_id
                )
    return forest


def populate_session(
    session,
    specs: Iterable[TableSpec],
    seed: int = 0,
    root_id: str = "db",
) -> RelationalView:
    """Build the synthetic database through a provenance-tracked session.

    Every row insert is one complex operation, exactly as the evaluation's
    workload generator would drive the real system.  Returns the
    relational view for running Setup A/B/C operations.

    When the session's backing store supports bulk loading (the SQLite
    store's ``bulk()``), the whole load shares one store transaction
    instead of committing per node.
    """
    from contextlib import nullcontext

    rng = random.Random(seed)
    view = RelationalView(session, root_id=root_id)
    store = getattr(session, "store", None)
    bulk = getattr(store, "bulk", None)
    with bulk() if bulk is not None else nullcontext():
        for spec in specs:
            view.create_table(spec.name, spec.columns)
            for _ in range(spec.rows):
                view.insert_row(
                    spec.name,
                    {column: rng.randrange(_VALUE_RANGE) for column in spec.columns},
                )
    return view


def title_table_rows(
    row_count: int,
    table_id: str = "bigdb/title",
    seed: int = 0,
) -> Iterator[Tuple[str, None, List[Tuple[str, object]]]]:
    """Stream the §5.2 "Title" table: (Document ID, Title) per row.

    Yields ``(row_id, row_value, cells)`` tuples for
    :class:`~repro.core.merkle.StreamingDatabaseHasher` without ever
    materialising the table (the paper's real table had 18,962,041 rows;
    pass any ``row_count`` — memory stays O(1)).
    """
    rng = random.Random(seed)
    for row in range(row_count):
        row_id = f"{table_id}/r{row}"
        cells = [
            (f"{row_id}/doc_id", row),
            (f"{row_id}/title", f"Document {row}: {rng.randrange(1_000_000):06d}"),
        ]
        yield row_id, None, cells
