"""Synthetic workloads reproducing the paper's experimental setup (§5.1).

- :mod:`repro.workloads.synthetic` — Table 1's synthetic tables and
  database combinations (root → tables → rows → cells, all-integer
  attributes), plus the generator for the §5.2 streaming scale test.
- :mod:`repro.workloads.operations` — Table 2's complex operations:
  Setup A (update sweeps), Setup B (homogeneous 500-op batches), and
  Setup C (delete/insert/update mixes).
"""

from repro.workloads.operations import (
    SETUP_B_OPERATIONS,
    SETUP_C_MIXES,
    OperationMix,
    apply_mixed_operations,
    apply_row_deletes,
    apply_row_inserts,
    apply_update_sweep,
    setup_a_points,
)
from repro.workloads.synthetic import (
    PAPER_COMBINATIONS,
    PAPER_TABLES,
    TableSpec,
    build_forest,
    node_count,
    populate_session,
    tables_for,
    title_table_rows,
)

__all__ = [
    "TableSpec",
    "PAPER_TABLES",
    "PAPER_COMBINATIONS",
    "build_forest",
    "populate_session",
    "node_count",
    "tables_for",
    "title_table_rows",
    "OperationMix",
    "SETUP_B_OPERATIONS",
    "SETUP_C_MIXES",
    "setup_a_points",
    "apply_update_sweep",
    "apply_row_inserts",
    "apply_row_deletes",
    "apply_mixed_operations",
]
