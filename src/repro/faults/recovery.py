"""Crash recovery for provenance stores.

After a crash (real or injected), a provenance store may hold a *torn
batch*: a prefix of an ``append_many`` batch whose transaction never
committed (``synchronous = OFF`` makes this possible on a power cut; the
fault layer reproduces the same state deliberately).  Torn records are
individually well-formed — they were signed by an honest participant —
but the operation they belong to was never acknowledged, so the data
store does not reflect it.  Left in place they make an honest store look
tampered (a false R4/out-of-band accusation against the data owner).

:class:`RecoveryScanner` restores the store to its last acknowledged
state: every batch-journal entry without a committed flag identifies a
torn batch, whose present records are truncated (newest first) and whose
entry is then resolved.  Truncation goes through the store's ``discard``
method, which also drops the affected chain-tail cache entries — so a
writer that resumes on the recovered store re-reads true tails instead
of chaining off a checksum that no longer exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import ProvenanceError
from repro.obs import OBS

__all__ = ["RecoveryReport", "RecoveryScanner"]


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one recovery pass."""

    torn_batches: Tuple[int, ...]
    truncated: Tuple[Tuple[str, int], ...]
    #: Committed batches with records missing from the store — should be
    #: impossible; reported, never auto-repaired.
    anomalies: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        """True when the store needed no repair at all."""
        return not self.torn_batches and not self.anomalies

    def to_dict(self) -> Dict[str, object]:
        return {
            "torn_batches": list(self.torn_batches),
            "truncated": [list(key) for key in self.truncated],
            "anomalies": [list(key) for key in self.anomalies],
            "clean": self.clean,
        }


class RecoveryScanner:
    """Detects and truncates torn batch suffixes in a provenance store.

    Works on any store exposing the batch-journal crash surface
    (``journal`` / ``discard`` / ``resolve_torn``) — both bundled stores
    and :class:`~repro.faults.store.FaultyStore` (which delegates the
    surface to its inner store, un-faulted, so recovery always sees true
    state).
    """

    def __init__(self, store):
        # Unwrap a FaultyStore: recovery operates on true state and must
        # never trip over (or consume indices of) injected read faults.
        inner = getattr(store, "inner", None)
        if inner is not None and callable(getattr(inner, "journal", None)):
            store = inner
        for method in ("journal", "discard", "resolve_torn"):
            if not callable(getattr(store, method, None)):
                raise ProvenanceError(
                    f"store {store!r} has no {method}() — it does not expose "
                    "the batch-journal recovery surface"
                )
        self.store = store

    def scan(self) -> RecoveryReport:
        """Report what recovery *would* do, without touching the store."""
        return self._run(apply=False)

    def recover(self) -> RecoveryReport:
        """Truncate torn suffixes and resolve their journal entries."""
        report = self._run(apply=True)
        if OBS.enabled and report.torn_batches:
            reg = OBS.registry
            reg.counter("recovery.torn_batches").inc(len(report.torn_batches))
            reg.counter("recovery.truncated_records").inc(len(report.truncated))
        return report

    def _run(self, apply: bool) -> RecoveryReport:
        torn: List[int] = []
        truncated: List[Tuple[str, int]] = []
        anomalies: List[Tuple[str, int]] = []
        for entry in self.store.journal():
            if entry.committed:
                for object_id, seq_id in entry.keys:
                    if self.store.get(object_id, seq_id) is None:
                        anomalies.append((object_id, seq_id))
                continue
            torn.append(entry.batch_id)
            # Newest first: a chain's suffix comes off tail-inward, so the
            # store is never left with a gap in the middle of a chain.
            for object_id, seq_id in reversed(entry.keys):
                if apply:
                    if self.store.discard(object_id, seq_id):
                        truncated.append((object_id, seq_id))
                elif self.store.get(object_id, seq_id) is not None:
                    truncated.append((object_id, seq_id))
            if apply:
                self.store.resolve_torn(entry.batch_id)
        return RecoveryReport(
            torn_batches=tuple(torn),
            truncated=tuple(truncated),
            anomalies=tuple(anomalies),
        )
