"""Crash recovery for provenance stores.

After a crash (real or injected), a provenance store may hold a *torn
batch*: a prefix of an ``append_many`` batch whose transaction never
committed (``synchronous = OFF`` makes this possible on a power cut; the
fault layer reproduces the same state deliberately).  Torn records are
individually well-formed — they were signed by an honest participant —
but the operation they belong to was never acknowledged, so the data
store does not reflect it.  Left in place they make an honest store look
tampered (a false R4/out-of-band accusation against the data owner).

:class:`RecoveryScanner` restores the store to its last acknowledged
state: every batch-journal entry without a committed flag identifies a
torn batch, whose present records are truncated (newest first) and whose
entry is then resolved.  Truncation goes through the store's ``discard``
method, which also drops the affected chain-tail cache entries — so a
writer that resumes on the recovered store re-reads true tails instead
of chaining off a checksum that no longer exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import ProvenanceError
from repro.obs import OBS

__all__ = ["RecoveryReport", "RecoveryScanner"]


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one recovery pass."""

    torn_batches: Tuple[int, ...]
    truncated: Tuple[Tuple[str, int], ...]
    #: Committed batches with records missing from the store — should be
    #: impossible; reported, never auto-repaired.
    anomalies: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)
    #: Objects whose verified watermark covered a truncated record and
    #: was therefore rewound (cleared).  Essential for the monitor: a
    #: watermark pointing past a legitimately truncated tail would
    #: otherwise read as an R2-style removal (see DESIGN.md §9).
    rewound_watermarks: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        """True when the store needed no repair at all."""
        return not self.torn_batches and not self.anomalies

    def to_dict(self) -> Dict[str, object]:
        return {
            "torn_batches": list(self.torn_batches),
            "truncated": [list(key) for key in self.truncated],
            "anomalies": [list(key) for key in self.anomalies],
            "rewound_watermarks": list(self.rewound_watermarks),
            "clean": self.clean,
        }


class RecoveryScanner:
    """Detects and truncates torn batch suffixes in a provenance store.

    Works on any store exposing the batch-journal crash surface
    (``journal`` / ``discard`` / ``resolve_torn``) — both bundled stores
    and :class:`~repro.faults.store.FaultyStore` (which delegates the
    surface to its inner store, un-faulted, so recovery always sees true
    state).
    """

    def __init__(self, store):
        # Unwrap a FaultyStore: recovery operates on true state and must
        # never trip over (or consume indices of) injected read faults.
        inner = getattr(store, "inner", None)
        if inner is not None and callable(getattr(inner, "journal", None)):
            store = inner
        for method in ("journal", "discard", "resolve_torn"):
            if not callable(getattr(store, method, None)):
                raise ProvenanceError(
                    f"store {store!r} has no {method}() — it does not expose "
                    "the batch-journal recovery surface"
                )
        self.store = store

    def scan(self) -> RecoveryReport:
        """Report what recovery *would* do, without touching the store."""
        return self._run(apply=False)

    def recover(self) -> RecoveryReport:
        """Truncate torn suffixes and resolve their journal entries."""
        report = self._run(apply=True)
        if OBS.enabled and report.torn_batches:
            reg = OBS.registry
            reg.counter("recovery.torn_batches").inc(len(report.torn_batches))
            reg.counter("recovery.truncated_records").inc(len(report.truncated))
        log = OBS.events
        if log is not None:
            log.emit(
                "recovery.report",
                torn_batches=list(report.torn_batches),
                truncated=len(report.truncated),
                anomalies=len(report.anomalies),
                rewound_watermarks=list(report.rewound_watermarks),
                clean=report.clean,
            )
        return report

    def _run(self, apply: bool) -> RecoveryReport:
        torn: List[int] = []
        truncated: List[Tuple[str, int]] = []
        anomalies: List[Tuple[str, int]] = []
        log = OBS.events
        for entry in self.store.journal():
            if entry.committed:
                for object_id, seq_id in entry.keys:
                    if self.store.get(object_id, seq_id) is None:
                        anomalies.append((object_id, seq_id))
                continue
            torn.append(entry.batch_id)
            # Newest first: a chain's suffix comes off tail-inward, so the
            # store is never left with a gap in the middle of a chain.
            removed = 0
            for object_id, seq_id in reversed(entry.keys):
                if apply:
                    if self.store.discard(object_id, seq_id):
                        truncated.append((object_id, seq_id))
                        removed += 1
                elif self.store.get(object_id, seq_id) is not None:
                    truncated.append((object_id, seq_id))
            if apply:
                self.store.resolve_torn(entry.batch_id)
                if log is not None:
                    log.emit(
                        "recovery.torn_batch",
                        batch_id=entry.batch_id,
                        declared=len(entry.keys),
                        truncated=removed,
                    )
        rewound = self._rewind_watermarks(truncated, apply, log)
        return RecoveryReport(
            torn_batches=tuple(torn),
            truncated=tuple(truncated),
            anomalies=tuple(anomalies),
            rewound_watermarks=rewound,
        )

    def _rewind_watermarks(
        self, truncated: List[Tuple[str, int]], apply: bool, log
    ) -> Tuple[str, ...]:
        """Rewind verified watermarks that covered truncated records.

        A monitor may have verified (and advanced its watermark past)
        torn records *before* recovery ran — they were validly signed,
        just never acknowledged.  Once truncation removes them, a stale
        watermark would point past the chain's end, which the monitor
        must treat as evidence of removal (R2-suspect).  Rewinding here
        — dropping the watermark so the next tick re-verifies the chain
        from its start — is what keeps legitimate crash recovery from
        raising a false tamper alert *without* giving an attacker the
        same courtesy: only records named in an unacknowledged batch
        journal entry ever rewind a watermark.  In scan mode the rewinds
        are reported, not applied.
        """
        get_watermark = getattr(self.store, "get_watermark", None)
        if get_watermark is None or not truncated:
            return ()
        lowest: Dict[str, int] = {}
        for object_id, seq_id in truncated:
            if object_id not in lowest or seq_id < lowest[object_id]:
                lowest[object_id] = seq_id
        rewound: List[str] = []
        for object_id in sorted(lowest):
            watermark = get_watermark(object_id)
            if watermark is None or watermark.seq_id < lowest[object_id]:
                continue  # the watermark never covered the torn suffix
            if apply:
                self.store.clear_watermark(object_id)
                if log is not None:
                    log.emit(
                        "recovery.watermark_rewound",
                        object_id=object_id,
                        covered_seq=watermark.seq_id,
                        truncated_from_seq=lowest[object_id],
                    )
            rewound.append(object_id)
        return tuple(rewound)
