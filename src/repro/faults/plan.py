"""Deterministic, seedable fault schedules.

A :class:`FaultPlan` decides, for every *(site, invocation index)* pair,
whether a named fault fires and which kind.  Decisions are pure functions
of ``(seed, site, index, rule)`` — no shared mutable state — so the same
seed reproduces the same schedule across runs, threads, and even pool
worker processes (the parallel verifier ships the plan's spec to its
workers and each worker re-derives identical decisions).

Fault sites are plain strings naming instrumented code locations::

    store.append            single-record provenance append
    store.append_many       batched provenance append
    store.read              tail / record reads
    collector.flush         between signing and storing a staged batch
    verify.worker           one parallel-verification chunk
    service.request         the HTTP front end's request boundary

Kinds (:class:`FaultKind`):

``TORN``     commit only a prefix of an ``append_many`` batch, then crash
``ERROR``    raise a transient ``sqlite3.OperationalError`` (disk I/O)
``CRASH``    raise :class:`~repro.exceptions.CrashError` (process death)
``LATENCY``  sleep briefly, then let the operation proceed
``KILL``     hard-kill a verifier worker process (``os._exit``)
"""

from __future__ import annotations

import enum
import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import CrashError, ProvenanceError, TransientStoreError
from repro.obs import OBS

__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultEvent",
    "FaultPlan",
]


class FaultKind(str, enum.Enum):
    """What an injected fault does at its site."""

    TORN = "torn"
    ERROR = "error"
    CRASH = "crash"
    LATENCY = "latency"
    KILL = "kill"


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule.

    Args:
        site: The fault site this rule arms.
        kind: What happens when it fires.
        rate: Probability that a given invocation fires (seeded draw).
        indices: When given, fire on exactly these invocation indices
            instead of drawing; ``rate`` is ignored.
        torn_keep: For ``TORN`` faults: how many records of the batch
            survive the tear.  ``None`` draws a prefix length from the
            seed (deterministically).
        latency: Sleep duration in seconds for ``LATENCY`` faults.
    """

    site: str
    kind: FaultKind
    rate: float = 1.0
    indices: Optional[FrozenSet[int]] = None
    torn_keep: Optional[int] = None
    latency: float = 0.001

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "kind": self.kind.value,
            "rate": self.rate,
            "indices": sorted(self.indices) if self.indices is not None else None,
            "torn_keep": self.torn_keep,
            "latency": self.latency,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        indices = data.get("indices")
        return cls(
            site=str(data["site"]),
            kind=FaultKind(data["kind"]),
            rate=float(data.get("rate", 1.0)),
            indices=frozenset(int(i) for i in indices) if indices is not None else None,
            torn_keep=(None if data.get("torn_keep") is None else int(data["torn_keep"])),
            latency=float(data.get("latency", 0.001)),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the plan's injection log)."""

    site: str
    index: int
    kind: FaultKind
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "index": self.index,
            "kind": self.kind.value,
            "detail": self.detail,
        }


@dataclass
class FaultPlan:
    """A seeded schedule of named faults.

    The plan keeps one invocation counter per site (thread-safe) and an
    append-only log of fired events, but the fire/no-fire decision itself
    is stateless: :meth:`decide` answers purely from ``(seed, site,
    index)``, so two plans built from the same spec agree everywhere.
    """

    seed: int
    rules: Tuple[FaultRule, ...] = ()
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _draw(self, site: str, index: int, rule_pos: int) -> float:
        return random.Random(f"{self.seed}|{site}|{index}|{rule_pos}").random()

    def decide(self, site: str, index: int) -> Optional[FaultRule]:
        """The rule that fires at ``(site, index)``, or None.

        Pure: depends only on the plan's seed and rules, never on call
        history, so any process holding the same spec computes the same
        answer.  The first matching armed rule wins.
        """
        for pos, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.indices is not None:
                if index in rule.indices:
                    return rule
                continue
            if self._draw(site, index, pos) < rule.rate:
                return rule
        return None

    def next_index(self, site: str) -> int:
        """Claim this call's invocation index at ``site``."""
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
        return index

    def draw(self, site: str) -> Optional[Tuple[FaultRule, int]]:
        """Advance ``site``'s counter; return ``(rule, index)`` if it fires.

        Fired faults are logged to :attr:`events` and counted on the
        ``faults.injected`` metric, so every injection is observable.
        """
        index = self.next_index(site)
        rule = self.decide(site, index)
        if rule is None:
            return None
        self.record(site, index, rule.kind)
        return rule, index

    def record(self, site: str, index: int, kind: FaultKind, detail: str = "") -> None:
        """Log one fired fault (also used for faults observed, not raised —
        e.g. the parent logging a worker the plan killed)."""
        with self._lock:
            self.events.append(FaultEvent(site, index, kind, detail))
        if OBS.enabled:
            OBS.registry.counter("faults.injected", site=site, kind=kind.value).inc()
        log = OBS.events
        if log is not None:
            # "kind" would collide with emit()'s event-kind parameter.
            log.emit(
                "fault.injected",
                site=site, index=index, fault=kind.value, detail=detail,
            )

    def torn_keep(self, rule: FaultRule, index: int, batch_size: int) -> int:
        """How many records of a torn batch survive (deterministic)."""
        if rule.torn_keep is not None:
            return max(0, min(batch_size, rule.torn_keep))
        if batch_size <= 1:
            return 0
        return random.Random(f"{self.seed}|torn|{rule.site}|{index}").randrange(batch_size)

    def maybe_raise(self, site: str) -> None:
        """Fire-and-raise helper for sites without batch semantics.

        ``ERROR`` raises a transient ``sqlite3.OperationalError``,
        ``CRASH`` raises :class:`CrashError`, ``LATENCY`` sleeps.  ``TORN``
        and ``KILL`` make no sense here and are rejected at plan-build
        time by :meth:`validate`.
        """
        fired = self.draw(site)
        if fired is None:
            return
        rule, index = fired
        _raise_for(rule, site, index)

    def validate(self, site_kinds: Dict[str, Sequence[FaultKind]]) -> None:
        """Check every rule's kind is meaningful at its site."""
        for rule in self.rules:
            allowed = site_kinds.get(rule.site)
            if allowed is not None and rule.kind not in allowed:
                raise ProvenanceError(
                    f"fault kind {rule.kind.value!r} is not valid at site "
                    f"{rule.site!r} (allowed: {[k.value for k in allowed]})"
                )

    # ------------------------------------------------------------------
    # introspection / serialization
    # ------------------------------------------------------------------

    def schedule_preview(self, site: str, horizon: int) -> Tuple[int, ...]:
        """The invocation indices that would fire at ``site`` within
        ``horizon`` calls — for reports and determinism assertions."""
        return tuple(i for i in range(horizon) if self.decide(site, i) is not None)

    def to_dict(self) -> Dict[str, object]:
        """Spec only (seed + rules) — counters and events are runtime state."""
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, object]]) -> Optional["FaultPlan"]:
        if data is None:
            return None
        return cls(
            seed=int(data["seed"]),
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", ())),
        )

    def __deepcopy__(self, memo):
        # Locks cannot be deep-copied; a copy shares the spec but starts
        # with fresh counters and an empty log.
        clone = FaultPlan(seed=self.seed, rules=self.rules)
        memo[id(self)] = clone
        return clone


def _raise_for(rule: FaultRule, site: str, index: int) -> None:
    """Turn a fired rule into its effect (for non-batch sites)."""
    if rule.kind is FaultKind.ERROR:
        raise sqlite3.OperationalError(
            f"disk I/O error (injected at {site}#{index})"
        )
    if rule.kind is FaultKind.CRASH:
        raise CrashError(f"simulated crash at {site}#{index}")
    if rule.kind is FaultKind.LATENCY:
        time.sleep(rule.latency)
        return
    raise TransientStoreError(
        f"fault kind {rule.kind.value!r} cannot fire at plain site {site!r}"
    )
