"""Seeded chaos runs: a workload under faults, recovery, and the two invariants.

:func:`run_chaos` drives a deterministic insert/update/aggregate workload
against a :class:`~repro.faults.store.FaultyStore`-wrapped provenance
store, recovering after every simulated crash, then checks the two
properties the whole fault layer exists to protect (ISSUE 4):

1. **No false positives** — a recovered store with no tampering verifies
   clean: the data owner is never accused because of a crash.
2. **No false negatives** — tampering injected *after* crash-recovery is
   still detected: recovery never launders evidence.

Everything — key generation, operation mix, fault schedule, report — is
a pure function of the config's seed, so a failing chaos run is
reproducible from its seed alone (the CI job prints it).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.collector import TRANSIENT_STORE_ERRORS
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import CrashError, ProvenanceError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore

__all__ = ["ChaosConfig", "run_chaos"]


@dataclass
class ChaosConfig:
    """Knobs of one chaos run; every field participates in determinism."""

    seed: int = 0
    ops: int = 40
    store: str = "memory"  # "memory" | "sqlite"
    sqlite_path: str = ":memory:"
    torn_rate: float = 0.12
    error_rate: float = 0.08
    flush_crash_rate: float = 0.05
    read_error_rate: float = 0.0
    #: Chunk indices whose verification worker is killed (CRASH kind —
    #: picklable exception; the parent degrades the chunk to serial).
    worker_kill_chunks: Tuple[int, ...] = ()
    tamper: str = "R1"  # "none" skips the tamper phase
    workers: int = 1
    key_bits: int = 512
    #: Signature scheme the workload's participants sign with
    #: (``"rsa-per-record"`` or ``"merkle-batch"``); aliases resolve via
    #: :func:`repro.crypto.pki.resolve_scheme_name`.
    scheme: str = "rsa-per-record"
    #: Multi-participant adversary axis: ``"solo"`` (single signer, the
    #: historical behavior), ``"hand-off"`` (custody transfers woven into
    #: the workload + a forged hand-off must be detected),
    #: ``"k-collusion"`` (a seeded coalition re-signs a suffix; detection
    #: must match whether an honest participant blocks it), or
    #: ``"witnessed"`` (a FULL-coalition store rewrite must pass the
    #: plain monitor and be flagged ``witness-mismatch`` by the witnessed
    #: one).
    trust: str = "solo"
    #: Participants enrolled for the non-solo trust modes.
    custodians: int = 3
    #: Coalition size for ``trust="k-collusion"``.
    coalition_size: int = 2

    def build_plan(self) -> FaultPlan:
        """The seeded fault schedule this config describes."""
        rules: List[FaultRule] = []
        if self.torn_rate > 0:
            rules.append(
                FaultRule("store.append_many", FaultKind.TORN, rate=self.torn_rate)
            )
        if self.error_rate > 0:
            rules.append(
                FaultRule("store.append_many", FaultKind.ERROR, rate=self.error_rate)
            )
        if self.flush_crash_rate > 0:
            rules.append(
                FaultRule("collector.flush", FaultKind.CRASH, rate=self.flush_crash_rate)
            )
        if self.read_error_rate > 0:
            rules.append(
                FaultRule("store.read", FaultKind.ERROR, rate=self.read_error_rate)
            )
        if self.worker_kill_chunks:
            rules.append(
                FaultRule(
                    "verify.worker",
                    FaultKind.CRASH,
                    indices=frozenset(self.worker_kill_chunks),
                )
            )
        return FaultPlan(seed=self.seed, rules=tuple(rules))

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["worker_kill_chunks"] = list(self.worker_kill_chunks)
        return data


@dataclass
class _WorkloadLog:
    applied: int = 0
    crashes: int = 0
    failed_ops: int = 0
    handoffs: int = 0
    recoveries: List[Dict[str, object]] = field(default_factory=list)
    #: Participant id → Participant for the trust modes (empty for solo).
    participants: Dict[str, object] = field(default_factory=dict)


def _make_store(config: ChaosConfig):
    if config.store == "memory":
        return InMemoryProvenanceStore()
    if config.store == "sqlite":
        return SQLiteProvenanceStore(config.sqlite_path)
    raise ProvenanceError(f"unknown chaos store {config.store!r}")


def _run_workload(
    config: ChaosConfig, db: TamperEvidentDatabase, scanner: RecoveryScanner
) -> _WorkloadLog:
    """The seeded operation mix, with crash-recovery after every crash.

    All randomness is drawn *before* attempting the operation, so an
    injected fault never shifts the remaining schedule: two runs with
    the same seed perform the same op sequence regardless of where they
    crash.
    """
    rng = random.Random(f"chaos-workload|{config.seed}")
    session = db.session(db.enroll("chaos"))
    log = _WorkloadLog()
    live: List[str] = []
    created = 0
    aggregated = 0
    for i in range(config.ops):
        roll = rng.random()
        if not live or roll < 0.35:
            op = ("insert", f"obj{created}", i)
            created += 1
        elif roll < 0.72 or len(live) < 2:
            op = ("update", rng.choice(live), 1000 * i + rng.randrange(100))
        else:
            inputs = rng.sample(live, 2)
            op = ("aggregate", tuple(inputs), f"agg{aggregated}")
            aggregated += 1
        try:
            if op[0] == "insert":
                session.insert(op[1], op[2])
                live.append(op[1])
            elif op[0] == "update":
                session.update(op[1], op[2])
            else:
                session.aggregate(list(op[1]), op[2])
            log.applied += 1
        except CrashError:
            # "The process died."  The session already compensated the
            # engine on the way out; the provenance store may hold a torn
            # suffix.  Restart = recover before touching the store again.
            log.crashes += 1
            obs.emit("chaos.crash", op_index=i, op=op[0], target=str(op[1]))
            log.recoveries.append(scanner.recover().to_dict())
        except TRANSIENT_STORE_ERRORS:
            # Retries exhausted: the operation is lost but acknowledged
            # as lost — nothing was stored, nothing to recover.
            log.failed_ops += 1
            obs.emit("chaos.op_lost", op_index=i, op=op[0], target=str(op[1]))
    return log


_TRUST_MODES = ("solo", "hand-off", "k-collusion", "witnessed")


def _run_trust_workload(
    config: ChaosConfig, db: TamperEvidentDatabase, scanner: RecoveryScanner
) -> _WorkloadLog:
    """The multi-participant operation mix (trust modes other than solo).

    Same pre-draw discipline as :func:`_run_workload` (its own rng stream
    — the solo schedule stays byte-identical for existing seeds), plus:
    every object is worked on by its *current custodian* (the chain-tail
    author) and custody periodically hands off between participants via
    dual-signed ``TRANSFER`` records.
    """
    from repro.trust.custody import transfer_custody

    rng = random.Random(f"chaos-trust-workload|{config.seed}")
    count = max(2, config.custodians)
    participants = [db.enroll(f"chaos-{i}") for i in range(count)]
    sessions = {p.participant_id: db.session(p) for p in participants}
    by_id = {p.participant_id: p for p in participants}
    log = _WorkloadLog(participants=dict(by_id))
    live: List[str] = []
    created = 0
    aggregated = 0

    def custodian_of(object_id: str):
        tail = db.provenance_store.latest(object_id)
        return by_id[tail.participant_id]

    for i in range(config.ops):
        roll = rng.random()
        picked = rng.randrange(count)
        target = rng.choice(live) if live else None
        extra = rng.randrange(100)
        if not live or roll < 0.30:
            op = ("insert", f"obj{created}", i)
            created += 1
        elif roll < 0.45:
            op = ("transfer", target, picked)
        elif roll < 0.80 or len(live) < 2:
            op = ("update", target, 1000 * i + extra)
        else:
            inputs = rng.sample(live, 2)
            op = ("aggregate", tuple(inputs), f"agg{aggregated}")
            aggregated += 1
        try:
            if op[0] == "insert":
                sessions[participants[picked].participant_id].insert(op[1], op[2])
                live.append(op[1])
            elif op[0] == "transfer":
                outgoing = custodian_of(op[1])
                others = [p for p in participants if p is not outgoing]
                incoming = others[op[2] % len(others)]
                transfer_custody(db.provenance_store, op[1], outgoing, incoming)
                log.handoffs += 1
            elif op[0] == "update":
                sessions[custodian_of(op[1]).participant_id].update(op[1], op[2])
            else:
                sessions[participants[picked].participant_id].aggregate(
                    list(op[1]), op[2]
                )
            log.applied += 1
        except CrashError:
            log.crashes += 1
            obs.emit("chaos.crash", op_index=i, op=op[0], target=str(op[1]))
            log.recoveries.append(scanner.recover().to_dict())
        except TRANSIENT_STORE_ERRORS:
            log.failed_ops += 1
            obs.emit("chaos.op_lost", op_index=i, op=op[0], target=str(op[1]))
    return log


def _tamper_and_verify(
    config: ChaosConfig, db: TamperEvidentDatabase, plan: FaultPlan
) -> Optional[Dict[str, object]]:
    """Inject one post-recovery tamper and verify it is detected."""
    if config.tamper in ("", "none"):
        return None
    from repro.attacks import tampering

    targets = [
        object_id
        for object_id in sorted(db.store.roots())
        if db.provenance_store.records_for(object_id)
    ]
    if not targets:
        return None
    target = targets[0]
    if config.tamper == "R2":
        # Removing a *middle* record is the R2 attack; need a chain >= 2.
        for candidate in targets:
            if len(db.provenance_store.records_for(candidate)) > 1:
                target = candidate
                break
    shipment = db.ship(target)
    chain = [r for r in shipment.records if r.object_id == target]
    victim_seq = chain[-1].seq_id
    if config.tamper == "R2" and len(chain) > 1:
        tampered = tampering.remove_record(shipment, target, chain[-2].seq_id)
    elif config.tamper == "R4":
        tampered = tampering.tamper_data(shipment, target, 987654321)
    else:  # R1 and the default
        tampered = tampering.modify_record_output(
            shipment, target, victim_seq, fake_value=424242,
            hash_algorithm=db.hash_algorithm,
        )
    report = tampered.verify(
        db.keystore(),
        workers=config.workers,
        faults=plan if config.worker_kill_chunks else None,
    )
    return {
        "target": target,
        "requirement": config.tamper,
        "detected": not report.ok,
        "tally": report.failure_tally(),
    }


def _trust_phase(
    config: ChaosConfig,
    db: TamperEvidentDatabase,
    inner,
    plan: FaultPlan,
    log: _WorkloadLog,
) -> Optional[Dict[str, object]]:
    """The adversary drill for the configured trust mode.

    Each mode ends in a boolean ``holds`` the invariants fold in:

    - ``hand-off``: a fabricated custody hand-off must be detected;
    - ``k-collusion``: a seeded coalition's suffix rewrite must be
      detected exactly when an honest participant blocks it;
    - ``witnessed``: a full-coalition store rewrite must pass the plain
      monitor (the documented gap) AND be flagged ``witness-mismatch``
      by the witnessed monitor.
    """
    if config.trust == "solo":
        return None
    from repro.provenance.records import Operation

    faults = plan if config.worker_kill_chunks else None
    participants = list(log.participants.values())

    if config.trust == "hand-off":
        from repro.trust.custody import fabricate_handoff, transfer_custody

        target = next(
            (
                oid
                for oid in sorted(db.store.roots())
                if any(
                    r.operation is Operation.TRANSFER
                    for r in inner.records_for(oid)
                )
            ),
            None,
        )
        if target is None:
            # The seeded mix never rolled a hand-off; make one now so the
            # mode always exercises what it is named after.
            target = next(
                oid for oid in sorted(db.store.roots()) if inner.records_for(oid)
            )
            tail = inner.latest(target)
            outgoing = log.participants[tail.participant_id]
            incoming = next(
                p for p in participants if p.participant_id != tail.participant_id
            )
            transfer_custody(inner, target, outgoing, incoming)
        tail = inner.latest(target)
        attacker = next(
            p for p in participants if p.participant_id != tail.participant_id
        )
        forged = fabricate_handoff(db.ship(target), target, attacker)
        report = forged.verify(db.keystore(), workers=config.workers, faults=faults)
        detected = not report.ok
        return {
            "mode": "hand-off",
            "target": target,
            "handoffs": log.handoffs,
            "forgery_detected": detected,
            "tally": report.failure_tally(),
            "holds": detected,
        }

    if config.trust == "k-collusion":
        from repro.trust.coalition import (
            coalition_rewrite,
            honest_blocker,
            seeded_coalition,
        )

        coalition = seeded_coalition(
            config.seed, participants, min(config.coalition_size, len(participants))
        )
        member_ids = {p.participant_id for p in coalition}
        target = start_seq = None
        for oid in sorted(db.store.roots()):
            chain = inner.records_for(oid)
            if len(chain) < 2 or any(
                r.operation is Operation.AGGREGATE for r in chain
            ):
                continue
            owned = next(
                (r for r in chain if r.participant_id in member_ids), None
            )
            if owned is not None:
                target, start_seq = oid, owned.seq_id
                break
        if target is None:
            return {
                "mode": "k-collusion",
                "coalition": sorted(member_ids),
                "skipped": "no linear chain with a coalition-owned record",
                "holds": True,
            }
        shipment = db.ship(target)
        blocker = honest_blocker(shipment, target, start_seq, coalition)
        forged = coalition_rewrite(shipment, target, start_seq, coalition, 31337)
        report = forged.verify(db.keystore(), workers=config.workers, faults=faults)
        expected = blocker is not None
        detected = not report.ok
        return {
            "mode": "k-collusion",
            "coalition": sorted(member_ids),
            "target": target,
            "start_seq": start_seq,
            "honest_blocker": (
                None if blocker is None
                else {"participant": blocker.participant_id, "seq_id": blocker.seq_id}
            ),
            "expected_detected": expected,
            "detected": detected,
            "tally": report.failure_tally(),
            "holds": detected == expected,
        }

    # trust == "witnessed"
    from repro.monitor.monitor import ProvenanceMonitor
    from repro.trust.coalition import rewrite_store_suffix
    from repro.trust.witness import Witness

    consumed = {
        state.object_id
        for record in inner.all_records()
        if record.operation is Operation.AGGREGATE
        for state in record.inputs
    }
    target = next(
        (
            oid
            for oid in sorted(db.store.roots())
            if oid not in consumed
            and inner.records_for(oid)
            and inner.latest(oid).operation is not Operation.AGGREGATE
        ),
        None,
    )
    if target is None:
        return {
            "mode": "witnessed",
            "skipped": "every chain is aggregate-entangled",
            "holds": True,
        }
    witness = Witness.generate(seed=config.seed)
    anchors = witness.tick(inner)
    tail = inner.latest(target)
    rewrite_store_suffix(inner, target, tail.seq_id, participants, 986543)
    plain = ProvenanceMonitor(inner, db.keystore())
    plain_health = plain.tick().health
    watched = ProvenanceMonitor(
        inner,
        db.keystore(),
        witness_log=witness.log,
        witness_verifier=witness.verifier(),
    )
    watched_result = watched.tick()
    mismatch_alerts = [
        a.to_dict() for a in watched_result.alerts if a.rule == "witness-mismatch"
    ]
    return {
        "mode": "witnessed",
        "target": target,
        "rewritten_seq": tail.seq_id,
        "anchors": len(anchors),
        "plain_monitor_health": plain_health,
        "witnessed_monitor_health": watched_result.health,
        "witness_mismatches": mismatch_alerts,
        # Both halves of the theorem: undetectable without the witness,
        # flagged as tampering with it.
        "holds": plain_health == "ok"
        and watched_result.health == "tampered"
        and bool(mismatch_alerts),
    }


def run_chaos(config: ChaosConfig) -> Dict[str, object]:
    """One full chaos run; returns a JSON-able, seed-deterministic report."""
    if config.trust not in _TRUST_MODES:
        raise ProvenanceError(
            f"unknown trust mode {config.trust!r} (choose from {_TRUST_MODES})"
        )
    plan = config.build_plan()
    inner = _make_store(config)
    faulty = FaultyStore(inner, plan)
    db = TamperEvidentDatabase(
        provenance_store=faulty,
        seed=config.seed,
        key_bits=config.key_bits,
        signature_scheme=config.scheme,
    )
    db.collector.faults = plan
    scanner = RecoveryScanner(faulty)

    obs.emit(
        "chaos.start", seed=config.seed, ops=config.ops, store=config.store,
        tamper=config.tamper, trust=config.trust,
    )
    if config.trust == "solo":
        log = _run_workload(config, db, scanner)
    else:
        log = _run_trust_workload(config, db, scanner)
    obs.emit(
        "chaos.workload", applied=log.applied, crashes=log.crashes,
        failed_ops=log.failed_ops, handoffs=log.handoffs,
    )
    # A last sweep: the workload recovers after every observed crash, so
    # this must find nothing — a torn batch here means a crash went
    # unnoticed, which is itself an invariant violation.
    final_recovery = scanner.recover()

    # Verification reads the *recovered* store directly: the recipient
    # checks what survived, not what the fault layer happens to throw.
    db.provenance_store = inner
    db.collector.provenance_store = inner

    verification: Dict[str, Dict[str, object]] = {}
    for object_id in sorted(db.store.roots()):
        if not inner.records_for(object_id):
            continue
        report = db.ship(object_id).verify(
            db.keystore(),
            workers=config.workers,
            faults=plan if config.worker_kill_chunks else None,
        )
        verification[object_id] = {
            "ok": report.ok,
            "records_checked": report.records_checked,
            "tally": report.failure_tally(),
        }
    all_clean = all(entry["ok"] for entry in verification.values())

    tamper = _tamper_and_verify(config, db, plan)
    if tamper is not None:
        obs.emit(
            "chaos.tamper", requirement=tamper["requirement"],
            target=tamper["target"], detected=tamper["detected"],
        )

    # The trust drill runs LAST: the witnessed mode rewrites the store
    # in place, so everything before it must already be settled.
    trust = _trust_phase(config, db, inner, plan, log)
    if trust is not None:
        obs.emit("chaos.trust", mode=trust["mode"], holds=trust["holds"])

    no_false_positives = all_clean and final_recovery.clean
    no_false_negatives = tamper is None or bool(tamper["detected"])
    trust_holds = trust is None or bool(trust["holds"])
    injected: Dict[str, int] = {}
    for event in plan.events:
        key = f"{event.site}:{event.kind.value}"
        injected[key] = injected.get(key, 0) + 1

    return {
        "seed": config.seed,
        "config": config.to_dict(),
        "workload": {
            "ops": config.ops,
            "applied": log.applied,
            "crashes": log.crashes,
            "failed_ops": log.failed_ops,
            "handoffs": log.handoffs,
        },
        "faults_injected": dict(sorted(injected.items())),
        "fault_events": [event.to_dict() for event in plan.events],
        "recoveries": log.recoveries,
        "final_recovery": final_recovery.to_dict(),
        "verification": verification,
        "tamper": tamper,
        "trust": trust,
        "invariants": {
            "no_false_positives": no_false_positives,
            "no_false_negatives": no_false_negatives,
            "trust_holds": trust_holds,
            "ok": no_false_positives and no_false_negatives and trust_holds,
        },
    }
