"""Seeded chaos runs: a workload under faults, recovery, and the two invariants.

:func:`run_chaos` drives a deterministic insert/update/aggregate workload
against a :class:`~repro.faults.store.FaultyStore`-wrapped provenance
store, recovering after every simulated crash, then checks the two
properties the whole fault layer exists to protect (ISSUE 4):

1. **No false positives** — a recovered store with no tampering verifies
   clean: the data owner is never accused because of a crash.
2. **No false negatives** — tampering injected *after* crash-recovery is
   still detected: recovery never launders evidence.

Everything — key generation, operation mix, fault schedule, report — is
a pure function of the config's seed, so a failing chaos run is
reproducible from its seed alone (the CI job prints it).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.collector import TRANSIENT_STORE_ERRORS
from repro.core.system import TamperEvidentDatabase
from repro.exceptions import CrashError, ProvenanceError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryScanner
from repro.faults.store import FaultyStore
from repro.provenance.store import InMemoryProvenanceStore, SQLiteProvenanceStore

__all__ = ["ChaosConfig", "run_chaos"]


@dataclass
class ChaosConfig:
    """Knobs of one chaos run; every field participates in determinism."""

    seed: int = 0
    ops: int = 40
    store: str = "memory"  # "memory" | "sqlite"
    sqlite_path: str = ":memory:"
    torn_rate: float = 0.12
    error_rate: float = 0.08
    flush_crash_rate: float = 0.05
    read_error_rate: float = 0.0
    #: Chunk indices whose verification worker is killed (CRASH kind —
    #: picklable exception; the parent degrades the chunk to serial).
    worker_kill_chunks: Tuple[int, ...] = ()
    tamper: str = "R1"  # "none" skips the tamper phase
    workers: int = 1
    key_bits: int = 512
    #: Signature scheme the workload's participants sign with
    #: (``"rsa-per-record"`` or ``"merkle-batch"``); aliases resolve via
    #: :func:`repro.crypto.pki.resolve_scheme_name`.
    scheme: str = "rsa-per-record"

    def build_plan(self) -> FaultPlan:
        """The seeded fault schedule this config describes."""
        rules: List[FaultRule] = []
        if self.torn_rate > 0:
            rules.append(
                FaultRule("store.append_many", FaultKind.TORN, rate=self.torn_rate)
            )
        if self.error_rate > 0:
            rules.append(
                FaultRule("store.append_many", FaultKind.ERROR, rate=self.error_rate)
            )
        if self.flush_crash_rate > 0:
            rules.append(
                FaultRule("collector.flush", FaultKind.CRASH, rate=self.flush_crash_rate)
            )
        if self.read_error_rate > 0:
            rules.append(
                FaultRule("store.read", FaultKind.ERROR, rate=self.read_error_rate)
            )
        if self.worker_kill_chunks:
            rules.append(
                FaultRule(
                    "verify.worker",
                    FaultKind.CRASH,
                    indices=frozenset(self.worker_kill_chunks),
                )
            )
        return FaultPlan(seed=self.seed, rules=tuple(rules))

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["worker_kill_chunks"] = list(self.worker_kill_chunks)
        return data


@dataclass
class _WorkloadLog:
    applied: int = 0
    crashes: int = 0
    failed_ops: int = 0
    recoveries: List[Dict[str, object]] = field(default_factory=list)


def _make_store(config: ChaosConfig):
    if config.store == "memory":
        return InMemoryProvenanceStore()
    if config.store == "sqlite":
        return SQLiteProvenanceStore(config.sqlite_path)
    raise ProvenanceError(f"unknown chaos store {config.store!r}")


def _run_workload(
    config: ChaosConfig, db: TamperEvidentDatabase, scanner: RecoveryScanner
) -> _WorkloadLog:
    """The seeded operation mix, with crash-recovery after every crash.

    All randomness is drawn *before* attempting the operation, so an
    injected fault never shifts the remaining schedule: two runs with
    the same seed perform the same op sequence regardless of where they
    crash.
    """
    rng = random.Random(f"chaos-workload|{config.seed}")
    session = db.session(db.enroll("chaos"))
    log = _WorkloadLog()
    live: List[str] = []
    created = 0
    aggregated = 0
    for i in range(config.ops):
        roll = rng.random()
        if not live or roll < 0.35:
            op = ("insert", f"obj{created}", i)
            created += 1
        elif roll < 0.72 or len(live) < 2:
            op = ("update", rng.choice(live), 1000 * i + rng.randrange(100))
        else:
            inputs = rng.sample(live, 2)
            op = ("aggregate", tuple(inputs), f"agg{aggregated}")
            aggregated += 1
        try:
            if op[0] == "insert":
                session.insert(op[1], op[2])
                live.append(op[1])
            elif op[0] == "update":
                session.update(op[1], op[2])
            else:
                session.aggregate(list(op[1]), op[2])
            log.applied += 1
        except CrashError:
            # "The process died."  The session already compensated the
            # engine on the way out; the provenance store may hold a torn
            # suffix.  Restart = recover before touching the store again.
            log.crashes += 1
            obs.emit("chaos.crash", op_index=i, op=op[0], target=str(op[1]))
            log.recoveries.append(scanner.recover().to_dict())
        except TRANSIENT_STORE_ERRORS:
            # Retries exhausted: the operation is lost but acknowledged
            # as lost — nothing was stored, nothing to recover.
            log.failed_ops += 1
            obs.emit("chaos.op_lost", op_index=i, op=op[0], target=str(op[1]))
    return log


def _tamper_and_verify(
    config: ChaosConfig, db: TamperEvidentDatabase, plan: FaultPlan
) -> Optional[Dict[str, object]]:
    """Inject one post-recovery tamper and verify it is detected."""
    if config.tamper in ("", "none"):
        return None
    from repro.attacks import tampering

    targets = [
        object_id
        for object_id in sorted(db.store.roots())
        if db.provenance_store.records_for(object_id)
    ]
    if not targets:
        return None
    target = targets[0]
    if config.tamper == "R2":
        # Removing a *middle* record is the R2 attack; need a chain >= 2.
        for candidate in targets:
            if len(db.provenance_store.records_for(candidate)) > 1:
                target = candidate
                break
    shipment = db.ship(target)
    chain = [r for r in shipment.records if r.object_id == target]
    victim_seq = chain[-1].seq_id
    if config.tamper == "R2" and len(chain) > 1:
        tampered = tampering.remove_record(shipment, target, chain[-2].seq_id)
    elif config.tamper == "R4":
        tampered = tampering.tamper_data(shipment, target, 987654321)
    else:  # R1 and the default
        tampered = tampering.modify_record_output(
            shipment, target, victim_seq, fake_value=424242,
            hash_algorithm=db.hash_algorithm,
        )
    report = tampered.verify(
        db.keystore(),
        workers=config.workers,
        faults=plan if config.worker_kill_chunks else None,
    )
    return {
        "target": target,
        "requirement": config.tamper,
        "detected": not report.ok,
        "tally": report.failure_tally(),
    }


def run_chaos(config: ChaosConfig) -> Dict[str, object]:
    """One full chaos run; returns a JSON-able, seed-deterministic report."""
    plan = config.build_plan()
    inner = _make_store(config)
    faulty = FaultyStore(inner, plan)
    db = TamperEvidentDatabase(
        provenance_store=faulty,
        seed=config.seed,
        key_bits=config.key_bits,
        signature_scheme=config.scheme,
    )
    db.collector.faults = plan
    scanner = RecoveryScanner(faulty)

    obs.emit(
        "chaos.start", seed=config.seed, ops=config.ops, store=config.store,
        tamper=config.tamper,
    )
    log = _run_workload(config, db, scanner)
    obs.emit(
        "chaos.workload", applied=log.applied, crashes=log.crashes,
        failed_ops=log.failed_ops,
    )
    # A last sweep: the workload recovers after every observed crash, so
    # this must find nothing — a torn batch here means a crash went
    # unnoticed, which is itself an invariant violation.
    final_recovery = scanner.recover()

    # Verification reads the *recovered* store directly: the recipient
    # checks what survived, not what the fault layer happens to throw.
    db.provenance_store = inner
    db.collector.provenance_store = inner

    verification: Dict[str, Dict[str, object]] = {}
    for object_id in sorted(db.store.roots()):
        if not inner.records_for(object_id):
            continue
        report = db.ship(object_id).verify(
            db.keystore(),
            workers=config.workers,
            faults=plan if config.worker_kill_chunks else None,
        )
        verification[object_id] = {
            "ok": report.ok,
            "records_checked": report.records_checked,
            "tally": report.failure_tally(),
        }
    all_clean = all(entry["ok"] for entry in verification.values())

    tamper = _tamper_and_verify(config, db, plan)
    if tamper is not None:
        obs.emit(
            "chaos.tamper", requirement=tamper["requirement"],
            target=tamper["target"], detected=tamper["detected"],
        )

    no_false_positives = all_clean and final_recovery.clean
    no_false_negatives = tamper is None or bool(tamper["detected"])
    injected: Dict[str, int] = {}
    for event in plan.events:
        key = f"{event.site}:{event.kind.value}"
        injected[key] = injected.get(key, 0) + 1

    return {
        "seed": config.seed,
        "config": config.to_dict(),
        "workload": {
            "ops": config.ops,
            "applied": log.applied,
            "crashes": log.crashes,
            "failed_ops": log.failed_ops,
        },
        "faults_injected": dict(sorted(injected.items())),
        "fault_events": [event.to_dict() for event in plan.events],
        "recoveries": log.recoveries,
        "final_recovery": final_recovery.to_dict(),
        "verification": verification,
        "tamper": tamper,
        "invariants": {
            "no_false_positives": no_false_positives,
            "no_false_negatives": no_false_negatives,
            "ok": no_false_positives and no_false_negatives,
        },
    }
