"""Deterministic fault injection and crash recovery (ISSUE 4).

Seedable fault schedules (:class:`FaultPlan`), a provenance-store
wrapper that injects them (:class:`FaultyStore`), torn-batch recovery
(:class:`RecoveryScanner`), and a seeded chaos harness
(:func:`run_chaos`) asserting the two invariants: crashes never cause
false accusations, and recovery never hides real tampering.
"""

from repro.faults.chaos import ChaosConfig, run_chaos
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import RecoveryReport, RecoveryScanner
from repro.faults.store import SITE_KINDS, FaultyStore

__all__ = [
    "ChaosConfig",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "FaultyStore",
    "RecoveryReport",
    "RecoveryScanner",
    "SITE_KINDS",
    "run_chaos",
]
