"""A fault-injecting :class:`ProvenanceStore` wrapper.

:class:`FaultyStore` implements the full store protocol by delegation and
consults a :class:`~repro.faults.plan.FaultPlan` at three sites:

``store.append``        ERROR / CRASH / LATENCY before the write
``store.append_many``   the above, plus TORN: commit a prefix of the
                        batch through the inner store's crash surface
                        (:meth:`begin_torn_batch`), then crash — the
                        exact state a power cut mid-commit leaves behind
``store.read``          ERROR / LATENCY on ``latest``/``records_for``/
                        ``get``/``all_records`` (the chain-tail reads the
                        collector depends on)

Faults fire *before* the inner operation (except TORN, which replaces
it), so an ERROR leaves the inner store untouched and a retry can
succeed — which is precisely what the collector's bounded retry and the
chaos suite assert.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Optional, Tuple

from repro.exceptions import CrashError, ProvenanceError
from repro.faults.plan import FaultKind, FaultPlan, _raise_for
from repro.provenance.records import ProvenanceRecord
from repro.provenance.store import BatchJournalEntry, ChainTail, VerifiedWatermark

__all__ = ["FaultyStore", "SITE_KINDS"]

#: Which fault kinds are meaningful at which store sites (plan validation).
SITE_KINDS = {
    "store.append": (FaultKind.ERROR, FaultKind.CRASH, FaultKind.LATENCY),
    "store.append_many": (
        FaultKind.ERROR,
        FaultKind.CRASH,
        FaultKind.LATENCY,
        FaultKind.TORN,
    ),
    "store.read": (FaultKind.ERROR, FaultKind.LATENCY),
    "collector.flush": (FaultKind.ERROR, FaultKind.CRASH, FaultKind.LATENCY),
    "verify.worker": (FaultKind.CRASH, FaultKind.KILL, FaultKind.LATENCY),
    # The service layer's request boundary (repro.service): a transient
    # ERROR here surfaces to the HTTP client as 503 + Retry-After, and
    # LATENCY models a slow backend without failing the request.
    "service.request": (FaultKind.ERROR, FaultKind.LATENCY),
}


class FaultyStore:
    """Wraps any provenance store, injecting faults from a plan.

    With an empty plan the wrapper is behaviorally transparent: every
    method delegates to the inner store unchanged.
    """

    def __init__(self, inner, plan: FaultPlan):
        plan.validate(SITE_KINDS)
        self.inner = inner
        self.plan = plan

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def append(self, record: ProvenanceRecord) -> None:
        self.plan.maybe_raise("store.append")
        self.inner.append(record)

    def append_many(self, records: Iterable[ProvenanceRecord]) -> None:
        batch = list(records)
        fired = self.plan.draw("store.append_many")
        if fired is not None:
            rule, index = fired
            if rule.kind is FaultKind.TORN:
                keep = self.plan.torn_keep(rule, index, len(batch))
                # An int for single stores, a tuple of per-shard ids for
                # sharded ones; informational only — recovery finds every
                # torn sub-batch by walking journal().
                batch_id = self.inner.begin_torn_batch(batch, keep)
                raise CrashError(
                    f"simulated crash tore batch {batch_id} at "
                    f"store.append_many#{index}: {keep}/{len(batch)} records "
                    "committed"
                )
            if rule.kind is FaultKind.LATENCY:
                time.sleep(rule.latency)
            else:
                _raise_for(rule, "store.append_many", index)
        self.inner.append_many(batch)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def records_for(self, object_id: str) -> Tuple[ProvenanceRecord, ...]:
        self.plan.maybe_raise("store.read")
        return self.inner.records_for(object_id)

    def latest(self, object_id: str) -> Optional[ProvenanceRecord]:
        self.plan.maybe_raise("store.read")
        return self.inner.latest(object_id)

    def get(self, object_id: str, seq_id: int) -> Optional[ProvenanceRecord]:
        self.plan.maybe_raise("store.read")
        return self.inner.get(object_id, seq_id)

    def all_records(self) -> Iterator[ProvenanceRecord]:
        self.plan.maybe_raise("store.read")
        return self.inner.all_records()

    # ------------------------------------------------------------------
    # fault-free delegation
    # ------------------------------------------------------------------

    def object_ids(self) -> Tuple[str, ...]:
        return self.inner.object_ids()

    def __len__(self) -> int:
        return len(self.inner)

    def space_bytes(self) -> int:
        return self.inner.space_bytes()

    def purge_object(self, object_id: str) -> int:
        return self.inner.purge_object(object_id)

    # crash-recovery surface: recovery must see the *real* store state,
    # so these never inject.

    def journal(self) -> Tuple[BatchJournalEntry, ...]:
        return self.inner.journal()

    def begin_torn_batch(self, records: Iterable[ProvenanceRecord], keep: int):
        # Passes the inner store's batch id(s) through unchanged (an int
        # for single stores, a tuple for sharded ones).
        return self.inner.begin_torn_batch(records, keep)

    def discard(self, object_id: str, seq_id: int) -> bool:
        return self.inner.discard(object_id, seq_id)

    def resolve_torn(self, batch_id: int) -> None:
        self.inner.resolve_torn(batch_id)

    # verified watermarks are monitor/recovery state, not workload I/O:
    # like the journal surface they delegate fault-free.

    def set_watermark(self, watermark: VerifiedWatermark) -> None:
        self.inner.set_watermark(watermark)

    def get_watermark(self, object_id: str) -> Optional[VerifiedWatermark]:
        return self.inner.get_watermark(object_id)

    def watermarks(self) -> Tuple[VerifiedWatermark, ...]:
        return self.inner.watermarks()

    def clear_watermark(self, object_id: str) -> bool:
        return self.inner.clear_watermark(object_id)

    def _tail(self, object_id: str) -> Optional[ChainTail]:
        # Internal helper some callers (recovery, tests) reach for; not a
        # fault site — it reflects true store state.
        tail = getattr(self.inner, "_tail", None)
        if tail is None:
            raise ProvenanceError("inner store exposes no chain-tail accessor")
        return tail(object_id)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "FaultyStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"FaultyStore({self.inner!r}, seed={self.plan.seed})"
