"""Command-line interface.

``python -m repro`` (or the ``repro-provenance`` console script) manages
an on-disk workspace — SQLite back-end + SQLite provenance database + a
persisted CA and participant keys — and exposes the full lifecycle:
enroll participants, run operations, inspect chains, ship objects, and
verify shipments offline.

See ``python -m repro --help``.
"""

from repro.cli.main import main
from repro.cli.workspace import Workspace

__all__ = ["main", "Workspace"]
