"""``python -m repro`` — the command-line interface.

Typical session::

    python -m repro init --path ./lab
    python -m repro -w ./lab enroll alice
    python -m repro -w ./lab insert report draft --as alice
    python -m repro -w ./lab update report final --as alice --note "sign-off"
    python -m repro -w ./lab show report
    python -m repro -w ./lab verify report
    python -m repro -w ./lab ship report -o report.shipment.json
    python -m repro -w ./lab verify-shipment report.shipment.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.audit.inspector import ChainInspector, audit_trail, render_report
from repro.cli.workspace import Workspace
from repro.core.shipment import Shipment
from repro.crypto.keys import public_key_from_dict, public_key_to_dict
from repro.exceptions import ReproError
from repro.model.values import Value
from repro.query.lineage import lineage_summary

__all__ = ["main", "build_parser"]


def parse_value(text: Optional[str]) -> Value:
    """Parse a CLI value: int, float, true/false/null, else string."""
    if text is None:
        return None
    lowered = text.lower()
    if lowered == "null":
        return None
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tamper-evident database provenance (Zhang/Chapman/LeFevre 2009).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "-w", "--workspace", default=".", metavar="DIR",
        help="workspace directory (default: current directory)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("version", help="print the package version")

    p = sub.add_parser("init", help="create a new workspace")
    p.add_argument("--path", default=None, help="directory (default: --workspace)")
    p.add_argument("--key-bits", type=int, default=1024)
    p.add_argument("--ca-name", default="repro-root-ca")
    p.add_argument("--hash", dest="hash_algorithm", default="sha1")

    p = sub.add_parser("enroll", help="enroll a participant (keys + certificate)")
    p.add_argument("participant")

    p = sub.add_parser("participants", help="list enrolled participants")

    p = sub.add_parser("insert", help="insert an object")
    p.add_argument("object_id")
    p.add_argument("value", nargs="?", default=None)
    p.add_argument("--parent", default=None)
    p.add_argument("--as", dest="participant", required=True)
    p.add_argument("--note", default="")

    p = sub.add_parser("update", help="update an object's value")
    p.add_argument("object_id")
    p.add_argument("value")
    p.add_argument("--as", dest="participant", required=True)
    p.add_argument("--note", default="")

    p = sub.add_parser("delete", help="delete a leaf object")
    p.add_argument("object_id")
    p.add_argument("--as", dest="participant", required=True)
    p.add_argument("--note", default="")

    p = sub.add_parser("aggregate", help="aggregate objects into a new one")
    p.add_argument("output_id")
    p.add_argument("inputs", nargs="+")
    p.add_argument("--as", dest="participant", required=True)
    p.add_argument("--note", default="")

    p = sub.add_parser("sql", help="run a SQL statement against a tracked database")
    p.add_argument("statement")
    p.add_argument("--as", dest="participant", default=None,
                   help="acting participant (required for writes)")
    p.add_argument("--root", default="db", help="database root object id")
    p.add_argument("--note", default="")

    p = sub.add_parser("shell", help="interactive SQL shell")
    p.add_argument("--as", dest="participant", required=True)
    p.add_argument("--root", default="db")

    p = sub.add_parser("objects", help="list root objects")

    p = sub.add_parser("show", help="print an object's provenance chain")
    p.add_argument("object_id")

    p = sub.add_parser("audit", help="verification + full audit trail")
    p.add_argument("object_id")

    p = sub.add_parser("lineage", help="one-line lineage summary")
    p.add_argument("object_id")

    p = sub.add_parser("history", help="value history of an object")
    p.add_argument("object_id")

    p = sub.add_parser("verify", help="verify an object in place")
    p.add_argument("object_id")
    p.add_argument("--anchors", action="store_true",
                   help="also check the workspace's anchored checksums")

    p = sub.add_parser("anchor", help="anchor an object's latest checksum")
    p.add_argument("object_id")

    p = sub.add_parser(
        "lint", help="structural self-check of the provenance store (no keys)"
    )

    p = sub.add_parser("dot", help="export the provenance DAG as Graphviz DOT")
    p.add_argument("object_id", nargs="?", default=None,
                   help="restrict to this object's ancestry (default: all)")
    p.add_argument("-o", "--output", default=None,
                   help="write to file (default: stdout)")
    p.add_argument("--notes", action="store_true", help="include white-box notes")

    p = sub.add_parser("ship", help="export data + provenance + certificates")
    p.add_argument("object_id")
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("verify-shipment", help="verify a shipment file")
    p.add_argument("shipment_file")
    p.add_argument(
        "--ca-key", default=None,
        help="CA public key JSON (default: the workspace's CA)",
    )

    p = sub.add_parser("export-ca-key", help="write the CA public key as JSON")
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser(
        "stats",
        help="run an instrumented synthetic workload and print its metrics",
        description=(
            "Runs a seeded in-memory insert/update/aggregate/verify workload "
            "with observability enabled and prints the collected metrics "
            "(counters, gauges, latency histograms). No workspace needed."
        ),
    )
    p.add_argument("--objects", type=int, default=6, help="objects to create")
    p.add_argument("--updates", type=int, default=3, help="updates per object")
    p.add_argument("--seed", type=int, default=42, help="RNG seed for key generation")
    p.add_argument("--key-bits", type=int, default=512)
    p.add_argument("--workers", type=int, default=1,
                   help="verification workers (>1 exercises the parallel path)")
    p.add_argument("--scheme", choices=("rsa", "rsa-per-record", "merkle-batch"),
                   default="rsa",
                   help="signature scheme (merkle-batch signs one Merkle "
                        "root per flush instead of every record)")
    p.add_argument("--json", action="store_true", help="emit a JSON snapshot")
    p.add_argument("--prometheus", action="store_true",
                   help="emit Prometheus text exposition format")
    p.add_argument("-o", "--output", default=None,
                   help="write to file (default: stdout)")

    p = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection chaos workload and check invariants",
        description=(
            "Runs a deterministic insert/update/aggregate workload against a "
            "fault-injecting provenance store (torn batches, transient I/O "
            "errors, crashes between sign and store), recovers after every "
            "crash, then checks the two invariants: a recovered untampered "
            "store verifies clean (no false positives), and tampering "
            "injected after recovery is still detected (no false negatives). "
            "Exit 0 iff both hold. Identical seeds produce identical "
            "reports. No workspace needed."
        ),
    )
    p.add_argument("--seed", type=int, default=0, help="fault/workload seed")
    p.add_argument("--seed-from-env", metavar="VAR", default=None,
                   help="read the seed from this environment variable instead")
    p.add_argument("--ops", type=int, default=40, help="workload operations")
    p.add_argument("--store", choices=("memory", "sqlite"), default="memory")
    p.add_argument("--sqlite-path", default=":memory:",
                   help="sqlite store path (default: in-memory)")
    p.add_argument("--torn-rate", type=float, default=0.12,
                   help="torn-batch probability per append_many")
    p.add_argument("--error-rate", type=float, default=0.08,
                   help="transient store-error probability per append_many")
    p.add_argument("--crash-rate", type=float, default=0.05,
                   help="crash probability between sign and store")
    p.add_argument("--read-error-rate", type=float, default=0.0,
                   help="transient error probability per store read")
    p.add_argument("--kill-chunk", type=int, action="append", default=None,
                   metavar="N", help="kill the verify worker for chunk N "
                   "(repeatable; needs --workers > 1)")
    p.add_argument("--tamper", choices=("R1", "R2", "R4", "none"), default="R1",
                   help="post-recovery tamper family (default: R1)")
    p.add_argument("--workers", type=int, default=1,
                   help="verification workers (>1 exercises the parallel path)")
    p.add_argument("--key-bits", type=int, default=512)
    p.add_argument("--scheme", choices=("rsa", "rsa-per-record", "merkle-batch"),
                   default="rsa",
                   help="signature scheme the workload signs with")
    p.add_argument("--trust", choices=("solo", "hand-off", "k-collusion", "witnessed"),
                   default="solo",
                   help="multi-participant adversary mode: hand-off weaves "
                        "custody transfers into the workload and forges one; "
                        "k-collusion re-signs a suffix with a seeded "
                        "coalition; witnessed proves a full-coalition rewrite "
                        "is only caught by the witness anchors")
    p.add_argument("--custodians", type=int, default=3,
                   help="participants enrolled for the non-solo trust modes")
    p.add_argument("--coalition-size", type=int, default=2,
                   help="coalition size for --trust k-collusion")
    p.add_argument("--json", action="store_true", help="emit the full JSON report")
    p.add_argument("-o", "--output", default=None,
                   help="write the report to a file (default: stdout)")

    p = sub.add_parser(
        "monitor",
        help="continuous provenance health monitor (incremental verify + alerts)",
        description=(
            "Watches a provenance store with watermark-based incremental "
            "verification: each tick re-verifies only the records past every "
            "chain's persisted verified watermark, evaluates the alert rules "
            "(tamper by requirement, watermark regression/lag, store latency, "
            "degraded verification chunks), and reports a health status. "
            "With --once, prints one JSON health snapshot and exits non-zero "
            "iff a tamper alert is firing; otherwise renders a refreshing "
            "table for --ticks ticks. --synthetic runs against a seeded "
            "in-memory workload (no workspace); --tamper then injects a "
            "tamper after a baseline tick so the watermarks have something "
            "to catch."
        ),
    )
    p.add_argument("--once", action="store_true",
                   help="one full-audit tick (ignores watermark skips); "
                        "JSON snapshot; exit 1 iff tampering")
    p.add_argument("--ticks", type=int, default=5,
                   help="ticks to run in watch mode (default: 5)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between watch-mode ticks")
    p.add_argument("--workers", type=int, default=1,
                   help="verification workers for cold/full passes")
    p.add_argument("--lag-threshold", type=int, default=64,
                   help="watermark-lag alert threshold (records)")
    p.add_argument("--latency-threshold", type=float, default=0.5,
                   help="store p99 latency alert threshold (seconds)")
    p.add_argument("--full-scan-every", type=int, default=0,
                   help="force a full (watermark-ignoring) pass every Nth tick")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="append structured events to this JSONL file")
    p.add_argument("--synthetic", action="store_true",
                   help="monitor a seeded in-memory workload (no workspace)")
    p.add_argument("--objects", type=int, default=6,
                   help="synthetic mode: objects to create")
    p.add_argument("--updates", type=int, default=3,
                   help="synthetic mode: updates per object")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--key-bits", type=int, default=512)
    p.add_argument("--scheme", choices=("rsa", "rsa-per-record", "merkle-batch"),
                   default="rsa",
                   help="synthetic mode: signature scheme of the workload")
    p.add_argument("--tamper", choices=("none", "R1", "R2", "rewrite"),
                   default="none",
                   help="synthetic mode: tamper the store after a baseline "
                        "tick (R1 forges a tail checksum, R2 removes a "
                        "verified tail record, rewrite re-signs a tail with "
                        "the workload's own key — the full-coalition attack "
                        "only --witness can catch)")
    p.add_argument("--witness", action="store_true",
                   help="synthetic mode: anchor the store with a witness "
                        "before any tamper and wire the witness-mismatch "
                        "rule into the monitor")
    p.add_argument("-o", "--output", default=None,
                   help="write the --once snapshot to a file (default: stdout)")

    p = sub.add_parser(
        "bench",
        help="benchmark history: record, report, compare, regression gate",
        description=(
            "Works against a BENCH_HISTORY.jsonl trajectory of benchmark "
            "entries (one JSON object per line, each attributed with git "
            "SHA, timestamp, host, and a workload fingerprint). `record` "
            "runs the small fixed-seed gate workload and appends an entry; "
            "`report` tabulates recent entries; `compare` diffs two "
            "entries by git SHA; `gate` re-runs the gate workload and "
            "exits non-zero when a gated per-record metric regresses "
            "beyond --tolerance against the median of the last --baseline "
            "comparable entries. No workspace needed."
        ),
    )
    p.add_argument("--history", default="BENCH_HISTORY.jsonl", metavar="PATH",
                   help="history file (default: BENCH_HISTORY.jsonl)")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    bp = bench_sub.add_parser(
        "record", help="run the gate workload and append a history entry"
    )
    bp.add_argument("--profile-out", default=None, metavar="PATH",
                    help="also write the phase-attribution profile as JSON")

    bp = bench_sub.add_parser("report", help="tabulate recent history entries")
    bp.add_argument("--last", type=int, default=10,
                    help="entries to show (default: 10)")
    bp.add_argument("--kind", choices=("gate", "full", "all"), default="all",
                    help="restrict to one entry kind")

    bp = bench_sub.add_parser("compare", help="diff two entries by git SHA")
    bp.add_argument("sha_a", help="baseline git SHA (prefix ok)")
    bp.add_argument("sha_b", help="candidate git SHA (prefix ok)")

    bp = bench_sub.add_parser(
        "gate", help="run the gate workload; exit 1 on regression"
    )
    bp.add_argument("--baseline", type=int, default=5,
                    help="history entries to take the median over (default: 5)")
    bp.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative slowdown (default: 0.10)")
    bp.add_argument("--record", action="store_true",
                    help="append this run to the history when it passes")
    bp.add_argument("--profile-out", default=None, metavar="PATH",
                    help="also write the phase-attribution profile as JSON")
    bp.add_argument("--inject-slowdown", type=float, default=None,
                    metavar="FRAC",
                    help="testing: inject a proportional signing slowdown "
                         "(e.g. 0.25) to prove the gate trips; also read "
                         "from $REPRO_BENCH_SLOWDOWN")

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant provenance service (HTTP)",
        description=(
            "Runs the provenance-as-a-service front end: a threaded HTTP "
            "server with one isolated tamper-evident world per tenant "
            "(engine + collector + sharded provenance store + health "
            "monitor), CA-signed API keys, and /healthz wired to the "
            "monitor (non-200 iff any tenant looks tampered). On startup "
            "it prints one JSON line with the bound URL and the admin "
            "token, which `repro client issue-key` turns into per-tenant "
            "keys. No workspace needed — worlds are derived from --seed."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8734, help="0 picks a free port")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for per-tenant key generation")
    p.add_argument("--key-bits", type=int, default=1024)
    p.add_argument("--scheme", choices=("rsa", "rsa-per-record", "merkle-batch"),
                   default="rsa", help="signature scheme for tenant worlds")
    p.add_argument("--shards", type=int, default=4,
                   help="provenance shards per tenant")
    p.add_argument("--store-root", default=None, metavar="DIR",
                   help="directory for per-tenant SQLite shard files "
                        "(default: in-memory)")
    p.add_argument("--retry-after", type=float, default=0.05,
                   help="Retry-After seconds sent with 503 responses")
    p.add_argument("--witness", action="store_true",
                   help="per-tenant witness anchoring: /healthz monitors "
                        "check an anchor log an insider rewrite must "
                        "contradict (persisted beside --store-root shards)")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="append structured events to this JSONL file")
    p.add_argument("--events-max-bytes", type=int, default=None, metavar="N",
                   help="rotate the --events file before it exceeds N bytes")
    p.add_argument("--events-keep", type=int, default=3, metavar="N",
                   help="rotated --events segments to retain (default: 3)")
    p.add_argument("--monitor-interval", type=float, default=0.0, metavar="SEC",
                   help="run a background monitor sweep over every tenant "
                        "each SEC seconds (incremental ticks; health "
                        "transitions and fresh alerts go to the alert "
                        "sinks and the /v1/alerts stream; 0 = off)")
    p.add_argument("--alert-log", default=None, metavar="PATH",
                   help="append background-monitor alerts to this JSONL file")
    p.add_argument("--alert-webhook", default=None, metavar="URL",
                   help="POST background-monitor alerts to this URL "
                        "(best-effort; failures are counted, not fatal)")
    p.add_argument("--profile", action="store_true",
                   help="attach the phase profiler (served at /v1/profile)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the startup line (admin token included)")

    p = sub.add_parser(
        "client",
        help="talk to a running provenance service",
        description=(
            "A thin CLI over the service's HTTP API. The API key comes "
            "from --token or $REPRO_API_KEY; admin actions (issue-key, "
            "revoke-key, recover) need the admin token `repro serve` "
            "printed at startup."
        ),
    )
    p.add_argument("--url", required=True, help="service base URL")
    p.add_argument("--token", default=None,
                   help="API key (default: $REPRO_API_KEY)")
    p.add_argument("--retries", type=int, default=3,
                   help="503 retry budget per request")
    client_sub = p.add_subparsers(dest="client_command", required=True)

    cp = client_sub.add_parser("issue-key", help="mint an API key (admin)")
    cp.add_argument("tenant")
    cp.add_argument("--ttl", type=float, default=None,
                    help="key lifetime in seconds (default: no expiry)")
    cp.add_argument("--scope", action="append", default=None,
                    help="attach a scope (repeatable)")

    cp = client_sub.add_parser("revoke-key", help="revoke an API key (admin)")
    cp.add_argument("key_id")

    cp = client_sub.add_parser("insert", help="insert an object")
    cp.add_argument("object_id")
    cp.add_argument("value", nargs="?", default=None)
    cp.add_argument("--parent", default=None)
    cp.add_argument("--note", default="")

    cp = client_sub.add_parser("update", help="update an object")
    cp.add_argument("object_id")
    cp.add_argument("value")
    cp.add_argument("--note", default="")

    cp = client_sub.add_parser("delete", help="delete an object")
    cp.add_argument("object_id")
    cp.add_argument("--note", default="")

    cp = client_sub.add_parser("aggregate", help="aggregate objects")
    cp.add_argument("output_id")
    cp.add_argument("inputs", nargs="+")
    cp.add_argument("--note", default="")

    cp = client_sub.add_parser(
        "verify", help="verify an object (notarizes a VERIFY audit record)"
    )
    cp.add_argument("object_id")
    cp.add_argument("--workers", type=int, default=None)

    cp = client_sub.add_parser("objects", help="list the tenant's objects")

    cp = client_sub.add_parser("provenance", help="print an object's chain")
    cp.add_argument("object_id")

    cp = client_sub.add_parser("lineage", help="lineage summary of an object")
    cp.add_argument("object_id")

    cp = client_sub.add_parser(
        "healthz", help="service health (exit 1 unless HTTP 200)"
    )
    cp.add_argument("--quick", action="store_true",
                    help="incremental monitor tick instead of a full audit")

    cp = client_sub.add_parser("recover", help="run crash recovery (admin)")

    p = sub.add_parser(
        "dash",
        help="live fleet dashboard for a running service (admin)",
        description=(
            "Renders per-tenant health, request rates, latency quantiles, "
            "verify failures, and watermark lag from a running service's "
            "observability endpoints (/healthz, /v1/metrics). Needs an "
            "admin key — the dashboard sees every tenant. --once prints a "
            "single snapshot and exits (CI smoke); otherwise the view "
            "refreshes every --interval seconds until interrupted."
        ),
    )
    p.add_argument("--url", required=True, help="service base URL")
    p.add_argument("--token", default=None,
                   help="admin API key (default: $REPRO_API_KEY)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes (default: 2)")
    p.add_argument("--ticks", type=int, default=0,
                   help="frames to render, 0 = until interrupted")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="emit the snapshot as JSON instead of a table")

    p = sub.add_parser(
        "alerts",
        help="stream a running service's alert feed (admin)",
        description=(
            "Reads the cursor-paged /v1/alerts stream: monitor alerts, "
            "tamper evidence, and background-monitor health transitions. "
            "`tail` prints one line per event; with --follow it long-polls "
            "for new events until --duration/--max-events. Exits 1 iff any "
            "streamed event carries tamper evidence, so a cron or CI step "
            "can gate on it."
        ),
    )
    alerts_sub = p.add_subparsers(dest="alerts_command", required=True)
    ap = alerts_sub.add_parser("tail", help="print the alert stream")
    ap.add_argument("--url", required=True, help="service base URL")
    ap.add_argument("--token", default=None,
                    help="admin API key (default: $REPRO_API_KEY)")
    ap.add_argument("--since", type=int, default=-1,
                    help="start after this event sequence (default: all)")
    ap.add_argument("--follow", action="store_true",
                    help="keep long-polling for new events")
    ap.add_argument("--wait", type=float, default=5.0,
                    help="long-poll seconds per request with --follow")
    ap.add_argument("--duration", type=float, default=0.0,
                    help="stop following after this many seconds (0 = never)")
    ap.add_argument("--max-events", type=int, default=0,
                    help="stop after printing this many events (0 = no cap)")
    ap.add_argument("--json", action="store_true",
                    help="print events as JSON lines")

    p = sub.add_parser(
        "trust",
        help="multi-participant trust: hand-offs, collusion, witness anchors",
        description=(
            "Tools for the multi-participant threat model: `simulate` runs "
            "the custody/collusion adversary drills against a seeded attack "
            "world and checks every outcome against its expectation; "
            "`witness-tick` countersigns the workspace store's chain tails "
            "into an append-only anchor log; `audit` cross-checks the store "
            "against that log and exits non-zero on any contradiction."
        ),
    )
    trust_sub = p.add_subparsers(dest="trust_command", required=True)
    tp = trust_sub.add_parser(
        "simulate",
        help="run the hand-off / k-collusion / witness adversary drills",
    )
    tp.add_argument("--mode", choices=("hand-off", "k-collusion", "witnessed", "all"),
                    default="all", help="which drill to run (default: all)")
    tp.add_argument("--seed", type=int, default=0x5EC)
    tp.add_argument("--k", type=int, default=2,
                    help="coalition size for the k-collusion drill")
    tp.add_argument("--key-bits", type=int, default=512)
    tp.add_argument("--scheme", choices=("rsa", "rsa-per-record", "merkle-batch"),
                    default="rsa", help="participants' signature scheme")
    tp.add_argument("--json", action="store_true", help="emit the JSON report")
    tp = trust_sub.add_parser(
        "witness-tick",
        help="countersign the workspace store's chain tails into an anchor log",
    )
    tp.add_argument("--log", default="witness-anchors.jsonl", metavar="PATH",
                    help="anchor log file (created if missing)")
    tp.add_argument("--witness-seed", type=int, default=0x517,
                    help="seed the witness key pair is derived from (use the "
                         "same seed to continue a log)")
    tp.add_argument("--key-bits", type=int, default=512)
    tp = trust_sub.add_parser(
        "audit",
        help="cross-check the workspace store against a witness anchor log",
    )
    tp.add_argument("--log", default="witness-anchors.jsonl", metavar="PATH")
    tp.add_argument("--witness-seed", type=int, default=0x517)
    tp.add_argument("--key-bits", type=int, default=512)
    tp.add_argument("--json", action="store_true", help="emit mismatches as JSON")

    p = sub.add_parser(
        "trace",
        help="run an instrumented synthetic verify and print its span tree",
        description=(
            "Runs the same seeded workload as `stats` with tracing enabled "
            "and renders the verification trace as a tree (or JSON)."
        ),
    )
    p.add_argument("--objects", type=int, default=6)
    p.add_argument("--updates", type=int, default=3)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--key-bits", type=int, default=512)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--scheme", choices=("rsa", "rsa-per-record", "merkle-batch"),
                   default="rsa",
                   help="signature scheme of the synthetic workload")
    p.add_argument("--json", action="store_true", help="emit the trace as JSON")

    return parser


def _cmd_init(args) -> int:
    path = args.path or args.workspace
    Workspace.create(
        path,
        ca_name=args.ca_name,
        key_bits=args.key_bits,
        hash_algorithm=args.hash_algorithm,
    )
    print(f"initialised workspace at {path} (CA: {args.ca_name}, "
          f"{args.key_bits}-bit keys)")
    return 0


def _synthetic_workload(args):
    """The seeded in-memory workload behind ``stats`` and ``trace``.

    Deterministic for a given seed: key generation, object ids, and
    values are all derived from ``args.seed``, so two runs produce
    identical metric counts (timing histograms aside).
    """
    from repro.core.system import TamperEvidentDatabase

    db = TamperEvidentDatabase(
        key_bits=args.key_bits,
        seed=args.seed,
        signature_scheme=getattr(args, "scheme", "rsa"),
    )
    participant = db.enroll("stats")
    session = db.session(participant)
    for i in range(args.objects):
        session.insert(f"obj{i}", i)
        for update in range(args.updates):
            session.update(f"obj{i}", i * 1000 + update)
    if args.objects >= 2:
        session.aggregate(["obj0", "obj1"], "agg")
    return db.verify("obj0", workers=args.workers)


def _cmd_stats(args) -> int:
    from repro import obs
    from repro.obs.export import render_text, to_json, to_prometheus

    obs.enable(reset=True)
    try:
        _synthetic_workload(args)
        snap = obs.snapshot()
    finally:
        obs.disable()
    if args.json:
        text = to_json(snap)
    elif args.prometheus:
        text = to_prometheus(snap)
    else:
        text = render_text(snap)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
        print(f"wrote metrics to {args.output}")
    else:
        print(text)
    return 0


def _cmd_chaos(args) -> int:
    import os

    from repro.faults import ChaosConfig, run_chaos

    seed = args.seed
    if args.seed_from_env:
        raw = os.environ.get(args.seed_from_env)
        if raw is None or not raw.strip().lstrip("-").isdigit():
            print(
                f"error: --seed-from-env {args.seed_from_env}: "
                f"not an integer ({raw!r})",
                file=sys.stderr,
            )
            return 2
        seed = int(raw)
    config = ChaosConfig(
        seed=seed,
        ops=args.ops,
        store=args.store,
        sqlite_path=args.sqlite_path,
        torn_rate=args.torn_rate,
        error_rate=args.error_rate,
        flush_crash_rate=args.crash_rate,
        read_error_rate=args.read_error_rate,
        worker_kill_chunks=tuple(args.kill_chunk or ()),
        tamper=args.tamper,
        workers=args.workers,
        key_bits=args.key_bits,
        scheme=args.scheme,
        trust=args.trust,
        custodians=args.custodians,
        coalition_size=args.coalition_size,
    )
    report = run_chaos(config)
    inv = report["invariants"]
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        workload = report["workload"]
        lines = [
            f"chaos seed {seed}: {workload['applied']}/{workload['ops']} ops "
            f"applied, {workload['crashes']} crashes, "
            f"{workload['failed_ops']} ops lost to exhausted retries",
            "faults injected: "
            + (", ".join(
                f"{site}={count}"
                for site, count in report["faults_injected"].items()
            ) or "none"),
            f"recoveries: {len(report['recoveries'])} "
            f"(final sweep clean: {report['final_recovery']['clean']})",
            f"verification: {len(report['verification'])} objects, "
            f"all clean: {all(v['ok'] for v in report['verification'].values())}",
        ]
        tamper = report["tamper"]
        if tamper is not None:
            lines.append(
                f"tamper {tamper['requirement']} on {tamper['target']!r}: "
                f"detected={tamper['detected']} tally={tamper['tally']}"
            )
        trust = report["trust"]
        if trust is not None:
            detail = ", ".join(
                f"{key}={trust[key]}"
                for key in sorted(trust)
                if key not in ("mode", "holds") and not isinstance(trust[key], (dict, list))
            )
            lines.append(
                f"trust {trust['mode']}: holds={trust['holds']} ({detail})"
            )
        lines.append(
            f"invariants: no_false_positives={inv['no_false_positives']} "
            f"no_false_negatives={inv['no_false_negatives']} "
            f"trust_holds={inv['trust_holds']}"
        )
        text = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
        print(f"wrote chaos report to {args.output}")
    else:
        print(text)
    if not inv["ok"]:
        print(f"error: chaos invariants violated (seed {seed})", file=sys.stderr)
        return 1
    return 0


def _monitor_tamper(store, requirement: str) -> None:
    """Simulate an attacker with raw store access (synthetic mode only).

    Goes around the append-time validation on purpose — the paper's
    threat model is exactly an adversary who edits the store directly.
    ``R1`` rewrites a tail record's checksum in place; ``R2`` removes a
    verified tail record.
    """
    import dataclasses

    target = store.object_ids()[0]
    chain = store.records_for(target)
    victim = chain[-1]
    if requirement == "R2":
        store.discard(target, victim.seq_id)
        return
    forged = dataclasses.replace(
        victim, checksum=b"\x00" * max(1, len(victim.checksum))
    )
    conn = getattr(store, "_conn", None)
    if conn is not None:
        # Readers deserialize the payload blob, so the forgery must land
        # there too — the checksum column alone only feeds _tail().
        payload = json.dumps(forged.to_dict(), separators=(",", ":"))
        with conn:
            conn.execute(
                "UPDATE provenance SET checksum = ?, payload = ?"
                " WHERE object_id = ? AND seq_id = ?",
                (forged.checksum, payload, forged.object_id, forged.seq_id),
            )
        store._tail_cache.pop(target, None)
    else:
        store._chains[target][-1] = forged


def _monitor_watch(args, monitor) -> int:
    """Watch mode: one table row per tick, re-rendered in place on a TTY."""
    import time

    from repro.bench.reporting import format_table

    headers = ("tick", "mode", "health", "verified", "skipped", "lag", "alerts")
    rows: List[List[object]] = []
    exit_code = 0
    interactive = sys.stdout.isatty()
    for i in range(max(1, args.ticks)):
        result = monitor.tick()
        rows.append([
            result.tick, result.mode, result.health, result.records_verified,
            result.records_skipped, result.lag_records,
            "; ".join(a.rule for a in result.alerts) or "-",
        ])
        table = format_table(headers, rows)
        if interactive:
            print("\x1b[2J\x1b[H" + table, flush=True)
        else:
            print(table if i == 0 else table.splitlines()[-1], flush=True)
        for alert in result.alerts:
            print(f"  {alert}", flush=True)
        if monitor.has_tamper_alerts:
            exit_code = 1
        if i + 1 < args.ticks:
            time.sleep(max(0.0, args.interval))
    print(f"health: {monitor.health}")
    return exit_code


def _run_monitor(args, store, keystore, witness=None, participant=None) -> int:
    from repro.monitor import ProvenanceMonitor

    monitor = ProvenanceMonitor(
        store,
        keystore,
        workers=args.workers,
        lag_threshold=args.lag_threshold,
        latency_threshold=args.latency_threshold,
        full_scan_every=args.full_scan_every,
        witness_log=witness.log if witness is not None else None,
        witness_verifier=witness.verifier() if witness is not None else None,
    )
    if args.synthetic and args.tamper != "none":
        # Baseline tick first so the watermarks cover the clean history —
        # otherwise an R2 tail removal leaves a shorter-but-valid chain
        # no verifier could flag.
        monitor.tick()
        if args.tamper == "rewrite":
            # Full-coalition attack: the workload's own signer re-signs a
            # tail with a different value — internally consistent, so it
            # passes every signature check and only the witness anchors
            # (made before the rewrite) can contradict it.
            from repro.trust.coalition import rewrite_store_suffix

            target = store.object_ids()[0]
            tail = store.latest(target)
            rewrite_store_suffix(store, target, tail.seq_id, [participant], 31337)
        else:
            _monitor_tamper(store, args.tamper)
    if not args.once:
        return _monitor_watch(args, monitor)
    # A one-shot audit must not trust watermarks it didn't earn: a full
    # tick re-verifies everything (anchors are still validated, so
    # removals behind a persisted watermark regress as usual).
    result = monitor.tick(full=True)
    snapshot = monitor.snapshot()
    snapshot["last_tick"] = result.to_dict()
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
        print(f"wrote health snapshot to {args.output}")
    else:
        print(text)
    return 1 if monitor.has_tamper_alerts else 0


def _cmd_monitor(args) -> int:
    from repro import obs

    obs.enable(reset=True)
    obs.enable_events(path=args.events)
    try:
        if args.synthetic:
            from repro.core.system import TamperEvidentDatabase

            db = TamperEvidentDatabase(
                key_bits=args.key_bits,
                seed=args.seed,
                signature_scheme=getattr(args, "scheme", "rsa"),
            )
            participant = db.enroll("monitor")
            session = db.session(participant)
            for i in range(args.objects):
                session.insert(f"obj{i}", i)
                for update in range(args.updates):
                    session.update(f"obj{i}", i * 1000 + update)
            witness = None
            if getattr(args, "witness", False):
                from repro.trust.witness import Witness

                # Anchored BEFORE any tamper: the drill is that history
                # cannot be rewritten past an existing anchor.
                witness = Witness.generate(
                    key_bits=args.key_bits, seed=args.seed
                )
                witness.tick(db.provenance_store)
            return _run_monitor(
                args, db.provenance_store, db.keystore(),
                witness=witness, participant=participant,
            )
        with Workspace(args.workspace) as ws:
            db = ws.database()
            return _run_monitor(args, db.provenance_store, db.keystore())
    finally:
        obs.disable_events()
        obs.disable()


def _trust_simulate(args) -> int:
    """The adversary drills, each checked against its expectation."""
    from repro.attacks.scenarios import build_world
    from repro.trust.coalition import (
        coalition_rewrite,
        honest_blocker,
        rewrite_store_suffix,
        seeded_coalition,
    )
    from repro.trust.custody import (
        fabricate_handoff,
        reattribute_handoff,
        strip_handoff,
        transfer_custody,
    )
    from repro.trust.witness import Witness, check_anchors

    results: List[dict] = []

    def record(drill, detected, expected, **extra) -> None:
        results.append({
            "drill": drill, "detected": detected, "expected": expected,
            "holds": detected == expected, **extra,
        })

    def verify(world, shipment) -> bool:
        report = shipment.verify_with_ca(world.db.ca.public_key, world.db.ca.name)
        return not report.ok

    modes = (
        ("hand-off", "k-collusion", "witnessed")
        if args.mode == "all" else (args.mode,)
    )
    for mode in modes:
        world = build_world(
            key_bits=args.key_bits, seed=args.seed, scheme=args.scheme
        )
        people = world.participants
        if mode == "hand-off":
            tail = world.db.provenance_store.latest("x")
            outgoing = people[tail.participant_id]
            incoming = next(
                people[pid] for pid in sorted(people)
                if pid != tail.participant_id
            )
            transfer = transfer_custody(
                world.db.provenance_store, "x", outgoing, incoming
            )
            shipment = world.db.ship("x")
            record("honest hand-off", verify(world, shipment), False,
                   custody=f"{outgoing.participant_id} -> {incoming.participant_id}")
            record("forged hand-off",
                   verify(world, fabricate_handoff(shipment, "x", outgoing)), True)
            new_from = next(
                pid for pid in sorted(people)
                if pid not in (transfer.transfer.from_participant,
                               transfer.participant_id)
            )
            record("re-attributed hand-off",
                   verify(world, reattribute_handoff(
                       shipment, "x", transfer.seq_id, incoming, new_from)), True)
            record("stripped hand-off",
                   verify(world, strip_handoff(
                       shipment, "x", transfer.seq_id, incoming)), True)
        elif mode == "k-collusion":
            coalition = seeded_coalition(
                args.seed, list(people.values()), min(args.k, len(people))
            )
            member_ids = sorted(p.participant_id for p in coalition)
            chain = world.db.provenance_store.records_for("x")
            start = next(
                r.seq_id for r in chain
                if r.participant_id in set(member_ids)
            )
            blocker = honest_blocker(world.shipment, "x", start, coalition)
            forged = coalition_rewrite(world.shipment, "x", start, coalition, 31337)
            record("k-collusion suffix rewrite", verify(world, forged),
                   blocker is not None, coalition=member_ids, start_seq=start,
                   honest_blocker=None if blocker is None else blocker.participant_id)
        else:  # witnessed
            from repro.monitor.monitor import ProvenanceMonitor

            store = world.db.provenance_store
            everyone = list(people.values())
            witness = Witness.generate(key_bits=args.key_bits, seed=args.seed)
            witness.tick(store)
            tail = store.latest("x")
            rewrite_store_suffix(store, "x", tail.seq_id, everyone, 986543)
            plain = ProvenanceMonitor(store, world.db.keystore())
            record("full-coalition rewrite vs chain checks",
                   plain.tick().health == "tampered", False,
                   coalition=sorted(people))
            watched = ProvenanceMonitor(
                store,
                world.db.keystore(),
                witness_log=witness.log,
                witness_verifier=witness.verifier(),
            )
            watched_health = watched.tick().health
            mismatches = check_anchors(store, witness.log, witness.verifier())
            record("full-coalition rewrite vs witness anchors",
                   watched_health == "tampered" and bool(mismatches), True,
                   mismatches=[list(m) for m in mismatches])

    ok = all(r["holds"] for r in results)
    if args.json:
        print(json.dumps({"seed": args.seed, "scheme": args.scheme,
                          "results": results, "ok": ok},
                         indent=2, sort_keys=True))
    else:
        for r in results:
            verdict = "detected" if r["detected"] else "undetected"
            expected = "detected" if r["expected"] else "undetected"
            status = "ok" if r["holds"] else "VIOLATION"
            print(f"[{status}] {r['drill']}: {verdict} (expected {expected})")
        print(f"trust drills: {'all hold' if ok else 'VIOLATED'} (seed {args.seed})")
    if not ok:
        print(f"error: trust expectation violated (seed {args.seed})",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trust(args) -> int:
    from repro.trust.witness import AnchorLog, Witness, check_anchors

    if args.trust_command == "simulate":
        return _trust_simulate(args)

    with Workspace(args.workspace) as ws:
        db = ws.database()
        store = db.provenance_store
        witness = Witness.generate(
            key_bits=args.key_bits,
            seed=args.witness_seed,
            log=AnchorLog.load(args.log),
        )
        if args.trust_command == "witness-tick":
            fresh = witness.tick(store)
            witness.log.save(args.log)
            for anchor in fresh:
                print(f"anchored {anchor.object_id!r} seq {anchor.seq_id} "
                      f"(entry {anchor.index})")
            print(f"{len(fresh)} new anchor(s); log {args.log} now has "
                  f"{len(witness.log)} entries")
            return 0
        # audit
        mismatches = check_anchors(store, witness.log, witness.verifier())
        if args.json:
            print(json.dumps({
                "log": args.log, "entries": len(witness.log),
                "mismatches": [list(m) for m in mismatches],
                "ok": not mismatches,
            }, indent=2, sort_keys=True))
        else:
            for object_id, seq_id, reason in mismatches:
                print(f"MISMATCH {object_id!r} seq {seq_id}: {reason}")
            print(f"audited {len(witness.log)} anchor(s): "
                  f"{'store matches the witness' if not mismatches else 'TAMPERED'}")
        if mismatches:
            print("error: store contradicts the witness anchor log",
                  file=sys.stderr)
            return 1
        return 0


def _bench_entry(args, slowdown: float = 0.0):
    """Run the gate workload and shape it into a history entry."""
    from repro.bench import history as bh

    metrics, profile, params = bh.run_gate_workload(slowdown=slowdown)
    fingerprint = bh.workload_fingerprint(params)
    entry = bh.make_entry("gate", fingerprint, metrics, profile=profile)
    return entry, profile


def _bench_write_profile(path: Optional[str], entry, profile) -> None:
    if not path:
        return
    payload = {"meta": entry["meta"], "profile": profile}
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"wrote phase profile to {path}")


def _fmt_metric(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return "-" if value is None else str(value)


def _cmd_bench(args) -> int:
    from repro.bench import history as bh
    from repro.bench.reporting import format_table

    if args.bench_command == "record":
        entry, profile = _bench_entry(args)
        bh.append_entry(args.history, entry)
        _bench_write_profile(args.profile_out, entry, profile)
        print(f"recorded gate entry {entry['fingerprint']} "
              f"@ {entry['meta']['git_sha'][:12]} -> {args.history}")
        return 0

    if args.bench_command == "report":
        entries = bh.read_history(args.history)
        if args.kind != "all":
            entries = [e for e in entries if e.get("kind") == args.kind]
        entries = entries[-max(1, args.last):]
        if not entries:
            print(f"no entries in {args.history}")
            return 0
        headers = ("sha", "utc", "kind", "fingerprint",
                   "sign.rsa s/rec", "sign.merkle s/rec", "verify s/rec")
        rows = []
        for e in entries:
            meta, metrics = e.get("meta", {}), e.get("metrics", {})
            rows.append([
                str(meta.get("git_sha", "?"))[:9],
                str(meta.get("timestamp_utc", "?")),
                e.get("kind", "?"),
                e.get("fingerprint", "?"),
                _fmt_metric(metrics.get("sign.rsa.per_record_s")),
                _fmt_metric(metrics.get("sign.merkle.per_record_s")),
                _fmt_metric(metrics.get("verify.per_record_s")),
            ])
        print(format_table(headers, rows))
        return 0

    if args.bench_command == "compare":
        entries = bh.read_history(args.history)
        entry_a = bh.find_by_sha(entries, args.sha_a)
        entry_b = bh.find_by_sha(entries, args.sha_b)
        for sha, entry in ((args.sha_a, entry_a), (args.sha_b, entry_b)):
            if entry is None:
                print(f"error: no entry for SHA {sha!r} in {args.history}",
                      file=sys.stderr)
                return 2
        if entry_a.get("fingerprint") != entry_b.get("fingerprint"):
            print("warning: entries have different workload fingerprints — "
                  "wall-clock comparison is not meaningful", file=sys.stderr)
        rows = [
            [name, _fmt_metric(va), _fmt_metric(vb),
             "-" if ratio is None else f"{ratio:.3f}x"]
            for name, va, vb, ratio in bh.compare_entries(entry_a, entry_b)
        ]
        print(format_table(
            ("metric", args.sha_a[:9], args.sha_b[:9], "b/a"), rows
        ))
        return 0

    # gate
    import os

    slowdown = args.inject_slowdown
    if slowdown is None:
        raw = os.environ.get("REPRO_BENCH_SLOWDOWN", "").strip()
        slowdown = float(raw) if raw else 0.0
    if slowdown:
        print(f"note: injecting a {slowdown:.0%} signing-phase slowdown")
    entry, profile = _bench_entry(args, slowdown=slowdown)
    _bench_write_profile(args.profile_out, entry, profile)
    history = bh.read_history(args.history)
    regressions, compared = bh.gate_check(
        entry, history, baseline=args.baseline, tolerance=args.tolerance
    )
    if regressions:
        # One retry absorbs transient machine noise: a real regression
        # (the code got slower) reproduces; a scheduler hiccup does not.
        # Take the per-metric best of both runs for the gated metrics.
        print("gate: possible regression — re-running once to confirm")
        retry, _ = _bench_entry(args, slowdown=slowdown)
        for name in bh.GATE_METRICS:
            first = entry["metrics"].get(name)
            second = retry["metrics"].get(name)
            if isinstance(first, (int, float)) and isinstance(second, (int, float)):
                entry["metrics"][name] = min(first, second)
        regressions, compared = bh.gate_check(
            entry, history, baseline=args.baseline, tolerance=args.tolerance
        )
    for name in sorted(bh.GATE_METRICS):
        print(f"  {name:<28} {_fmt_metric(entry['metrics'].get(name))} s")
    if compared == 0:
        print(f"gate: no comparable baseline in {args.history} "
              f"(fingerprint {entry['fingerprint']}) — pass (bootstrap)")
    elif not regressions:
        print(f"gate: pass — within {args.tolerance:.0%} of the median of "
              f"{compared} baseline entr{'y' if compared == 1 else 'ies'}")
    else:
        for reg in regressions:
            print(
                f"gate: REGRESSION {reg['metric']}: "
                f"{reg['current']:.6g}s vs median {reg['baseline_median']:.6g}s "
                f"({reg['ratio']:.3f}x > {1 + reg['tolerance']:.2f}x allowed)",
                file=sys.stderr,
            )
        return 1
    if args.record:
        bh.append_entry(args.history, entry)
        print(f"recorded gate entry -> {args.history}")
    return 0


def _cmd_serve(args) -> int:
    from repro import obs
    from repro.obs.plane import FileAlertSink, LogAlertSink, WebhookAlertSink
    from repro.service import ServiceConfig
    from repro.service.http import ProvenanceHTTPServer

    obs.enable(reset=True)
    # Always keep a ring buffer: /v1/alerts streams from it, and losing
    # the last 4096 events to save a few MB would blind the fleet view.
    obs.enable_events(
        ring=4096,
        path=args.events,
        max_bytes=args.events_max_bytes,
        keep=args.events_keep,
    )
    if args.profile:
        obs.enable_profile(reset=True)
    sinks = []
    if args.monitor_interval > 0 and not args.quiet:
        sinks.append(LogAlertSink())
    if args.alert_log:
        sinks.append(FileAlertSink(args.alert_log))
    if args.alert_webhook:
        sinks.append(WebhookAlertSink(args.alert_webhook))
    config = ServiceConfig(
        seed=args.seed,
        key_bits=args.key_bits,
        signature_scheme=args.scheme,
        shards=args.shards,
        store_root=args.store_root,
        witness=args.witness,
        monitor_interval=args.monitor_interval,
        alert_sinks=tuple(sinks),
    )
    server = ProvenanceHTTPServer(
        config=config, host=args.host, port=args.port,
        retry_after=args.retry_after,
    )
    if not args.quiet:
        print(json.dumps({
            "url": server.base_url,
            "admin_token": server.service.admin_token,
            "scheme": config.resolved_scheme(),
            "shards": config.shards,
            "store_root": config.store_root,
            "monitor_interval": config.monitor_interval,
        }), flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.close()
        obs.disable_events()
        if args.profile:
            obs.disable_profile()
        obs.disable()
    return 0


def _cmd_client(args) -> int:
    import os

    from repro.service.client import ServiceClient, ServiceHTTPError

    token = args.token or os.environ.get("REPRO_API_KEY")
    client = ServiceClient(args.url, token=token, retries=args.retries)
    command = args.client_command
    try:
        if command == "healthz":
            response = client.healthz(quick=args.quick)
            print(json.dumps(response.json, indent=2, sort_keys=True))
            return 0 if response.ok else 1
        if command == "issue-key":
            result = client.issue_key(
                args.tenant, ttl=args.ttl, scopes=tuple(args.scope or ()),
            )
        elif command == "revoke-key":
            result = client.revoke_key(args.key_id)
        elif command == "insert":
            result = client.insert(
                args.object_id, parse_value(args.value),
                parent=args.parent, note=args.note,
            )
        elif command == "update":
            result = client.update(
                args.object_id, parse_value(args.value), note=args.note
            )
        elif command == "delete":
            result = client.delete(args.object_id, note=args.note)
        elif command == "aggregate":
            result = client.aggregate(args.inputs, args.output_id, note=args.note)
        elif command == "verify":
            result = client.verify(args.object_id, workers=args.workers)
        elif command == "objects":
            result = client.objects()
        elif command == "provenance":
            result = client.provenance(args.object_id)
        elif command == "lineage":
            result = client.lineage(args.object_id)
        elif command == "recover":
            result = client.recover()
        else:
            raise AssertionError(f"unhandled client command {command!r}")
    except ServiceHTTPError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    if command == "verify":
        return 0 if result.get("ok") else 1
    return 0


def _metric_labels(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a snapshot key ``name{k=v,...}`` into (name, labels).

    Best-effort for display: a label *value* containing ``,`` or ``=``
    (possible — tenant ids are free-form) parses raggedly, which mangles
    at most that row of the dashboard, never the service.
    """
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        k, _, v = part.partition("=")
        labels[k] = v
    return name, labels


def _dash_snapshot(client) -> Dict[str, object]:
    """One dashboard frame: healthz breakdown + parsed metric snapshot."""
    health = client.healthz(quick=True).json
    metrics = client.metrics_json().get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    requests_total = 0
    per_tenant: Dict[str, Dict[str, object]] = {}

    def tenant_row(tenant: str) -> Dict[str, object]:
        return per_tenant.setdefault(
            tenant,
            {"health": "-", "records": 0, "requests": 0,
             "verify_failures": 0, "lag": 0, "alerts": []},
        )

    for tenant, breakdown in (health.get("tenants") or {}).items():
        row = tenant_row(tenant)
        row["health"] = breakdown.get("health", "-")
        row["records"] = breakdown.get("records", 0)
        row["alerts"] = breakdown.get("alerts", [])
    for key, value in counters.items():
        name, labels = _metric_labels(key)
        if name == "service.http.requests":
            requests_total += int(value)
        elif name == "service.tenant.requests":
            tenant_row(labels.get("tenant", "?"))["requests"] = int(value)
        elif name == "service.verify.failures":
            row = tenant_row(labels.get("tenant", "?"))
            row["verify_failures"] = int(row["verify_failures"]) + int(value)
    for key, value in gauges.items():
        name, labels = _metric_labels(key)
        if name == "service.tenant.lag":
            tenant_row(labels.get("tenant", "?"))["lag"] = value

    # Latency quantiles: worst endpoint wins (quantiles don't merge, and
    # an operator scanning a fleet wants the conservative number).
    p50 = p99 = 0.0
    for key, summary in histograms.items():
        name, _ = _metric_labels(key)
        if name == "service.http.seconds" and summary.get("count"):
            p50 = max(p50, float(summary.get("p50", 0.0)))
            p99 = max(p99, float(summary.get("p99", 0.0)))

    return {
        "health": health.get("health", "?"),
        "requests_total": requests_total,
        "p50_s": p50,
        "p99_s": p99,
        "tenants": per_tenant,
    }


def _cmd_dash(args) -> int:
    import os
    import time

    from repro.bench.reporting import format_table
    from repro.service.client import ServiceClient, ServiceHTTPError

    token = args.token or os.environ.get("REPRO_API_KEY")
    client = ServiceClient(args.url, token=token)
    frames = 1 if args.once else (args.ticks if args.ticks > 0 else None)
    interactive = sys.stdout.isatty() and not args.once
    previous: Optional[Tuple[float, int, Dict[str, int]]] = None
    rendered = 0
    while True:
        try:
            snap = _dash_snapshot(client)
        except ServiceHTTPError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {args.url}: {exc}", file=sys.stderr)
            return 1
        now = time.monotonic()
        tenant_reqs = {
            tenant: int(row["requests"])
            for tenant, row in snap["tenants"].items()
        }
        rps = None
        tenant_rps: Dict[str, float] = {}
        if previous is not None:
            dt = max(now - previous[0], 1e-6)
            rps = (snap["requests_total"] - previous[1]) / dt
            tenant_rps = {
                tenant: (count - previous[2].get(tenant, 0)) / dt
                for tenant, count in tenant_reqs.items()
            }
        previous = (now, snap["requests_total"], tenant_reqs)
        if args.json:
            snap_out = dict(snap)
            snap_out["rps"] = rps
            text = json.dumps(snap_out, indent=2, sort_keys=True, default=str)
        else:
            header = (
                f"service {args.url}  health={snap['health']}  "
                f"requests={snap['requests_total']}"
                + (f"  req/s={rps:.1f}" if rps is not None else "")
                + f"  p50={snap['p50_s'] * 1e3:.1f}ms"
                + f"  p99={snap['p99_s'] * 1e3:.1f}ms"
            )
            rows = []
            for tenant in sorted(snap["tenants"]):
                row = snap["tenants"][tenant]
                rate = tenant_rps.get(tenant)
                rows.append([
                    tenant, row["health"], row["records"], row["requests"],
                    "-" if rate is None else f"{rate:.1f}",
                    row["verify_failures"], row["lag"],
                    "; ".join(row["alerts"]) or "-",
                ])
            table = format_table(
                ("tenant", "health", "records", "requests", "req/s",
                 "verify-fail", "lag", "alerts"),
                rows or [["-"] * 8],
            )
            text = header + "\n" + table
        if interactive:
            print("\x1b[2J\x1b[H" + text, flush=True)
        else:
            print(text, flush=True)
        rendered += 1
        if frames is not None and rendered >= frames:
            return 0
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            return 0


def _format_alert_event(event: Dict[str, object]) -> str:
    fields = event.get("fields", {}) or {}
    tenant = fields.get("tenant") or fields.get("monitor") or "-"
    kind = event.get("kind", "?")
    if kind == "service.health":
        detail = f"health {fields.get('previous')} -> {fields.get('health')}"
    else:
        detail = (
            f"[{fields.get('severity', '?')}] {fields.get('rule', '?')}: "
            f"{fields.get('message', '')}"
        )
        if fields.get("tampering"):
            detail += "  TAMPERING"
    return f"#{event.get('seq')} {kind} tenant={tenant} {detail}"


def _cmd_alerts(args) -> int:
    import os
    import time

    from repro.service.client import ServiceClient, ServiceHTTPError

    token = args.token or os.environ.get("REPRO_API_KEY")
    client = ServiceClient(args.url, token=token)
    cursor = args.since
    tampering = False
    shown = 0
    deadline = (
        time.monotonic() + args.duration if args.duration > 0 else None
    )
    while True:
        try:
            page = client.alerts(
                since=cursor, wait=args.wait if args.follow else 0.0
            )
        except ServiceHTTPError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: {args.url}: {exc}", file=sys.stderr)
            return 2
        cursor = page.get("cursor", cursor)
        for event in page.get("events", []):
            if args.json:
                print(json.dumps(event, sort_keys=True, default=str), flush=True)
            else:
                print(_format_alert_event(event), flush=True)
            if (event.get("fields") or {}).get("tampering"):
                tampering = True
            shown += 1
            if args.max_events and shown >= args.max_events:
                return 1 if tampering else 0
        if not args.follow:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
    return 1 if tampering else 0


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.obs.tracing import render_trace, trace_to_json

    obs.enable(reset=True)
    try:
        _synthetic_workload(args)
        root = obs.OBS.tracer.last_trace()
    finally:
        obs.disable()
    if root is None:
        print("error: no trace was recorded", file=sys.stderr)
        return 1
    print(trace_to_json(root) if args.json else render_trace(root))
    return 0


def _cmd_verify_shipment(args, workspace_dir: str) -> int:
    with open(args.shipment_file) as f:
        shipment = Shipment.from_json(f.read())
    if args.ca_key:
        with open(args.ca_key) as f:
            data = json.loads(f.read())
        public_key = public_key_from_dict(data["public_key"])
        ca_name = data["ca_name"]
    else:
        with Workspace(workspace_dir) as ws:
            public_key = ws.ca.public_key
            ca_name = ws.ca.name
    report = shipment.verify_with_ca(public_key, ca_name)
    print(render_report(report))
    return 0 if report.ok else 1


def _run_shell(sql, db, root_id: str, input_stream=None) -> int:
    """The interactive loop behind ``repro shell``.

    Dot-commands: ``.tables``, ``.verify``, ``.help``, ``.exit``.
    Reads from ``input_stream`` (stdin by default) so tests can drive it.
    """
    stream = input_stream if input_stream is not None else sys.stdin
    interactive = stream is sys.stdin and sys.stdin.isatty()
    if interactive:
        print("repro SQL shell — .help for commands, .exit to leave")
    while True:
        if interactive:
            print("sql> ", end="", flush=True)
        line = stream.readline()
        if not line:
            return 0
        line = line.strip()
        if not line:
            continue
        if line in (".exit", ".quit"):
            return 0
        if line == ".help":
            print(".tables  list tables\n.verify  verify the database root\n"
                  ".exit    leave the shell\nanything else is executed as SQL")
            continue
        if line == ".tables":
            for table in sql.view.tables():
                print(table)
            continue
        if line == ".verify":
            print(render_report(db.verify(root_id)))
            continue
        try:
            print(sql.execute(line).render())
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "version":
        from repro import __version__

        print(__version__)
        return 0
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "init":
        return _cmd_init(args)
    if args.command == "verify-shipment":
        return _cmd_verify_shipment(args, args.workspace)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "trust":
        return _cmd_trust(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "dash":
        return _cmd_dash(args)
    if args.command == "alerts":
        return _cmd_alerts(args)

    with Workspace(args.workspace) as ws:
        if args.command == "enroll":
            ws.enroll(args.participant)
            print(f"enrolled {args.participant!r}")
            return 0

        if args.command == "participants":
            for participant_id in ws.participants():
                print(participant_id)
            return 0

        if args.command == "export-ca-key":
            payload = {
                "ca_name": ws.ca.name,
                "public_key": public_key_to_dict(ws.ca.public_key),
            }
            with open(args.output, "w") as f:
                json.dump(payload, f)
            print(f"wrote CA public key to {args.output}")
            return 0

        db = ws.database()

        if args.command in ("insert", "update", "delete", "aggregate"):
            session = db.session(ws.participant(args.participant))
            if args.command == "insert":
                session.insert(
                    args.object_id, parse_value(args.value), args.parent,
                    note=args.note,
                )
            elif args.command == "update":
                session.update(args.object_id, parse_value(args.value), note=args.note)
            elif args.command == "delete":
                session.delete(args.object_id, note=args.note)
            else:
                session.aggregate(args.inputs, args.output_id, note=args.note)
            print("ok")
            return 0

        if args.command == "shell":
            from repro.model.relational import RelationalView
            from repro.sql.executor import SQLExecutor

            session = db.session(ws.participant(args.participant))
            sql = SQLExecutor(RelationalView(session, root_id=args.root))
            return _run_shell(sql, db, args.root)

        if args.command == "sql":
            from repro.model.relational import RelationalView
            from repro.sql.executor import SQLExecutor

            is_read = args.statement.strip().lower().startswith("select")
            if is_read and args.participant is None:
                if args.root not in db.store:
                    print(f"error: no database root {args.root!r}", file=sys.stderr)
                    return 2
                executor = db.engine
            else:
                if args.participant is None:
                    print("error: writes need --as <participant>", file=sys.stderr)
                    return 2
                executor = db.session(ws.participant(args.participant))
            view = RelationalView(executor, root_id=args.root)
            result = SQLExecutor(view).execute(args.statement, note=args.note)
            print(result.render())
            return 0

        if args.command == "objects":
            for root in db.store.roots():
                print(f"{root}  ({db.store.subtree_size(root)} nodes)")
            return 0

        if args.command == "show":
            inspector = ChainInspector(db.provenance_of(args.object_id))
            print(inspector.render_chain(args.object_id))
            return 0

        if args.command == "audit":
            report = db.verify(args.object_id)
            print(audit_trail(db.dag(), args.object_id, report))
            return 0 if report.ok else 1

        if args.command == "lineage":
            print(lineage_summary(db.dag(), args.object_id))
            return 0

        if args.command == "history":
            from repro.query.history import value_history

            for entry in value_history(db.provenance_of(args.object_id), args.object_id):
                print(entry)
            return 0

        if args.command == "anchor":
            service = ws.anchor_service()
            receipt = service.anchor_latest(db, args.object_id)
            ws.save_anchor(receipt)
            print(
                f"anchored {args.object_id!r} at seq {receipt.seq_id} "
                f"(anchor counter {receipt.counter})"
            )
            return 0

        if args.command == "verify":
            if args.anchors:
                from repro.core.anchor import verify_with_anchors

                service = ws.anchor_service()
                report = verify_with_anchors(
                    db.ship(args.object_id),
                    db.keystore(),
                    ws.anchor_receipts(),
                    service.verifier(),
                )
            else:
                report = db.verify(args.object_id)
            print(render_report(report))
            return 0 if report.ok else 1

        if args.command == "lint":
            from repro.audit.lint import lint_store

            report = lint_store(db.provenance_store)
            print(report.summary())
            for issue in report.issues:
                print(f"  - {issue}")
            return 0 if report.ok else 1

        if args.command == "dot":
            from repro.audit.dot import to_dot

            text = to_dot(db.dag(), args.object_id, include_notes=args.notes)
            if args.output:
                with open(args.output, "w") as f:
                    f.write(text)
                print(f"wrote DOT graph to {args.output}")
            else:
                print(text)
            return 0

        if args.command == "ship":
            shipment = db.ship(args.object_id)
            with open(args.output, "w") as f:
                f.write(shipment.to_json())
            print(
                f"shipped {args.object_id!r}: {len(shipment)} records, "
                f"{shipment.snapshot.node_count} nodes -> {args.output}"
            )
            return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
