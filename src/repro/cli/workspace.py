"""On-disk workspaces for the CLI.

A workspace directory holds everything a provenance deployment needs:

    workspace/
      config.json          key size, hash algorithm
      ca.json              the CA, INCLUDING its private key
      participants/
        <id>.json          each participant's private key + certificate
      backend.db           SQLite back-end database
      provenance.db        SQLite provenance database

Private keys are stored unencrypted — this is a single-user research
tool, not an HSM; treat the directory like an SSH key directory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

from repro.backend.sqlite import SQLiteStore
from repro.core.system import TamperEvidentDatabase
from repro.crypto.keys import private_key_from_dict, private_key_to_dict
from repro.crypto.pki import Certificate, CertificateAuthority, Participant
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import RSASignatureScheme
from repro.exceptions import ReproError
from repro.provenance.store import SQLiteProvenanceStore

__all__ = ["Workspace", "WorkspaceError"]


class WorkspaceError(ReproError):
    """Raised for missing, malformed, or already-existing workspaces."""


class Workspace:
    """An opened workspace; owns the SQLite connections until closed."""

    def __init__(self, path: Path):
        self.path = Path(path)
        config_file = self.path / "config.json"
        ca_file = self.path / "ca.json"
        if not config_file.exists() or not ca_file.exists():
            raise WorkspaceError(
                f"{self.path} is not a workspace (run 'repro init' first)"
            )
        self.config = json.loads(config_file.read_text())
        self.ca = CertificateAuthority.from_dict(json.loads(ca_file.read_text()))
        self._store: Optional[SQLiteStore] = None
        self._provenance: Optional[SQLiteProvenanceStore] = None
        self._db: Optional[TamperEvidentDatabase] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        ca_name: str = "repro-root-ca",
        key_bits: int = 1024,
        hash_algorithm: str = "sha1",
    ) -> "Workspace":
        """Initialise a new workspace directory.

        Raises:
            WorkspaceError: If the directory already is a workspace.
        """
        path = Path(path)
        if (path / "config.json").exists():
            raise WorkspaceError(f"{path} is already a workspace")
        path.mkdir(parents=True, exist_ok=True)
        (path / "participants").mkdir(exist_ok=True)
        ca = CertificateAuthority(
            name=ca_name, key_bits=key_bits, hash_algorithm=hash_algorithm
        )
        (path / "ca.json").write_text(json.dumps(ca.to_dict()))
        (path / "config.json").write_text(
            json.dumps({"key_bits": key_bits, "hash_algorithm": hash_algorithm})
        )
        return cls(path)

    def save_ca(self) -> None:
        """Persist the CA state (serial counter, issued certificates)."""
        (self.path / "ca.json").write_text(json.dumps(self.ca.to_dict()))

    def close(self) -> None:
        """Close the SQLite connections."""
        if self._store is not None:
            self._store.close()
            self._store = None
        if self._provenance is not None:
            self._provenance.close()
            self._provenance = None
        self._db = None

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # database
    # ------------------------------------------------------------------

    def database(self) -> TamperEvidentDatabase:
        """The workspace's tamper-evident database (opened lazily)."""
        if self._db is None:
            self._store = SQLiteStore(str(self.path / "backend.db"))
            self._provenance = SQLiteProvenanceStore(str(self.path / "provenance.db"))
            self._db = TamperEvidentDatabase(
                store=self._store,
                provenance_store=self._provenance,
                ca=self.ca,
                hash_algorithm=self.config["hash_algorithm"],
                key_bits=self.config["key_bits"],
            )
        return self._db

    # ------------------------------------------------------------------
    # participants
    # ------------------------------------------------------------------

    def _participant_file(self, participant_id: str) -> Path:
        safe = participant_id.replace("/", "_")
        return self.path / "participants" / f"{safe}.json"

    def enroll(self, participant_id: str) -> Participant:
        """Enroll a participant and persist their key material.

        Raises:
            WorkspaceError: If the participant already exists.
        """
        target = self._participant_file(participant_id)
        if target.exists():
            raise WorkspaceError(f"participant {participant_id!r} already enrolled")
        keypair = generate_keypair(self.config["key_bits"])
        scheme = RSASignatureScheme(keypair.private, self.config["hash_algorithm"])
        cert = self.ca.issue(participant_id, keypair.public)
        self.save_ca()
        target.write_text(
            json.dumps(
                {
                    "participant_id": participant_id,
                    "private_key": private_key_to_dict(keypair.private),
                    "certificate": cert.to_dict(),
                }
            )
        )
        return Participant(participant_id, scheme, cert)

    def participant(self, participant_id: str) -> Participant:
        """Load a previously enrolled participant.

        Raises:
            WorkspaceError: If the participant is unknown or the file is
                malformed.
        """
        target = self._participant_file(participant_id)
        if not target.exists():
            known = ", ".join(self.participants()) or "(none)"
            raise WorkspaceError(
                f"unknown participant {participant_id!r}; enrolled: {known}"
            )
        try:
            data = json.loads(target.read_text())
            private = private_key_from_dict(data["private_key"])
            scheme = RSASignatureScheme(private, self.config["hash_algorithm"])
            cert = Certificate.from_dict(data["certificate"])
            return Participant(str(data["participant_id"]), scheme, cert)
        except (KeyError, ValueError, ReproError) as exc:
            raise WorkspaceError(
                f"corrupt participant file {target}: {exc}"
            ) from exc

    def participants(self) -> List[str]:
        """Ids of all enrolled participants, sorted."""
        directory = self.path / "participants"
        return sorted(p.stem for p in directory.glob("*.json"))

    # ------------------------------------------------------------------
    # anchoring (repro.core.anchor)
    # ------------------------------------------------------------------

    def anchor_service(self):
        """The workspace's anchor service (key created on first use).

        In production the anchor service would run *outside* the
        participants' control; a workspace-local one still demonstrates
        the mechanics and protects against later tampering of this store.
        """
        from repro.core.anchor import AnchorService
        from repro.crypto.signatures import RSASignatureScheme

        key_file = self.path / "anchor-service.json"
        if key_file.exists():
            private = private_key_from_dict(json.loads(key_file.read_text()))
        else:
            private = generate_keypair(self.config["key_bits"]).private
            key_file.write_text(json.dumps(private_key_to_dict(private)))
        service = AnchorService(
            RSASignatureScheme(private, self.config["hash_algorithm"])
        )
        for receipt in self.anchor_receipts():
            service._log.append(receipt)
            service._counter = max(service._counter, receipt.counter)
        return service

    def anchor_receipts(self) -> List:
        """All persisted anchor receipts."""
        from repro.core.anchor import AnchorReceipt

        log_file = self.path / "anchors.json"
        if not log_file.exists():
            return []
        return [
            AnchorReceipt.from_dict(entry)
            for entry in json.loads(log_file.read_text())
        ]

    def save_anchor(self, receipt) -> None:
        """Append one receipt to the persistent anchor log."""
        log_file = self.path / "anchors.json"
        entries = (
            json.loads(log_file.read_text()) if log_file.exists() else []
        )
        entries.append(receipt.to_dict())
        log_file.write_text(json.dumps(entries))
