"""Alert rules for the provenance health monitor.

Each :class:`AlertRule` inspects one :class:`TickContext` — the distilled
outcome of a monitor tick — and emits zero or more :class:`Alert`\\ s.
Rules are deliberately *stateless*: everything they need is in the
context, so the same tick always produces the same alerts (the event
stream's determinism guarantee extends to alerts).

The default rule set covers the four conditions the monitor exists to
surface:

==========================  ========  ========================================
rule                        severity  fires when
==========================  ========  ========================================
``tamper``                  critical  accumulated verification failures exist
                                      (one alert per requirement code R1–R8,
                                      PKI, STRUCT, with its count)
``watermark-regression``    critical  a chain is shorter than its watermark or
                                      the anchor record changed — the signature
                                      of records being *removed* behind the
                                      monitor's back (R2-suspect); legitimate
                                      crash recovery rewinds the watermark
                                      first, so it never trips this
``watermark-lag``           warning   records past the watermarks exceed a
                                      threshold after the tick (the monitor
                                      cannot keep up, or chains keep failing)
``witness-mismatch``        critical  the store contradicts a witness anchor
                                      (anchored record missing or rewritten, or
                                      the anchor log itself damaged) — the one
                                      signal that survives a *full-coalition*
                                      suffix rewrite; inert until the monitor
                                      is given a witness log and verifier
``store-latency``           warning   the ``store.txn.seconds`` p99 exceeds a
                                      threshold (requires metrics enabled)
``degraded-chunks``         warning   parallel verification degraded chunks to
                                      serial re-verification this tick (worker
                                      deaths — see ``verify.degraded_chunks``)
``phase-latency-slo``       warning   a profiled phase's mean seconds per call
                                      exceeds its configured SLO (requires a
                                      :func:`repro.obs.enable_profile` profiler
                                      and explicit per-phase SLOs)
==========================  ========  ========================================

``tamper``, ``watermark-regression`` and ``witness-mismatch`` alerts
carry ``tampering=True``; they trip the ``tampered`` health state and
make ``repro monitor --once`` exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Alert",
    "AlertRule",
    "TickContext",
    "TamperRule",
    "WatermarkRegressionRule",
    "WitnessMismatchRule",
    "WatermarkLagRule",
    "StoreLatencyRule",
    "DegradedChunksRule",
    "PhaseLatencySLORule",
    "default_rules",
]


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    rule: str
    severity: str  # "critical" | "warning"
    message: str
    #: True for alerts that are *evidence of tampering* (they trip the
    #: ``tampered`` health state and the CLI's non-zero exit).
    tampering: bool = False
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "tampering": self.tampering,
            "fields": dict(self.fields),
        }

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.message}"


@dataclass(frozen=True)
class TickContext:
    """What one monitor tick exposes to the alert rules."""

    tick: int
    #: Accumulated per-requirement failure counts (monitor-wide, not just
    #: this tick) — byte-identical to a full verify's ``failure_tally()``.
    tally: Dict[str, int]
    #: ``(object_id, reason)`` pairs for watermark anchors that no longer
    #: match the chain (chain shorter than the watermark, anchor record
    #: changed, or chain gone entirely).
    regressions: Tuple[Tuple[str, str], ...]
    #: Records past all watermarks *after* this tick (0 when every chain
    #: verified clean and the watermarks advanced to the tails).
    lag_records: int
    #: ``verify.degraded_chunks`` counter growth since the previous tick.
    degraded_chunks: int
    #: p99 of the ``store.txn.seconds`` histogram, when metrics are on.
    store_p99: Optional[float]
    #: Mean seconds per call per profiled phase (empty when no profiler
    #: is attached) — what the ``phase-latency-slo`` rule consumes.
    phase_latencies: Dict[str, float] = field(default_factory=dict)
    #: ``(object_id, seq_id, reason)`` contradictions between the store
    #: and the witness anchor log (see
    #: :func:`repro.trust.witness.check_anchors`); always empty when the
    #: monitor has no witness configured.
    witness_mismatches: Tuple[Tuple[str, int, str], ...] = ()


class AlertRule:
    """Base class: evaluate one context into zero or more alerts."""

    name = "rule"

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        raise NotImplementedError


class TamperRule(AlertRule):
    """Accumulated verification failures, one alert per requirement."""

    name = "tamper"

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        alerts = []
        for code, count in sorted(ctx.tally.items()):
            alerts.append(Alert(
                rule=self.name,
                severity="critical",
                message=f"verification failures detected by {code} (x{count})",
                tampering=True,
                fields={"requirement": code, "count": count},
            ))
        return alerts


class WatermarkRegressionRule(AlertRule):
    """A chain regressed behind its verified watermark (R2-suspect)."""

    name = "watermark-regression"

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        return [
            Alert(
                rule=self.name,
                severity="critical",
                message=(
                    f"chain of {object_id!r} no longer matches its verified "
                    f"watermark ({reason}) — records were removed or replaced "
                    "without a recovery rewind"
                ),
                tampering=True,
                fields={"object_id": object_id, "reason": reason},
            )
            for object_id, reason in ctx.regressions
        ]


class WitnessMismatchRule(AlertRule):
    """The store contradicts an external witness anchor.

    The checksum chain alone concedes one attack: a coalition owning an
    *entire* chain suffix can re-sign it into an internally consistent
    forgery no signature check flags.  A witness anchor is outside the
    coalition's keys, so the contradiction between the anchored tail and
    the rewritten store is the surviving tamper signal — hence
    ``tampering=True`` and critical severity.
    """

    name = "witness-mismatch"

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        return [
            Alert(
                rule=self.name,
                severity="critical",
                message=(
                    f"store state of {object_id!r} contradicts the witness "
                    f"anchor log ({reason})"
                ),
                tampering=True,
                fields={"object_id": object_id, "seq_id": seq_id, "reason": reason},
            )
            for object_id, seq_id, reason in ctx.witness_mismatches
        ]


class WatermarkLagRule(AlertRule):
    """Unverified backlog past the watermarks exceeds a threshold."""

    name = "watermark-lag"

    def __init__(self, threshold: int = 64):
        self.threshold = max(0, int(threshold))

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        if ctx.lag_records <= self.threshold:
            return []
        return [Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"{ctx.lag_records} records remain unverified past the "
                f"watermarks (threshold {self.threshold})"
            ),
            fields={"lag_records": ctx.lag_records, "threshold": self.threshold},
        )]


class StoreLatencyRule(AlertRule):
    """Store transaction p99 latency breached a threshold."""

    name = "store-latency"

    def __init__(self, threshold_seconds: float = 0.5):
        self.threshold_seconds = float(threshold_seconds)

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        if ctx.store_p99 is None or ctx.store_p99 <= self.threshold_seconds:
            return []
        return [Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"store.txn.seconds p99 is {ctx.store_p99:.4f}s "
                f"(threshold {self.threshold_seconds:.4f}s)"
            ),
            fields={"p99": ctx.store_p99, "threshold": self.threshold_seconds},
        )]


class DegradedChunksRule(AlertRule):
    """Parallel verification lost workers and degraded chunks to serial."""

    name = "degraded-chunks"

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        if ctx.degraded_chunks <= 0:
            return []
        return [Alert(
            rule=self.name,
            severity="warning",
            message=(
                f"{ctx.degraded_chunks} verification chunk(s) degraded to "
                "serial re-verification (worker deaths)"
            ),
            fields={"chunks": ctx.degraded_chunks},
        )]


class PhaseLatencySLORule(AlertRule):
    """A profiled phase's mean per-call latency breached its SLO.

    ``slos`` maps phase names (see :data:`repro.obs.profile.PHASES`) to
    maximum mean seconds per call.  Phases without an SLO — and ticks
    without an attached profiler — never fire, so the rule is inert
    until both a profiler and explicit SLOs are configured.
    """

    name = "phase-latency-slo"

    def __init__(self, slos: Optional[Dict[str, float]] = None):
        self.slos = dict(slos or {})

    def evaluate(self, ctx: TickContext) -> List[Alert]:
        alerts = []
        for phase, limit in sorted(self.slos.items()):
            observed = ctx.phase_latencies.get(phase)
            if observed is None or observed <= limit:
                continue
            alerts.append(Alert(
                rule=self.name,
                severity="warning",
                message=(
                    f"phase {phase!r} mean latency {observed:.6f}s/call "
                    f"exceeds its SLO of {limit:.6f}s/call"
                ),
                fields={"phase": phase, "mean_s": observed, "slo_s": limit},
            ))
        return alerts


def default_rules(
    lag_threshold: int = 64,
    latency_threshold: float = 0.5,
    phase_slos: Optional[Dict[str, float]] = None,
) -> Tuple[AlertRule, ...]:
    """The standard rule set (see the module docstring's table)."""
    return (
        TamperRule(),
        WatermarkRegressionRule(),
        WitnessMismatchRule(),
        WatermarkLagRule(lag_threshold),
        StoreLatencyRule(latency_threshold),
        DegradedChunksRule(),
        PhaseLatencySLORule(phase_slos),
    )
