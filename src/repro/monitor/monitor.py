"""Continuous provenance health monitoring (watermark-based).

:class:`ProvenanceMonitor` periodically re-verifies a provenance store
*incrementally*: for every object it persists a
:class:`~repro.provenance.store.VerifiedWatermark` — how many leading
records of the chain verified clean, anchored by the last covered
record's ``(seq_id, checksum)`` — and each :meth:`~ProvenanceMonitor.tick`
only walks the records past the watermark.  Correctness rests on two
facts:

* A chain walk's only carried state is the ``previous`` record, so a
  suffix walk seeded with the anchor record performs byte-identical
  checks to the corresponding slice of a full walk
  (``Verifier._check_chain_impl``).
* The anchor is re-validated against the live chain before any skip is
  trusted.  A missing anchor, a changed anchor checksum, or a chain
  shorter than its watermark means history was rewritten behind the
  monitor — that chain is re-verified from scratch and a
  ``watermark-regression`` alert fires (unless crash recovery rewound
  the watermark first; see ``RecoveryScanner._rewind_watermarks``).

Failures accumulate per object with *replace* semantics: whenever a
chain is re-verified from the start, its fresh failures replace the
accumulated ones, and a chain that verifies clean clears them.  A
suffix walk that fails triggers an authoritative full re-verify of that
chain, so :meth:`~ProvenanceMonitor.accumulated_failures` is always
byte-identical to what a one-shot full ``verify_records`` over the same
records would report.

Known limitation (inherent to watermarks): an in-place edit *behind*
every anchor that preserves chain lengths and tail checksums is not
seen by an incremental tick.  ``full_scan_every`` forces a periodic
full pass to bound that window; ``tick(full=True)`` forces one now.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.verifier import (
    ParallelVerifier,
    VerificationFailure,
    Verifier,
)
from repro.crypto.pki import KeyStore
from repro.exceptions import ProvenanceError
from repro.monitor.alerts import Alert, AlertRule, TickContext, default_rules
from repro.obs import OBS
from repro.provenance.records import ProvenanceRecord
from repro.provenance.store import VerifiedWatermark

__all__ = ["TickResult", "ProvenanceMonitor"]

#: Methods a store must expose for watermark persistence.
_WATERMARK_SURFACE = ("set_watermark", "get_watermark", "watermarks", "clear_watermark")


@dataclass(frozen=True)
class TickResult:
    """Outcome of one monitor tick."""

    tick: int
    #: ``cold`` (no usable watermark anywhere), ``incremental`` (at least
    #: one suffix skipped), ``full`` (forced full pass), or ``idle`` (the
    #: store is unchanged; only the anchors were re-checked).
    mode: str
    health: str  # "ok" | "degraded" | "tampered"
    records_total: int
    records_verified: int
    records_skipped: int
    objects_verified: int
    #: Objects whose watermark advanced this tick.
    advanced: Tuple[str, ...]
    #: ``(object_id, reason)`` watermark regressions detected this tick.
    regressions: Tuple[Tuple[str, str], ...]
    alerts: Tuple[Alert, ...]
    #: Records past the watermarks *after* this tick.
    lag_records: int
    duration_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "mode": self.mode,
            "health": self.health,
            "records_total": self.records_total,
            "records_verified": self.records_verified,
            "records_skipped": self.records_skipped,
            "objects_verified": self.objects_verified,
            "advanced": list(self.advanced),
            "regressions": [list(r) for r in self.regressions],
            "alerts": [a.to_dict() for a in self.alerts],
            "lag_records": self.lag_records,
            "duration_seconds": self.duration_seconds,
        }


class ProvenanceMonitor:
    """Watermark-based incremental verification with alerting.

    Args:
        store: A provenance store exposing the watermark surface
            (both bundled stores do; :class:`FaultyStore` delegates it).
        keystore: Trust store for signature verification.
        workers: Worker processes for cold/full passes (suffix walks are
            always serial — suffixes are short by construction).  Reuses
            :class:`ParallelVerifier` when > 1.
        rules: Alert rules; defaults to :func:`default_rules` built from
            the thresholds below.
        lag_threshold: ``watermark-lag`` alert threshold (records).
        latency_threshold: ``store-latency`` p99 threshold (seconds).
        phase_slos: Per-phase mean-latency SLOs (seconds per call) for
            the ``phase-latency-slo`` rule; only meaningful when a
            :func:`repro.obs.enable_profile` profiler is attached.
        full_scan_every: Force a full (watermark-ignoring) pass every Nth
            tick; ``0`` disables the cadence.
        witness_log: Optional :class:`repro.trust.witness.AnchorLog` of
            external witness anchors.  When set (with its verifier),
            every tick — including the idle fast path — cross-checks the
            store against the anchors and fires ``witness-mismatch`` on
            any contradiction.  This is the one check that survives a
            full-coalition suffix rewrite, which is internally consistent
            and invisible to signature verification.
        witness_verifier: The witness's public-material verifier
            (``Witness.verifier()``); required alongside ``witness_log``.
    """

    def __init__(
        self,
        store,
        keystore: KeyStore,
        workers: int = 1,
        rules: Optional[Sequence[AlertRule]] = None,
        lag_threshold: int = 64,
        latency_threshold: float = 0.5,
        phase_slos: Optional[Dict[str, float]] = None,
        full_scan_every: int = 0,
        witness_log=None,
        witness_verifier=None,
        name: Optional[str] = None,
    ):
        if (witness_log is None) != (witness_verifier is None):
            raise ProvenanceError(
                "witness_log and witness_verifier must be given together "
                "(anchors are meaningless without the key to check them)"
            )
        for method in _WATERMARK_SURFACE:
            if not callable(getattr(store, method, None)):
                raise ProvenanceError(
                    f"store {store!r} has no {method}() — it does not expose "
                    "the verified-watermark surface the monitor needs"
                )
        self.store = store
        if workers and workers > 1:
            self.verifier: Verifier = ParallelVerifier(keystore, workers=workers)
        else:
            self.verifier = Verifier(keystore)
        self.rules: Tuple[AlertRule, ...] = tuple(
            rules if rules is not None
            else default_rules(lag_threshold, latency_threshold, phase_slos)
        )
        self.full_scan_every = max(0, int(full_scan_every))
        self.witness_log = witness_log
        self.witness_verifier = witness_verifier
        #: Optional label stamped onto this monitor's alert/tick events
        #: (the service sets the tenant id, so a multi-tenant event
        #: stream attributes raw monitor events without joining).  None
        #: keeps single-monitor event streams byte-identical to before.
        self.name = name
        self._tick = 0
        #: Authoritative per-object failures (replace semantics).
        self._failures: Dict[str, Tuple[VerificationFailure, ...]] = {}
        #: Sticky watermark regressions: object id → reason.  A regression
        #: is only *observable* while the stale watermark exists, so it is
        #: remembered here and the watermark is left untouched as evidence
        #: — otherwise the next tick would re-watermark the rewritten
        #: chain and the tamper signal would self-heal.  Cleared by
        #: :meth:`acknowledge_regression` (operator action).
        self._regressions: Dict[str, str] = {}
        self._alerts: Tuple[Alert, ...] = ()
        self._health = "ok"
        self._degraded_seen = 0.0

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------

    def tick(self, full: bool = False) -> TickResult:
        """Run one verification pass; returns what it found and fired."""
        self._tick += 1
        if self.full_scan_every and self._tick % self.full_scan_every == 0:
            full = True
        log = OBS.events
        scope = log.correlation() if log is not None else nullcontext()
        began = perf_counter()
        with scope:
            result = self._tick_impl(full, log)
        result = _with_duration(result, perf_counter() - began)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("monitor.ticks", mode=result.mode).inc()
            reg.counter("monitor.records_verified").inc(result.records_verified)
            reg.counter("monitor.records_skipped").inc(result.records_skipped)
            reg.gauge("monitor.lag_records").set(result.lag_records)
            reg.histogram("monitor.tick.seconds").observe(result.duration_seconds)
            for alert in result.alerts:
                reg.counter("monitor.alerts", rule=alert.rule).inc()
        return result

    def _tick_impl(self, full: bool, log) -> TickResult:
        watermarks = {wm.object_id: wm for wm in self.store.watermarks()}

        if not full and self._idle_fast_path_ok(watermarks):
            return self._finish_tick(
                mode="idle", chains={}, skip={},
                records_total=len(self.store), verified=0, skipped=len(self.store),
                objects_verified=0, advanced=(), log=log,
                watermarks=watermarks,
            )

        records = list(self.store.all_records())
        chains: Dict[str, List[ProvenanceRecord]] = {}
        for record in records:
            chains.setdefault(record.object_id, []).append(record)
        for chain in chains.values():
            chain.sort(key=lambda r: r.seq_id)

        skip, fresh_regressions = self._compute_skip(chains, watermarks, full)
        for oid, reason in fresh_regressions:
            self._regressions.setdefault(oid, reason)
        skipped = sum(min(skip.get(oid, 0), len(chain)) for oid, chain in chains.items())

        if full or all(v == 0 for v in skip.values()):
            # Cold/full pass: route through the (possibly parallel)
            # whole-chain verifier.
            report = self.verifier.verify_records(records)
            mode = "full" if full else "cold"
        else:
            report = self.verifier.verify_incremental(records, skip)
            mode = "incremental"

        by_object: Dict[str, List[VerificationFailure]] = {}
        for failure in report.failures:
            by_object.setdefault(failure.object_id, []).append(failure)

        # A failing *suffix* walk is a detection, not a diagnosis: the
        # authoritative failure list for that chain comes from a full
        # re-walk, so accumulated failures stay byte-identical to a
        # one-shot full verify.
        suspects = sorted(
            oid for oid in by_object if 0 < skip.get(oid, 0) < len(chains.get(oid, ()))
        )
        if suspects:
            re_skip = {
                oid: (0 if oid in suspects else len(chain))
                for oid, chain in chains.items()
            }
            # observe=False: this is the diagnosis half of the same
            # logical pass — observing it would double-count failures.
            re_report = self.verifier.verify_incremental(
                records, re_skip, observe=False
            )
            re_by_object: Dict[str, List[VerificationFailure]] = {}
            for failure in re_report.failures:
                re_by_object.setdefault(failure.object_id, []).append(failure)
            for oid in suspects:
                by_object[oid] = re_by_object.get(oid, [])

        advanced: List[str] = []
        for oid in sorted(chains):
            chain = chains[oid]
            failures = tuple(by_object.get(oid, ()))
            if failures:
                self._failures[oid] = failures
                continue  # never advance a watermark over a failing chain
            self._failures.pop(oid, None)
            if oid in self._regressions:
                # Keep the stale watermark: it *is* the evidence that the
                # chain was rewritten underneath it.  Re-watermarking the
                # (internally consistent) rewritten chain would silently
                # accept the tampered history.
                continue
            tail = chain[-1]
            watermark = VerifiedWatermark(
                object_id=oid, index=len(chain),
                seq_id=tail.seq_id, checksum=tail.checksum,
            )
            if watermarks.get(oid) != watermark:
                self.store.set_watermark(watermark)
                advanced.append(oid)
                if log is not None:
                    log.emit(
                        "monitor.watermark",
                        object_id=oid, index=watermark.index,
                        seq_id=watermark.seq_id,
                    )
        # Objects that vanished (e.g. purged with a stale watermark left
        # by a non-store actor) were already reported as regressions.
        for oid in list(self._failures):
            if oid not in chains:
                del self._failures[oid]

        return self._finish_tick(
            mode=mode, chains=chains, skip=skip,
            records_total=len(records), verified=report.records_checked,
            skipped=skipped, objects_verified=report.objects_checked,
            advanced=tuple(advanced), log=log, watermarks=None,
        )

    # ------------------------------------------------------------------
    # tick helpers
    # ------------------------------------------------------------------

    def _idle_fast_path_ok(self, watermarks: Dict[str, VerifiedWatermark]) -> bool:
        """True when the store provably matches the verified state.

        Conditions: every object with records has a watermark, the total
        record count equals the covered count, and every chain tail is
        exactly its watermark's anchor.  Any append, tail truncation, or
        tail rewrite breaks one of these; the residual blind spot
        (balanced behind-anchor edits) is the watermark limitation
        covered by ``full_scan_every`` (module docstring).
        """
        if not watermarks or self._failures or self._regressions:
            return False
        if len(self.store) != sum(wm.index for wm in watermarks.values()):
            return False
        if set(self.store.object_ids()) != set(watermarks):
            return False
        tail_of = getattr(self.store, "_tail", None)
        for oid in sorted(watermarks):
            wm = watermarks[oid]
            if tail_of is not None:
                tail = tail_of(oid)
            else:
                latest = self.store.latest(oid)
                tail = (latest.seq_id, latest.checksum) if latest else None
            if tail != (wm.seq_id, wm.checksum):
                return False
        return True

    def _compute_skip(
        self,
        chains: Dict[str, List[ProvenanceRecord]],
        watermarks: Dict[str, VerifiedWatermark],
        full: bool,
    ) -> Tuple[Dict[str, int], Tuple[Tuple[str, str], ...]]:
        """Validate each watermark anchor; invalid ones become regressions.

        Anchors are validated even on a full pass — a full scan verifies
        *content* but cannot see *removal* (a truncated chain is shorter
        yet internally valid), so regression detection must never be
        skipped.  Full mode only stops the anchors being trusted for
        skipping.

        A chain with accumulated failures is never skipped either, even
        behind a valid anchor: a full scan can detect tampering *behind*
        the anchor, and trusting the watermark afterwards would skip the
        chain, report it clean, and silently clear the evidence — the
        same "never advance a watermark over a failing chain" rule,
        applied to skipping.  Its failures only change when a fresh full
        walk of that chain replaces (or clears) them.
        """
        skip: Dict[str, int] = {}
        regressions: List[Tuple[str, str]] = []
        for oid in sorted(chains):
            chain = chains[oid]
            wm = watermarks.get(oid)
            skip[oid] = 0
            if wm is None:
                continue
            if wm.index <= 0:
                regressions.append((
                    oid,
                    f"malformed watermark index {wm.index} (must cover at "
                    "least one record)",
                ))
                continue
            if wm.index > len(chain):
                regressions.append((
                    oid,
                    f"chain has {len(chain)} records but the watermark "
                    f"covers {wm.index}",
                ))
                continue
            anchor = chain[wm.index - 1]
            if anchor.seq_id != wm.seq_id or anchor.checksum != wm.checksum:
                regressions.append((
                    oid,
                    f"anchor record at position {wm.index - 1} changed "
                    f"(expected seq {wm.seq_id})",
                ))
                continue
            if not full and oid not in self._failures:
                skip[oid] = wm.index
        for oid in sorted(watermarks):
            if oid not in chains:
                regressions.append((oid, "chain is gone but its watermark remains"))
        return skip, tuple(regressions)

    def _finish_tick(
        self, mode, chains, skip, records_total, verified,
        skipped, objects_verified, advanced, log, watermarks,
    ) -> TickResult:
        regressions = tuple(sorted(self._regressions.items()))
        lag = self._lag_records(chains, watermarks)
        ctx = TickContext(
            tick=self._tick,
            tally=self.accumulated_tally(),
            regressions=regressions,
            lag_records=lag,
            degraded_chunks=self._degraded_delta(),
            store_p99=self._store_p99(),
            phase_latencies=self._phase_latencies(),
            witness_mismatches=self._witness_mismatches(),
        )
        alerts: List[Alert] = []
        for rule in self.rules:
            alerts.extend(rule.evaluate(ctx))
        self._alerts = tuple(alerts)
        if any(a.tampering for a in alerts):
            self._health = "tampered"
        elif alerts:
            self._health = "degraded"
        else:
            self._health = "ok"
        if log is not None:
            tag = {} if self.name is None else {"monitor": self.name}
            for alert in alerts:
                log.emit("alert", **alert.to_dict(), **tag)
            log.emit(
                "monitor.tick",
                tick=self._tick, mode=mode, health=self._health,
                records_total=records_total, verified=verified,
                skipped=skipped, advanced=len(advanced),
                regressions=len(regressions), alerts=len(alerts),
                lag_records=lag, **tag,
            )
        return TickResult(
            tick=self._tick, mode=mode, health=self._health,
            records_total=records_total, records_verified=verified,
            records_skipped=skipped, objects_verified=objects_verified,
            advanced=tuple(advanced), regressions=regressions,
            alerts=tuple(alerts), lag_records=lag,
        )

    def _witness_mismatches(self) -> Tuple[Tuple[str, int, str], ...]:
        """Store-vs-anchor contradictions (empty without a witness).

        Runs on *every* tick, idle fast path included: the fast path
        proves the store matches the last verified state, but a
        full-coalition rewrite that also rewinds the watermarks is
        internally consistent — only the external anchors contradict it.
        """
        if self.witness_log is None:
            return ()
        from repro.trust.witness import check_anchors

        return check_anchors(self.store, self.witness_log, self.witness_verifier)

    def _lag_records(self, chains, watermarks) -> int:
        """Records past the watermarks *after* the tick's advances."""
        if not chains:
            return 0
        lag = 0
        for oid, chain in chains.items():
            wm = (
                watermarks.get(oid) if watermarks is not None
                else self.store.get_watermark(oid)
            )
            covered = min(wm.index, len(chain)) if wm is not None else 0
            lag += len(chain) - covered
        return lag

    def _degraded_delta(self) -> int:
        if not OBS.enabled:
            return 0
        counter = OBS.registry.find_counter("verify.degraded_chunks")
        current = counter.value if counter is not None else 0.0
        delta = current - self._degraded_seen
        self._degraded_seen = current
        return int(delta)

    def _store_p99(self) -> Optional[float]:
        if not OBS.enabled:
            return None
        histogram = OBS.registry.find_histogram("store.txn.seconds")
        if histogram is None or histogram.count == 0:
            return None
        summary = histogram.summary()
        return float(summary["p99"])

    @staticmethod
    def _phase_latencies() -> Dict[str, float]:
        """Mean seconds per call per profiled phase (empty without one)."""
        prof = OBS.profiler
        if prof is None:
            return {}
        return {
            name: s["total_s"] / s["calls"]
            for name, s in prof.snapshot().items()
            if s["calls"]
        }

    # ------------------------------------------------------------------
    # accumulated state
    # ------------------------------------------------------------------

    @property
    def health(self) -> str:
        return self._health

    @property
    def alerts(self) -> Tuple[Alert, ...]:
        """Alerts fired by the most recent tick."""
        return self._alerts

    @property
    def has_tamper_alerts(self) -> bool:
        return any(a.tampering for a in self._alerts)

    @property
    def regressions(self) -> Tuple[Tuple[str, str], ...]:
        """Sticky ``(object_id, reason)`` watermark regressions."""
        return tuple(sorted(self._regressions.items()))

    def acknowledge_regression(self, object_id: str) -> bool:
        """Operator action: accept a regressed chain's current history.

        Clears the sticky regression *and* the stale watermark, so the
        next tick re-verifies the chain from scratch and re-watermarks
        it.  Returns False if no regression was recorded for the object.
        """
        if object_id not in self._regressions:
            return False
        del self._regressions[object_id]
        self.store.clear_watermark(object_id)
        return True

    def accumulated_failures(self) -> Tuple[VerificationFailure, ...]:
        """All current failures, in full-verify order (sorted objects,
        walk order within each chain)."""
        items: List[VerificationFailure] = []
        for oid in sorted(self._failures):
            items.extend(self._failures[oid])
        return tuple(items)

    def accumulated_tally(self) -> Dict[str, int]:
        """Failure counts by requirement code, like ``failure_tally()``."""
        tally: Dict[str, int] = {}
        for failure in self.accumulated_failures():
            tally[failure.requirement] = tally.get(failure.requirement, 0) + 1
        return dict(sorted(tally.items()))

    def snapshot(self) -> Dict[str, object]:
        """JSON-able health snapshot (what ``repro monitor --once`` prints)."""
        snap: Dict[str, object] = {
            "tick": self._tick,
            "health": self._health,
            "records": len(self.store),
            "objects": len(self.store.object_ids()),
            "watermarks": [wm.to_dict() for wm in self.store.watermarks()],
            "failure_tally": self.accumulated_tally(),
            "failures": [str(f) for f in self.accumulated_failures()],
            "regressions": [list(r) for r in self.regressions],
            "alerts": [a.to_dict() for a in self._alerts],
        }
        prof = OBS.profiler
        if prof is not None:
            from repro.obs.profile import CostModel

            snap["phase_costs"] = CostModel.from_profiler(
                prof, records=len(self.store)
            ).to_dict()
        return snap


def _with_duration(result: TickResult, seconds: float) -> TickResult:
    from dataclasses import replace

    return replace(result, duration_seconds=seconds)
