"""Continuous provenance health monitoring.

``repro.monitor`` watches a provenance store the way an operator would:
a :class:`ProvenanceMonitor` tick incrementally re-verifies every chain
from its persisted verified watermark, an alert-rule engine turns the
outcome into actionable :class:`~repro.monitor.alerts.Alert`\\ s, and the
whole pass is narrated on the structured event log
(:mod:`repro.obs.events`).  ``repro monitor`` is the CLI face.
"""

from repro.monitor.alerts import (
    Alert,
    AlertRule,
    DegradedChunksRule,
    PhaseLatencySLORule,
    StoreLatencyRule,
    TamperRule,
    TickContext,
    WatermarkLagRule,
    WatermarkRegressionRule,
    default_rules,
)
from repro.monitor.monitor import ProvenanceMonitor, TickResult

__all__ = [
    "Alert",
    "AlertRule",
    "TickContext",
    "TamperRule",
    "WatermarkRegressionRule",
    "WatermarkLagRule",
    "StoreLatencyRule",
    "DegradedChunksRule",
    "PhaseLatencySLORule",
    "default_rules",
    "ProvenanceMonitor",
    "TickResult",
]
