"""Human-readable audit views over provenance objects.

Everything here is presentation only: it consumes verified (or about to
be verified) records and produces text an FDA-style reviewer could read —
the paper's motivating scenario is exactly a regulator asking "do you know
where your data's been?".
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.verifier import VerificationReport
from repro.provenance.dag import ProvenanceDAG
from repro.provenance.records import Operation, ProvenanceRecord

__all__ = ["ChainInspector", "render_report", "audit_trail"]


def _format_value(state) -> str:
    if state.has_value:
        return repr(state.value)
    return f"<compound:{state.node_count} nodes:{state.digest.hex()[:12]}…>"


class ChainInspector:
    """Renders record sets as indented, chain-grouped text."""

    def __init__(self, records: Iterable[ProvenanceRecord]):
        self.records = tuple(records)

    def render_chain(self, object_id: str) -> str:
        """Render one object's chain, oldest first."""
        chain = sorted(
            (r for r in self.records if r.object_id == object_id),
            key=lambda r: r.seq_id,
        )
        if not chain:
            return f"{object_id}: no provenance records"
        lines = [f"provenance of {object_id}:"]
        for record in chain:
            lines.append("  " + self._render_record(record))
        return "\n".join(lines)

    def render_all(self) -> str:
        """Render every chain in the record set."""
        object_ids = sorted({r.object_id for r in self.records})
        return "\n".join(self.render_chain(object_id) for object_id in object_ids)

    @staticmethod
    def _render_record(record: ProvenanceRecord) -> str:
        op = record.operation.value + (" (inherited)" if record.inherited else "")
        if record.operation is Operation.AGGREGATE:
            sources = ", ".join(
                f"{s.object_id}={_format_value(s)}" for s in record.inputs
            )
            change = f"⟨{sources}⟩ ⇒ {_format_value(record.output)}"
        elif record.inputs:
            change = f"{_format_value(record.inputs[0])} → {_format_value(record.output)}"
        else:
            change = f"∅ → {_format_value(record.output)}"
        return (
            f"#{record.seq_id:<3} {op:<22} by {record.participant_id:<12} {change} "
            f"[checksum {record.checksum.hex()[:16]}…]"
        )


def render_report(report: VerificationReport) -> str:
    """Render a verification report as a short block of text."""
    lines: List[str] = []
    verdict = "VERIFIED ✓" if report.ok else "TAMPERING DETECTED ✗"
    target = f" for {report.target_id}" if report.target_id else ""
    lines.append(f"{verdict}{target}")
    lines.append(
        f"  checked {report.records_checked} records over "
        f"{report.objects_checked} objects"
    )
    for failure in report.failures:
        lines.append(f"  - {failure}")
    return "\n".join(lines)


def audit_trail(
    dag: ProvenanceDAG,
    object_id: str,
    report: Optional[VerificationReport] = None,
) -> str:
    """Full "where has this data been?" narrative for one object.

    Topologically ordered ancestry — every operation that contributed to
    the object's current state, across aggregations — optionally headed by
    the verification verdict.
    """
    ancestry: Sequence[ProvenanceRecord] = dag.ancestry(object_id)
    lines: List[str] = []
    if report is not None:
        lines.append(render_report(report))
        lines.append("")
    if not ancestry:
        lines.append(f"{object_id}: no recorded history")
        return "\n".join(lines)
    lines.append(f"history of {object_id} ({len(ancestry)} records):")
    for record in ancestry:
        prefixed = f"{record.object_id:<24} " + ChainInspector._render_record(record)
        lines.append("  " + prefixed)
    participants = dag.contributing_participants(object_id)
    sources = dag.source_objects(object_id)
    lines.append(f"contributing participants: {', '.join(participants)}")
    lines.append(f"source objects: {', '.join(sources) or '(none recorded)'}")
    return "\n".join(lines)
