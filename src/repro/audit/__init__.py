"""Audit reporting: human-readable renderings for recipients and auditors.

- :mod:`repro.audit.inspector` — pretty-print chains, provenance objects,
  verification reports, and full audit trails.
- :mod:`repro.audit.dot` — Graphviz DOT export of provenance DAGs
  (Fig 2-style drawings).
- :mod:`repro.audit.lint` — key-free structural checking of provenance
  stores (administrator's corruption sweep).
"""

from repro.audit.dot import to_dot
from repro.audit.inspector import ChainInspector, audit_trail, render_report
from repro.audit.lint import LintIssue, LintReport, lint_records, lint_store

__all__ = [
    "ChainInspector",
    "audit_trail",
    "render_report",
    "to_dot",
    "LintIssue",
    "LintReport",
    "lint_records",
    "lint_store",
]
