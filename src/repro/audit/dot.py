"""Graphviz DOT export of provenance DAGs.

Renders the DAG exactly as the paper draws Fig 2: one node per provenance
record labelled ``object #seq (participant)``, chain edges solid,
aggregation edges dashed, one colour group per object.  The output is
plain DOT text — feed it to ``dot -Tsvg`` or any Graphviz viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.provenance.dag import ProvenanceDAG, RecordKey
from repro.provenance.records import Operation

__all__ = ["to_dot"]

#: Soft fill colours cycled per object.
_PALETTE = (
    "#dae8fc", "#d5e8d4", "#ffe6cc", "#f8cecc", "#e1d5e7",
    "#fff2cc", "#d0cee2", "#b9e0a5",
)


def _quote(text: str) -> str:
    escaped = (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")  # real newlines become DOT line breaks
    )
    return '"' + escaped + '"'


def _node_id(key: RecordKey) -> str:
    return _quote(f"{key[0]}#{key[1]}")


def to_dot(
    dag: ProvenanceDAG,
    target_id: Optional[str] = None,
    rankdir: str = "LR",
    include_notes: bool = False,
) -> str:
    """Render ``dag`` (or just ``target_id``'s ancestry) as DOT text.

    Args:
        dag: The provenance DAG.
        target_id: Restrict to this object's ancestry; None renders all.
        rankdir: Graphviz layout direction (``LR`` reads like Fig 2).
        include_notes: Append white-box notes to node labels.
    """
    if target_id is not None:
        records = dag.ancestry(target_id)
    else:
        records = dag.topological_records()
    keys = {record.key for record in records}

    colors: Dict[str, str] = {}
    lines: List[str] = [
        "digraph provenance {",
        f"  rankdir={rankdir};",
        '  node [shape=box, style="rounded,filled", fontname="Helvetica"];',
        '  edge [fontname="Helvetica", fontsize=10];',
    ]

    for record in records:
        if record.object_id not in colors:
            colors[record.object_id] = _PALETTE[len(colors) % len(_PALETTE)]
        label = f"{record.object_id} #{record.seq_id}\n{record.operation.value}"
        if record.inherited:
            label += " (inherited)"
        label += f"\nby {record.participant_id}"
        if record.output.has_value:
            label += f"\n= {record.output.value!r}"
        if include_notes and record.note:
            label += f"\n“{record.note}”"
        lines.append(
            f"  {_node_id(record.key)} [label={_quote(label)}, "
            f'fillcolor="{colors[record.object_id]}"];'
        )

    for source, destination in dag.graph.edges:
        if source not in keys or destination not in keys:
            continue
        destination_record = dag.record(destination)
        is_aggregation_edge = (
            destination_record.operation is Operation.AGGREGATE
            and source[0] != destination[0]
        )
        style = ' [style=dashed, label="aggregate"]' if is_aggregation_edge else ""
        lines.append(f"  {_node_id(source)} -> {_node_id(destination)}{style};")

    lines.append("}")
    return "\n".join(lines)
