"""Snapshot diffing: what changed between two deliveries?

A repeat data recipient holds yesterday's verified snapshot and today's.
:func:`diff_snapshots` reports the structural and value differences —
the complement of the provenance records, which say *who* and *why*
(:func:`explain_delivery` lines both up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.model.values import Value
from repro.provenance.records import ProvenanceRecord
from repro.provenance.snapshot import SubtreeSnapshot

__all__ = ["SnapshotDiff", "DiffEntry", "diff_snapshots", "explain_delivery"]


@dataclass(frozen=True)
class DiffEntry:
    """One changed node between two snapshots."""

    object_id: str
    kind: str  # "added" | "removed" | "changed" | "moved"
    old_value: Value = None
    new_value: Value = None

    def __str__(self) -> str:
        if self.kind == "added":
            return f"+ {self.object_id} = {self.new_value!r}"
        if self.kind == "removed":
            return f"- {self.object_id} (was {self.old_value!r})"
        if self.kind == "moved":
            return f"~ {self.object_id} re-parented"
        return f"~ {self.object_id}: {self.old_value!r} -> {self.new_value!r}"


@dataclass(frozen=True)
class SnapshotDiff:
    """All differences between two snapshots of the same object."""

    root_id: str
    entries: Tuple[DiffEntry, ...]

    @property
    def unchanged(self) -> bool:
        return not self.entries

    def by_kind(self, kind: str) -> Tuple[DiffEntry, ...]:
        """Entries of one kind (``added``/``removed``/``changed``/``moved``)."""
        return tuple(e for e in self.entries if e.kind == kind)

    def __str__(self) -> str:
        if self.unchanged:
            return f"{self.root_id}: unchanged"
        return f"{self.root_id}: " + "; ".join(str(e) for e in self.entries)


def _index(snapshot: SubtreeSnapshot) -> Dict[str, Tuple[Value, Optional[str]]]:
    return {
        node.object_id: (node.value, node.parent)
        for node in snapshot.nodes
    }


def diff_snapshots(old: SubtreeSnapshot, new: SubtreeSnapshot) -> SnapshotDiff:
    """Differences from ``old`` to ``new`` (same root expected).

    Entries are ordered: removals, then additions, then value changes and
    re-parentings, each in id order.
    """
    old_nodes = _index(old)
    new_nodes = _index(new)
    entries: List[DiffEntry] = []

    for object_id in sorted(set(old_nodes) - set(new_nodes)):
        entries.append(
            DiffEntry(object_id, "removed", old_value=old_nodes[object_id][0])
        )
    for object_id in sorted(set(new_nodes) - set(old_nodes)):
        entries.append(
            DiffEntry(object_id, "added", new_value=new_nodes[object_id][0])
        )
    for object_id in sorted(set(old_nodes) & set(new_nodes)):
        old_value, old_parent = old_nodes[object_id]
        new_value, new_parent = new_nodes[object_id]
        if old_value != new_value:
            entries.append(
                DiffEntry(object_id, "changed", old_value=old_value, new_value=new_value)
            )
        if old_parent != new_parent and object_id != new.root_id:
            entries.append(DiffEntry(object_id, "moved"))
    return SnapshotDiff(root_id=new.root_id, entries=tuple(entries))


def explain_delivery(
    old: SubtreeSnapshot,
    new: SubtreeSnapshot,
    new_records: Iterable[ProvenanceRecord],
) -> str:
    """Human-readable "what changed and who did it" between deliveries.

    Pairs the structural diff with the provenance records accompanying
    the new delivery (typically the records past the recipient's
    checkpoint).
    """
    diff = diff_snapshots(old, new)
    lines: List[str] = [str(diff)]
    records = sorted(new_records, key=lambda r: (r.object_id, r.seq_id))
    if records:
        lines.append("documented by:")
        for record in records:
            lines.append("  " + record.describe())
    elif not diff.unchanged:
        lines.append("WARNING: changes arrived with no provenance records")
    return "\n".join(lines)
