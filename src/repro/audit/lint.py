"""Structural linting of provenance stores.

A store administrator (who holds no participants' keys and may not even
trust the CA) can still check *structural* invariants cheaply — the
conditions every honest store satisfies regardless of signatures:

- chains start at seq 0 with an insert, or with an aggregation;
- within a chain, consecutive records differ by exactly 1 in seq;
- an update-shaped record's input digest equals the previous record's
  output digest;
- an aggregation's inputs each match some earlier recorded state of that
  input object;
- digests have the length their hash algorithm dictates;
- checksums are non-empty and sized plausibly for the named scheme.

Lint failures mean corruption or tampering *somewhere*; the signed
verification (:mod:`repro.core.verifier`) remains the authority on what
exactly is forged.  Lint passes do NOT imply integrity — an attacker can
fabricate a structurally perfect store; only signatures bind it to
participants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.hashing import get_algorithm
from repro.exceptions import UnknownHashAlgorithm
from repro.provenance.records import Operation, ProvenanceRecord

__all__ = ["LintIssue", "LintReport", "lint_records", "lint_store"]


@dataclass(frozen=True)
class LintIssue:
    """One structural problem found in a record set."""

    object_id: str
    seq_id: Optional[int]
    code: str
    message: str

    def __str__(self) -> str:
        where = f"{self.object_id}#{self.seq_id}" if self.seq_id is not None else self.object_id
        return f"[{self.code}] {where}: {self.message}"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint pass."""

    issues: Tuple[LintIssue, ...]
    records_checked: int
    objects_checked: int

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        if self.ok:
            return (
                f"LINT OK: {self.records_checked} records over "
                f"{self.objects_checked} objects"
            )
        return f"LINT: {len(self.issues)} issue(s); first: {self.issues[0]}"


def lint_records(records: Iterable[ProvenanceRecord]) -> LintReport:
    """Structurally lint a record set (no keys required)."""
    issues: List[LintIssue] = []
    chains: Dict[str, List[ProvenanceRecord]] = {}
    count = 0
    for record in records:
        count += 1
        chains.setdefault(record.object_id, []).append(record)

    for object_id, chain in sorted(chains.items()):
        chain.sort(key=lambda r: r.seq_id)
        previous: Optional[ProvenanceRecord] = None
        for record in chain:
            issues.extend(_lint_shapes(record))
            issues.extend(_lint_position(record, previous, chains))
            previous = record
    return LintReport(
        issues=tuple(issues), records_checked=count, objects_checked=len(chains)
    )


def lint_store(provenance_store) -> LintReport:
    """Lint every record in a provenance store."""
    return lint_records(provenance_store.all_records())


def _lint_shapes(record: ProvenanceRecord) -> List[LintIssue]:
    issues: List[LintIssue] = []

    def issue(code: str, message: str) -> None:
        issues.append(LintIssue(record.object_id, record.seq_id, code, message))

    try:
        digest_size = get_algorithm(record.hash_algorithm).digest_size
    except UnknownHashAlgorithm:
        issue("bad-algorithm", f"unknown hash algorithm {record.hash_algorithm!r}")
        return issues

    for state in (*record.inputs, record.output):
        if len(state.digest) != digest_size:
            issue(
                "bad-digest",
                f"state {state.object_id!r} has a {len(state.digest)}-byte "
                f"digest; {record.hash_algorithm} produces {digest_size}",
            )
        if state.node_count < 1:
            issue("bad-size", f"state {state.object_id!r} has node_count < 1")

    if not record.checksum:
        issue("missing-checksum", "record has an empty checksum")
    if record.operation is Operation.AGGREGATE and not record.inputs:
        issue("bad-aggregate", "aggregation record with no inputs")
    if record.operation in (Operation.UPDATE, Operation.COMPLEX):
        if len(record.inputs) != 1 or record.inputs[0].object_id != record.object_id:
            issue(
                "bad-update",
                "update-shaped record must take the object's own prior "
                "state as its single input",
            )
    return issues


def _lint_position(
    record: ProvenanceRecord,
    previous: Optional[ProvenanceRecord],
    chains: Dict[str, List[ProvenanceRecord]],
) -> List[LintIssue]:
    issues: List[LintIssue] = []

    def issue(code: str, message: str) -> None:
        issues.append(LintIssue(record.object_id, record.seq_id, code, message))

    if previous is None:
        if record.operation is Operation.INSERT and record.seq_id != 0:
            issue("chain-start", "insert chain does not start at seq 0")
        elif record.operation in (Operation.UPDATE, Operation.COMPLEX):
            issue("chain-start", "chain starts with an update-shaped record")
    else:
        if record.seq_id == previous.seq_id:
            issue("dup-seq", "duplicate sequence id in chain")
        elif record.seq_id != previous.seq_id + 1:
            issue(
                "seq-gap",
                f"sequence jumps from {previous.seq_id} to {record.seq_id}",
            )
        if (
            record.operation is not Operation.INSERT
            and record.operation is not Operation.AGGREGATE
            and record.inputs
            and record.inputs[0].digest != previous.output.digest
        ):
            issue(
                "state-break",
                "input state does not continue the previous record's output",
            )

    if record.operation is Operation.AGGREGATE:
        for state in record.inputs:
            earlier = [
                r
                for r in chains.get(state.object_id, [])
                if r.seq_id < record.seq_id
            ]
            if not earlier:
                issue(
                    "dangling-input",
                    f"aggregation input {state.object_id!r} has no earlier "
                    "records in this store",
                )
            elif all(r.output.digest != state.digest for r in earlier):
                issue(
                    "unmatched-input",
                    f"aggregation input {state.object_id!r} matches no "
                    "recorded state of that object",
                )
    return issues
