"""The database engine: primitive operations over a forest store.

:class:`DatabaseEngine` implements the paper's four primitives —
``Insert``, ``Delete``, ``Update``, ``Aggregate`` (§2, §4.1) — against any
:class:`~repro.backend.interface.ForestStore`, emitting
:mod:`~repro.backend.events` that carry the pre-operation context the
provenance collector needs.

Complex operations (§4.4) are exposed as a context manager that buffers
the primitive events and emits one :class:`ComplexOperationEvent` on exit.
The engine is provenance-agnostic: it neither knows participants nor signs
anything; that is the job of :mod:`repro.core.system`, which wires an
engine to a collector.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.backend.events import (
    AggregateEvent,
    ComplexOperationEvent,
    DeleteEvent,
    InsertEvent,
    OperationEvent,
    UpdateEvent,
)
from repro.backend.interface import ForestStore
from repro.exceptions import TransactionError, UnknownObjectError
from repro.model.ordering import sort_ids
from repro.model.values import Value

__all__ = ["DatabaseEngine"]

#: Observers receive every primitive event and every complex-operation event.
Listener = Callable[[object], None]


class DatabaseEngine:
    """Applies primitive operations to a store and emits events.

    Args:
        store: Any :class:`ForestStore` implementation.
    """

    def __init__(self, store: ForestStore):
        self.store = store
        self._listeners: List[Listener] = []
        self._buffer: Optional[List[OperationEvent]] = None

    def add_listener(self, listener: Listener) -> None:
        """Register an observer for emitted events."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def insert(
        self, object_id: str, value: Value = None, parent: Optional[str] = None
    ) -> InsertEvent:
        """``Insert(A, val, <parent>)`` — add a new leaf object."""
        self.store.insert(object_id, value, parent)
        event = InsertEvent(
            object_id,
            value=value,
            parent=parent,
            ancestors=tuple(self.store.ancestors(object_id)),
        )
        self._emit(event)
        return event

    def update(self, object_id: str, value: Value) -> UpdateEvent:
        """``Update(A, val')`` — change an object's value."""
        ancestors = tuple(self.store.ancestors(object_id))
        old = self.store.update(object_id, value)
        event = UpdateEvent(
            object_id, old_value=old, new_value=value, ancestors=ancestors
        )
        self._emit(event)
        return event

    def delete(self, object_id: str) -> DeleteEvent:
        """``Delete(A)`` — remove a leaf object."""
        ancestors = tuple(self.store.ancestors(object_id))
        parent = self.store.parent(object_id)
        old = self.store.delete(object_id)
        event = DeleteEvent(
            object_id, old_value=old, parent=parent, ancestors=ancestors
        )
        self._emit(event)
        return event

    def aggregate(
        self,
        input_roots: Sequence[str],
        output_id: str,
        builder: Optional[Callable[["DatabaseEngine", Tuple[str, ...], str], Iterable[str]]] = None,
    ) -> AggregateEvent:
        """``Aggregate({A1..An}, B)`` — combine subtrees into a new object.

        The paper treats the aggregation function as a black box; by
        default the input subtrees are *copied* beneath the fresh root
        ``B`` (ids namespaced under ``B``), which matches the running
        example where the inputs remain in the database.  Pass ``builder``
        to materialise any other output subtree: it receives
        ``(engine, input_roots, output_id)``, must create the output tree
        rooted at ``output_id`` via raw store operations, and must return
        the created ids.

        Aggregation is not allowed inside a complex operation (§4.4 groups
        only insert/update/delete primitives).

        Raises:
            UnknownObjectError: If any input root does not exist.
            TransactionError: If called inside a complex operation.
        """
        if self._buffer is not None:
            raise TransactionError(
                "aggregate is not allowed inside a complex operation"
            )
        ordered_inputs = tuple(sort_ids(input_roots))
        for root in ordered_inputs:
            if root not in self.store:
                raise UnknownObjectError(f"aggregation input {root!r} does not exist")
        if builder is None:
            created = self._copy_aggregate(ordered_inputs, output_id)
        else:
            created = tuple(builder(self, ordered_inputs, output_id))
        event = AggregateEvent(
            output_id, input_roots=ordered_inputs, created_ids=created
        )
        self._emit(event)
        return event

    def _copy_aggregate(
        self, input_roots: Tuple[str, ...], output_id: str
    ) -> Tuple[str, ...]:
        """Default black-box aggregator: copy inputs under a new root."""
        created = [output_id]
        self.store.insert(output_id, None, None)
        for root in input_roots:
            mapping = {root: f"{output_id}/{_leaf_name(root)}"}
            for node in list(self.store.subtree_nodes(root)):
                if node.object_id == root:
                    new_id = mapping[root]
                    parent: Optional[str] = output_id
                else:
                    new_id = mapping[node.parent] + "/" + _leaf_name(node.object_id)
                    mapping[node.object_id] = new_id
                    parent = mapping[node.parent]
                self.store.insert(new_id, node.value, parent)
                created.append(new_id)
        return tuple(created)

    # ------------------------------------------------------------------
    # complex operations (§4.4)
    # ------------------------------------------------------------------

    @contextmanager
    def complex_operation(self) -> Iterator[None]:
        """Group subsequent primitives into one complex operation.

        Within the block, primitive events are buffered instead of being
        emitted individually; on normal exit a single
        :class:`ComplexOperationEvent` is emitted.  Nested blocks *join*
        the outermost operation (so building blocks like
        :meth:`RelationalView.insert_row` compose into larger complex
        operations transparently).
        """
        if self._buffer is not None:  # nested: join the outer operation
            yield
            return
        self._buffer = []
        try:
            yield
        except BaseException:
            self._buffer = None  # abandoned; store changes are NOT rolled back
            raise
        events = tuple(self._buffer)
        self._buffer = None
        if events:
            self._notify(ComplexOperationEvent(events))

    @property
    def in_complex_operation(self) -> bool:
        """True while inside a :meth:`complex_operation` block."""
        return self._buffer is not None

    # ------------------------------------------------------------------
    # undo (compensation for failed provenance collection)
    # ------------------------------------------------------------------

    def undo_event(self, event: OperationEvent) -> None:
        """Reverse one event's effect on the store (no event is emitted).

        Used by sessions to restore consistency when provenance
        collection fails *after* the store mutation was applied: a store
        change without a provenance record would otherwise be
        indistinguishable from an R4 attack at the next verification.
        """
        if isinstance(event, InsertEvent):
            self.store.delete(event.object_id)
        elif isinstance(event, UpdateEvent):
            self.store.update(event.object_id, event.old_value)
        elif isinstance(event, DeleteEvent):
            self.store.insert(event.object_id, event.old_value, event.parent)
        elif isinstance(event, AggregateEvent):
            for object_id in reversed(event.created_ids):
                self.store.delete(object_id)
        else:  # pragma: no cover - defensive
            raise TransactionError(f"cannot undo event {event!r}")

    def undo_events(self, events: Iterable[OperationEvent]) -> None:
        """Reverse a sequence of events, most recent first."""
        for event in reversed(list(events)):
            self.undo_event(event)

    # ------------------------------------------------------------------

    def _emit(self, event: OperationEvent) -> None:
        if self._buffer is not None:
            self._buffer.append(event)
        else:
            self._notify(event)

    def _notify(self, event: object) -> None:
        for listener in self._listeners:
            listener(event)

    def __repr__(self) -> str:
        return f"DatabaseEngine(store={self.store!r})"


def _leaf_name(object_id: str) -> str:
    return object_id.rsplit("/", 1)[-1]
