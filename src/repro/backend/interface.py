"""The store protocol every back-end must satisfy.

:class:`repro.model.tree.Forest` is the reference implementation; the
SQLite store mirrors it.  The engine, the Merkle hashers, and the
provenance collector are all written against this protocol, so any storage
layer with these methods plugs in.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from repro.model.objects import AtomicObject
from repro.model.values import Value

__all__ = ["ForestStore"]


@runtime_checkable
class ForestStore(Protocol):
    """Mutable forest of atomic objects with leaf-level primitives."""

    def insert(self, object_id: str, value: Value = None, parent: Optional[str] = None) -> None:
        """Insert a new leaf object."""
        ...

    def update(self, object_id: str, value: Value) -> Value:
        """Update an object's value; returns the old value."""
        ...

    def delete(self, object_id: str) -> Value:
        """Delete a leaf object; returns its last value."""
        ...

    def __contains__(self, object_id: str) -> bool: ...

    def __len__(self) -> int: ...

    def get(self, object_id: str) -> AtomicObject:
        """Return an immutable snapshot of one node."""
        ...

    def value(self, object_id: str) -> Value: ...

    def parent(self, object_id: str) -> Optional[str]: ...

    def children(self, object_id: str) -> Tuple[str, ...]: ...

    def is_leaf(self, object_id: str) -> bool: ...

    def roots(self) -> Tuple[str, ...]: ...

    def ancestors(self, object_id: str) -> List[str]: ...

    def root_of(self, object_id: str) -> str: ...

    def iter_subtree(self, root_id: str) -> Iterator[str]: ...

    def subtree_nodes(self, root_id: str) -> Iterator[AtomicObject]: ...

    def subtree_size(self, root_id: str) -> int: ...

    def depth(self, object_id: str) -> int: ...
