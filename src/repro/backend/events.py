"""Operation events emitted by the database engine.

Each event captures everything the provenance collector needs *about the
moment of the operation* — old values, parents, and the ancestor chain —
so collection never has to reconstruct pre-operation state from the
(already mutated) store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.model.values import Value

__all__ = [
    "OperationEvent",
    "InsertEvent",
    "UpdateEvent",
    "DeleteEvent",
    "AggregateEvent",
    "ComplexOperationEvent",
]


@dataclass(frozen=True)
class OperationEvent:
    """Base class for primitive-operation events."""

    object_id: str
    #: Ancestor ids (parent upward) at the time of the operation.
    ancestors: Tuple[str, ...] = field(default_factory=tuple, kw_only=True)

    @property
    def kind(self) -> str:
        """Lower-case operation name (``insert``/``update``/...)."""
        return type(self).__name__[: -len("Event")].lower()


@dataclass(frozen=True)
class InsertEvent(OperationEvent):
    """A leaf object was inserted."""

    value: Value = None
    parent: Optional[str] = None


@dataclass(frozen=True)
class UpdateEvent(OperationEvent):
    """An object's value was changed."""

    old_value: Value = None
    new_value: Value = None


@dataclass(frozen=True)
class DeleteEvent(OperationEvent):
    """A leaf object was removed."""

    old_value: Value = None
    parent: Optional[str] = None


@dataclass(frozen=True)
class AggregateEvent(OperationEvent):
    """Subtrees were aggregated into a new compound object.

    ``object_id`` is the new output root.  ``input_roots`` are the roots of
    the input compound objects (still present in the database).
    ``created_ids`` are all node ids materialised for the output, in
    preorder.
    """

    input_roots: Tuple[str, ...] = field(default_factory=tuple)
    created_ids: Tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class ComplexOperationEvent:
    """A group of primitive operations treated as one unit (§4.4)."""

    events: Tuple[OperationEvent, ...]

    @property
    def kind(self) -> str:
        return "complex"

    def __len__(self) -> int:
        return len(self.events)
