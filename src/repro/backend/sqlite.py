"""SQLite-persistent back-end store.

Implements the same :class:`~repro.backend.interface.ForestStore` protocol
as the in-memory store, persisting nodes in a single ``nodes`` table:

    nodes(object_id TEXT PRIMARY KEY, parent TEXT, value BLOB)

Values are stored in their canonical encoding
(:func:`repro.model.values.encode_value`), so what is hashed is byte-for-
byte what is stored.  Children are fetched by the ``parent`` index and
sorted with the global total order on the Python side.

This stands in for the paper's MySQL back-end (see DESIGN.md §3): the code
paths exercised — per-node reads during hashing, per-row writes when
storing checksums — are the same.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import (
    BackendError,
    DuplicateObjectError,
    NotALeafError,
    UnknownObjectError,
)
from repro.model.objects import AtomicObject
from repro.model.ordering import sort_ids
from repro.model.values import Value, decode_value, encode_value

__all__ = ["SQLiteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS nodes (
    object_id TEXT PRIMARY KEY,
    parent    TEXT,
    value     BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_nodes_parent ON nodes(parent);
"""


class SQLiteStore:
    """A :class:`ForestStore` persisted in SQLite.

    Args:
        path: Database file path, or ``":memory:"`` (the default) for an
            ephemeral database.
    """

    def __init__(self, path: str = ":memory:"):
        try:
            self._conn = sqlite3.connect(path)
        except sqlite3.Error as exc:
            raise BackendError(f"cannot open SQLite database {path!r}: {exc}") from exc
        self._conn.executescript(_SCHEMA)
        # Durability is not under test; keep the store fast.  WAL turns
        # commits into log appends (a no-op for :memory: databases).
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA synchronous = OFF")
        self._bulk_depth = 0

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _commit(self) -> None:
        if self._bulk_depth == 0:
            self._conn.commit()

    @contextmanager
    def bulk(self) -> Iterator["SQLiteStore"]:
        """Batch many mutations into one transaction.

        Workload loaders issue tens of thousands of single-row writes;
        committing each one separately dominates load time.  Inside a
        ``bulk()`` block the per-call commits are deferred and the whole
        block commits once on exit (and rolls back if it raises, so a
        failed load leaves no partial forest).  Re-entrant: nested blocks
        join the outermost transaction.
        """
        self._bulk_depth += 1
        try:
            yield self
        except BaseException:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                self._conn.rollback()
            raise
        else:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                self._conn.commit()

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    def insert(self, object_id: str, value: Value = None, parent: Optional[str] = None) -> None:
        """Insert a new leaf object."""
        if object_id in self:
            raise DuplicateObjectError(f"object {object_id!r} already exists")
        if parent is not None and parent not in self:
            raise UnknownObjectError(f"parent {parent!r} does not exist")
        self._conn.execute(
            "INSERT INTO nodes(object_id, parent, value) VALUES (?, ?, ?)",
            (object_id, parent, encode_value(value)),
        )
        self._commit()

    def update(self, object_id: str, value: Value) -> Value:
        """Update an object's value; returns the old value."""
        old = self.value(object_id)
        self._conn.execute(
            "UPDATE nodes SET value = ? WHERE object_id = ?",
            (encode_value(value), object_id),
        )
        self._commit()
        return old

    def delete(self, object_id: str) -> Value:
        """Delete a leaf object; returns its last value."""
        old = self.value(object_id)
        if self.children(object_id):
            raise NotALeafError(
                f"object {object_id!r} has children; only leaves can be deleted"
            )
        self._conn.execute("DELETE FROM nodes WHERE object_id = ?", (object_id,))
        self._commit()
        return old

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def __contains__(self, object_id: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM nodes WHERE object_id = ?", (object_id,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM nodes").fetchone()
        return count

    def get(self, object_id: str) -> AtomicObject:
        """Return an immutable snapshot of one node."""
        row = self._conn.execute(
            "SELECT parent, value FROM nodes WHERE object_id = ?", (object_id,)
        ).fetchone()
        if row is None:
            raise UnknownObjectError(f"object {object_id!r} does not exist")
        parent, value_blob = row
        return AtomicObject(
            object_id=object_id,
            value=decode_value(value_blob),
            children=self.children(object_id),
            parent=parent,
        )

    def value(self, object_id: str) -> Value:
        row = self._conn.execute(
            "SELECT value FROM nodes WHERE object_id = ?", (object_id,)
        ).fetchone()
        if row is None:
            raise UnknownObjectError(f"object {object_id!r} does not exist")
        return decode_value(row[0])

    def parent(self, object_id: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT parent FROM nodes WHERE object_id = ?", (object_id,)
        ).fetchone()
        if row is None:
            raise UnknownObjectError(f"object {object_id!r} does not exist")
        return row[0]

    def children(self, object_id: str) -> Tuple[str, ...]:
        self._require(object_id)
        rows = self._conn.execute(
            "SELECT object_id FROM nodes WHERE parent = ?", (object_id,)
        ).fetchall()
        return tuple(sort_ids(r[0] for r in rows))

    def is_leaf(self, object_id: str) -> bool:
        self._require(object_id)
        row = self._conn.execute(
            "SELECT 1 FROM nodes WHERE parent = ? LIMIT 1", (object_id,)
        ).fetchone()
        return row is None

    def roots(self) -> Tuple[str, ...]:
        rows = self._conn.execute(
            "SELECT object_id FROM nodes WHERE parent IS NULL"
        ).fetchall()
        return tuple(sort_ids(r[0] for r in rows))

    def ancestors(self, object_id: str) -> List[str]:
        self._require(object_id)
        out: List[str] = []
        current = self.parent(object_id)
        while current is not None:
            out.append(current)
            current = self.parent(current)
        return out

    def root_of(self, object_id: str) -> str:
        ancestors = self.ancestors(object_id)
        return ancestors[-1] if ancestors else object_id

    def iter_subtree(self, root_id: str) -> Iterator[str]:
        self._require(root_id)
        stack = [root_id]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self.children(current)))

    def subtree_nodes(self, root_id: str) -> Iterator[AtomicObject]:
        for object_id in self.iter_subtree(root_id):
            yield self.get(object_id)

    def subtree_size(self, root_id: str) -> int:
        return sum(1 for _ in self.iter_subtree(root_id))

    def depth(self, object_id: str) -> int:
        return len(self.ancestors(object_id))

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------

    def delete_subtree(self, root_id: str) -> List[str]:
        """Delete a whole subtree bottom-up; returns deleted ids."""
        order = list(self.iter_subtree(root_id))
        order.reverse()
        for object_id in order:
            self.delete(object_id)
        return order

    def _require(self, object_id: str) -> None:
        if object_id not in self:
            raise UnknownObjectError(f"object {object_id!r} does not exist")

    def __repr__(self) -> str:
        return f"SQLiteStore(nodes={len(self)})"
