"""In-memory back-end store.

:class:`InMemoryStore` is :class:`repro.model.tree.Forest` under the name
the back-end package exports.  It exists as its own class (rather than a
bare alias) so store-specific extensions can be added without touching the
data-model layer.
"""

from __future__ import annotations

from repro.model.tree import Forest

__all__ = ["InMemoryStore"]


class InMemoryStore(Forest):
    """A :class:`~repro.model.tree.Forest`-backed store (no persistence)."""
