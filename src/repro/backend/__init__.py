"""Back-end database substrate.

The paper's experimental setup (§5.1) has a *back-end database* holding the
user data, viewed as a tree of depth 4 (root → tables → rows → cells), and
a separate *provenance database*.  This package provides the back-end:

- :mod:`repro.backend.interface` — the store protocol.
- :mod:`repro.backend.memory` — in-memory store (a thin alias of
  :class:`repro.model.tree.Forest`).
- :mod:`repro.backend.sqlite` — SQLite-persistent store with the same
  protocol.
- :mod:`repro.backend.events` — operation events emitted by the engine.
- :mod:`repro.backend.engine` — :class:`DatabaseEngine`, implementing the
  paper's primitives (Insert/Delete/Update/Aggregate) plus complex
  operations, and notifying observers (the provenance collector).
"""

from repro.backend.engine import DatabaseEngine
from repro.backend.events import (
    AggregateEvent,
    ComplexOperationEvent,
    DeleteEvent,
    InsertEvent,
    OperationEvent,
    UpdateEvent,
)
from repro.backend.memory import InMemoryStore
from repro.backend.sqlite import SQLiteStore

__all__ = [
    "DatabaseEngine",
    "InMemoryStore",
    "SQLiteStore",
    "OperationEvent",
    "InsertEvent",
    "DeleteEvent",
    "UpdateEvent",
    "AggregateEvent",
    "ComplexOperationEvent",
]
