"""Timing with confidence intervals.

§5.1: "For all performance experiments, we report the average across 100
runs, including 95% confidence intervals."  :func:`measure` does the
same — the run count is a parameter because the pure-Python substrate is
slower per operation than the paper's Java/MySQL stack.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from scipy import stats

__all__ = ["TimingResult", "measure"]


@dataclass(frozen=True)
class TimingResult:
    """Mean and 95% CI of repeated timings (seconds)."""

    samples: Tuple[float, ...]

    @property
    def runs(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean duration in seconds."""
        return sum(self.samples) / len(self.samples)

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval (0 for one run).

        Student-t based, matching small-sample practice.
        """
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self.samples) / (n - 1)
        sem = math.sqrt(variance / n)
        t_crit = stats.t.ppf(0.975, df=n - 1)
        return float(t_crit * sem)

    def format(self, unit: str = "ms") -> str:
        """Render as ``mean ± ci`` in the chosen unit (s/ms/us)."""
        factor = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
        return f"{self.mean * factor:.2f} ± {self.ci95 * factor:.2f} {unit}"


def measure(
    fn: Callable[[], object],
    runs: int = 5,
    setup: Optional[Callable[[], object]] = None,
) -> TimingResult:
    """Time ``fn`` ``runs`` times; ``setup`` (untimed) runs before each.

    When ``setup`` returns a value, it is passed to ``fn`` as its single
    argument — the usual build-fresh-state-then-operate pattern.
    """
    samples: List[float] = []
    for _ in range(runs):
        arg = setup() if setup is not None else None
        start = time.perf_counter()
        if setup is not None:
            fn(arg)
        else:
            fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(samples=tuple(samples))
