"""Bench history: attributable benchmark entries and a regression gate.

``BENCH_*.json`` files are overwritten snapshots; this module gives the
benchmarks a *trajectory*.  Every entry appended to ``BENCH_HISTORY.jsonl``
is one JSON object per line::

    {
      "kind": "gate" | "full",
      "meta": {git_sha, timestamp_utc, hostname, python, cpu_count},
      "fingerprint": "<sha256[:12] of the workload parameters>",
      "metrics": {"sign.rsa.per_record_s": ..., ...},
      "profile": {...}          # optional phase attribution (gate entries)
    }

``kind="full"`` entries are appended by ``benchmarks/run_all.py`` (all
guard metrics, full workload); ``kind="gate"`` entries come from the
``repro bench`` CLI's small fixed-seed workload.  Comparisons only ever
consider entries with the *same* kind and fingerprint — wall-clock
numbers from different workloads (or workload sizes) are not comparable.

The gate (``repro bench gate --baseline N --tolerance 0.10``) re-runs
the fixed-seed workload, compares each gated metric against the median
of the last ``N`` matching history entries, and reports a regression
when a lower-is-better metric exceeds ``median * (1 + tolerance)``.
Medians over a short window absorb one-off outliers; the fixed seed and
fixed workload shape keep run-to-run variance on the same machine well
inside the default 10% tolerance.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
import time
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "collect_meta",
    "with_meta",
    "flatten_metrics",
    "workload_fingerprint",
    "make_entry",
    "append_entry",
    "read_history",
    "matching_entries",
    "find_by_sha",
    "median",
    "GATE_METRICS",
    "gate_check",
    "compare_entries",
    "run_gate_workload",
    "GATE_WORKLOAD",
]


# ---------------------------------------------------------------------------
# entry plumbing
# ---------------------------------------------------------------------------


def collect_meta() -> Dict[str, object]:
    """Attribution block for benchmark outputs (satellite of ISSUE 7).

    Git metadata degrades to ``"unknown"`` outside a repository (e.g. an
    installed wheel running the gate in a scratch directory).
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "git_sha": sha,
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def with_meta(metrics: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``metrics`` with the attribution ``meta`` block added.

    All ``BENCH_*.json`` writers route through this so every committed
    snapshot says which commit, host, and interpreter produced it.
    """
    payload: Dict[str, object] = {"meta": collect_meta()}
    payload.update(metrics)
    return payload


def flatten_metrics(
    metrics: Dict[str, object], prefix: str = ""
) -> Dict[str, float]:
    """Flatten nested numeric metrics into dot-keyed floats.

    Non-numeric leaves (strings, lists) are dropped; booleans become
    0.0/1.0.  Used to turn a benchmark's ``result.metrics`` tree into a
    history entry's flat ``metrics`` map.
    """
    flat: Dict[str, float] = {}
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=name + "."))
        elif isinstance(value, bool):
            flat[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
    return flat


def workload_fingerprint(params: Dict[str, object]) -> str:
    """Stable short id of a workload's parameters (sorted-key JSON)."""
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def make_entry(
    kind: str,
    fingerprint: str,
    metrics: Dict[str, object],
    profile: Optional[Dict[str, object]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "kind": kind,
        "meta": meta if meta is not None else collect_meta(),
        "fingerprint": fingerprint,
        "metrics": metrics,
    }
    if profile is not None:
        entry["profile"] = profile
    return entry


def append_entry(path: str, entry: Dict[str, object]) -> None:
    """Append one entry as a JSONL line (creates the file if missing)."""
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")


def read_history(path: str) -> List[Dict[str, object]]:
    """All well-formed entries, oldest first; malformed lines are skipped.

    Tolerance matters: a crash mid-append leaves a torn last line, and a
    torn line must not take the whole trajectory down with it.
    """
    entries: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and "metrics" in entry:
                entries.append(entry)
    return entries


def matching_entries(
    history: Sequence[Dict[str, object]], kind: str, fingerprint: str
) -> List[Dict[str, object]]:
    """Entries comparable to (kind, fingerprint), oldest first."""
    return [
        e for e in history
        if e.get("kind") == kind and e.get("fingerprint") == fingerprint
    ]


def find_by_sha(
    history: Sequence[Dict[str, object]], sha: str
) -> Optional[Dict[str, object]]:
    """Latest entry whose git SHA starts with ``sha`` (short SHAs fine)."""
    for entry in reversed(history):
        full = str(entry.get("meta", {}).get("git_sha", ""))
        if full.startswith(sha):
            return entry
    return None


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        raise ValueError("median of an empty sequence")
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------

#: Gated metrics with their regression direction.  All are absolute
#: per-record wall times (direction ``lower``): a slowdown anywhere in
#: the signing or verification path moves one of them up.  Ratio metrics
#: (speedups) are recorded in entries but not gated — a ratio can mask
#: an absolute regression that slows both of its terms.
GATE_METRICS: Dict[str, str] = {
    "sign.rsa.per_record_s": "lower",
    "sign.merkle.per_record_s": "lower",
    "verify.per_record_s": "lower",
}


def gate_check(
    current: Dict[str, object],
    history: Sequence[Dict[str, object]],
    baseline: int,
    tolerance: float,
    metrics: Optional[Dict[str, str]] = None,
) -> Tuple[List[Dict[str, object]], int]:
    """Compare ``current`` against the median of the last ``baseline``
    comparable history entries.

    Returns ``(regressions, compared)`` where ``compared`` is how many
    baseline entries were actually available.  With no comparable
    history the gate passes vacuously (``compared == 0``) — a fresh
    clone must be able to bootstrap its own baseline.
    """
    spec = metrics if metrics is not None else GATE_METRICS
    comparable = matching_entries(
        history, str(current.get("kind", "gate")), str(current.get("fingerprint"))
    )[-max(1, int(baseline)):]
    regressions: List[Dict[str, object]] = []
    if not comparable:
        return regressions, 0
    current_metrics = current.get("metrics", {})
    for name, direction in sorted(spec.items()):
        value = current_metrics.get(name)
        baseline_values = [
            e["metrics"][name]
            for e in comparable
            if isinstance(e.get("metrics", {}).get(name), (int, float))
        ]
        if not isinstance(value, (int, float)) or not baseline_values:
            continue
        base = median(baseline_values)
        if base <= 0:
            continue
        ratio = float(value) / base
        regressed = (
            ratio > 1.0 + tolerance if direction == "lower"
            else ratio < 1.0 - tolerance
        )
        if regressed:
            regressions.append({
                "metric": name,
                "direction": direction,
                "current": float(value),
                "baseline_median": base,
                "ratio": ratio,
                "tolerance": tolerance,
            })
    return regressions, len(comparable)


def compare_entries(
    a: Dict[str, object], b: Dict[str, object]
) -> List[Tuple[str, object, object, Optional[float]]]:
    """Per-metric ``(name, value_a, value_b, ratio_b_over_a)`` rows."""
    metrics_a = a.get("metrics", {})
    metrics_b = b.get("metrics", {})
    rows: List[Tuple[str, object, object, Optional[float]]] = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        va, vb = metrics_a.get(name), metrics_b.get(name)
        ratio = None
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
            ratio = float(vb) / float(va)
        rows.append((name, va, vb, ratio))
    return rows


# ---------------------------------------------------------------------------
# the fixed-seed gate workload
# ---------------------------------------------------------------------------

#: Parameters of the gate's workload.  Changing any of these changes the
#: fingerprint, which retires old baselines automatically.
GATE_WORKLOAD: Dict[str, object] = {
    "workload": "gate-v1",
    "seed": 1234,
    "key_bits": 512,
    "flush_size": 16,
    "batches": 5,
    "runs": 5,
    "verify_objects": 40,
    "verify_updates": 3,
}


class _SlowdownScheme:
    """Test hook: proportionally slow every ``sign`` call.

    Wraps a signature scheme so each ``sign`` additionally sleeps for
    ``fraction`` of the time the underlying call took — a *real*,
    measurable signing-phase slowdown of known relative size, used to
    prove the gate trips (``repro bench gate --inject-slowdown``).
    All other attributes delegate to the wrapped scheme.
    """

    def __init__(self, inner, fraction: float):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_fraction", float(fraction))

    def sign(self, message: bytes) -> bytes:
        start = time.perf_counter()
        signature = self._inner.sign(message)
        time.sleep((time.perf_counter() - start) * self._fraction)
        return signature

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __setattr__(self, name, value):
        setattr(self._inner, name, value)


def run_gate_workload(
    slowdown: float = 0.0,
) -> Tuple[Dict[str, float], Dict[str, object], Dict[str, object]]:
    """The gate's small fixed-seed workload.

    Returns ``(metrics, profile, params)``: the gated per-record wall
    times (plus informational ratios), the merged phase attribution of
    the run (via :func:`repro.obs.enable_profile`), and the workload
    parameters whose fingerprint keys comparability.

    ``slowdown`` > 0 injects a proportional signing-phase slowdown (see
    :class:`_SlowdownScheme`) so the gate's sensitivity can be verified
    end to end.
    """
    import random

    from repro import TamperEvidentDatabase, obs
    from repro.core.verifier import Verifier
    from repro.obs.profile import PhaseProfiler

    params = dict(GATE_WORKLOAD)
    seed = int(params["seed"])
    key_bits = int(params["key_bits"])
    flush_size = int(params["flush_size"])
    batches = int(params["batches"])
    runs = int(params["runs"])

    prior = obs.OBS.profiler
    profiler = obs.enable_profile(reset=True)
    try:
        def signed_append(scheme: str) -> float:
            sdb = TamperEvidentDatabase(
                key_bits=key_bits,
                rng=random.Random(seed),
                signature_scheme=scheme,
            )
            participant = sdb.enroll("gate")
            if slowdown > 0:
                participant.scheme = _SlowdownScheme(participant.scheme, slowdown)
            session = sdb.session(participant)
            with session.complex_operation():  # create objects untimed
                for j in range(flush_size):
                    session.insert(f"g{j}", j)
            best = float("inf")
            for run_no in range(runs):
                start = time.perf_counter()
                for b in range(batches):
                    with session.complex_operation():
                        for j in range(flush_size):
                            session.update(f"g{j}", run_no * 10_000 + b)
                best = min(best, time.perf_counter() - start)
            return best

        signing_records = batches * flush_size
        rsa_s = signed_append("rsa-pkcs1v15")
        merkle_s = signed_append("merkle-batch")

        rng = random.Random(seed)
        vdb = TamperEvidentDatabase(key_bits=key_bits, rng=rng)
        vsession = vdb.session(vdb.enroll("gate-verify"))
        n_objects = int(params["verify_objects"])
        n_updates = int(params["verify_updates"])
        for i in range(n_objects):
            vsession.insert(f"v{i}", i)
            for update in range(n_updates):
                vsession.update(f"v{i}", i * 1000 + update)
        records = list(vdb.provenance_store.all_records())
        verifier = Verifier(vdb.keystore())
        verify_s = float("inf")
        for _ in range(runs):
            start = time.perf_counter()
            report = verifier.verify_records(records)
            verify_s = min(verify_s, time.perf_counter() - start)
        if not report.ok:
            raise RuntimeError(
                "gate workload failed verification: " + report.summary()
            )

        metrics: Dict[str, float] = {
            "sign.rsa.per_record_s": rsa_s / signing_records,
            "sign.merkle.per_record_s": merkle_s / signing_records,
            "verify.per_record_s": verify_s / len(records),
            "sign.speedup_merkle_vs_rsa": (
                rsa_s / merkle_s if merkle_s else float("inf")
            ),
            "verify.records": float(len(records)),
            "sign.records": float(signing_records),
        }
        profile = profiler.snapshot()
    finally:
        obs.OBS.profiler = prior if isinstance(prior, PhaseProfiler) else None
    return metrics, profile, params
