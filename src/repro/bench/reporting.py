"""Paper-style plain-text reporting for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_kv", "banner"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_kv(pairs: Iterable[Sequence[object]]) -> str:
    """Render ``key: value`` lines with aligned keys."""
    items = [(str(k), str(v)) for k, v in pairs]
    width = max((len(k) for k, _ in items), default=0)
    return "\n".join(f"{k.ljust(width)} : {v}" for k, v in items)


def banner(title: str) -> str:
    """A section banner."""
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"
